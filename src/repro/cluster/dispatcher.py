"""The cluster front end: one public NDJSON endpoint, N worker processes.

:class:`ClusterDispatcher` owns the TCP socket clients connect to and
proxies every session operation to the worker that owns the session.
Clients speak the exact same protocol as against a single
:class:`~repro.service.server.PhaseService` — the cluster is invisible
except for the extra ``cluster`` control-plane op.

Proxy design, in order of importance:

- **Raw-line forwarding.** The dispatcher routes on a byte-regex over
  the line prefix (our wire form always emits ``op``, ``id``,
  ``session`` first) and forwards the client's bytes to the worker
  unmodified; worker push/response lines travel back equally untouched.
  The dispatcher never re-serializes a report, which is what makes the
  byte-for-byte identity guarantee cheap to keep — and keeps the single
  dispatcher process out of the JSON-parsing business on the hot path.
  Lines the regex cannot take (escaped session names, anonymous opens)
  fall back to a full parse.
- **Per-(client, worker) channels.** Each client connection gets its
  own Unix-socket channel to each worker it talks to. The worker sees
  one connection per client, so per-connection request ordering and
  request-id uniqueness hold exactly as they would single-process, and
  the worker's bounded ingest queue backpressures that client alone.
  Responses need no id matching: a channel is used sequentially, so the
  first non-push line *is* the response.
- **Routing table over hash.** ``shard_of(session)`` → rendezvous
  owner decides where a session *opens*; from then on the dispatcher's
  session table is authoritative. Migration flips the table entry, so
  the shard map can change shape (grow, drain) without stranding live
  sessions.
- **Supervised workers.** A health loop notices crashed workers and
  restarts them on the same socket and data dir; channels reconnect
  with a bounded retry window, so a mid-restart request waits instead
  of failing. Read-only ops are resent after a reconnect; mutating ops
  whose connection died after the send fail with error code
  ``cluster`` (their fate on the worker is unknown).

Migration itself lives in :mod:`repro.cluster.migration`.
"""

from __future__ import annotations

import asyncio
import itertools
import re
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    ClusterError,
    ConfigurationError,
    ProtocolError,
    ReproError,
    ServiceUnavailableError,
)
from repro.service import protocol
from repro.cluster.migration import SessionMigrator
from repro.cluster.routing import DEFAULT_SHARDS, ShardMap
from repro.cluster.supervisor import (
    ClusterSupervisor,
    DOWN,
    STOPPED,
    UP,
    WorkerHandle,
)

#: Fast-path router: matches the canonical wire prefix our encoder (and
#: the bundled client) emits — ``op``, ``id``, ``session`` first, with a
#: session name that needs no JSON escaping. Anything else falls back to
#: a full parse; the fast path is an optimization, never a requirement.
_FAST_ROUTE = re.compile(
    rb'^\{"op":"(observe|predict|snapshot|close)",'
    rb'"id":(-?\d+),'
    rb'"session":"([A-Za-z0-9._:\-]{1,200})"[,}]'
)

#: Worker lines that are interval pushes (vs responses). The server
#: encodes with ``separators=(",", ":")`` and dict insertion order, so
#: the prefix is stable.
_PUSH_PREFIX = b'{"push"'

_NOT_FOUND_MARKER = b'"code":"session_not_found"'


class _WorkerChannel:
    """One Unix-socket connection from the dispatcher to a worker.

    Used strictly sequentially (guarded by a lock): send one line, read
    pushes until the response line. Reconnects transparently inside a
    bounded retry window, which is what rides out a supervised worker
    restart. ``resendable`` exchanges may be re-sent after a mid-read
    disconnect; others fail with :class:`ClusterError` because the
    worker may already have executed them.
    """

    def __init__(
        self,
        worker_id: str,
        uds_path: str,
        retry_window: float = 20.0,
    ) -> None:
        self.worker_id = worker_id
        self.uds_path = uds_path
        self.retry_window = retry_window
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()
        self._ids = itertools.count(1)

    def next_id(self) -> int:
        return next(self._ids)

    def drop(self) -> None:
        """Forget the current connection (next use reconnects)."""
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            try:
                writer.close()
            except Exception:
                pass

    async def close(self) -> None:
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _ensure_connected(self, deadline: float) -> None:
        while self._writer is None:
            try:
                self._reader, self._writer = (
                    await asyncio.open_unix_connection(
                        self.uds_path, limit=protocol.MAX_LINE_BYTES
                    )
                )
                return
            except OSError as error:
                if time.monotonic() >= deadline:
                    raise ClusterError(
                        f"worker {self.worker_id} unreachable at "
                        f"{self.uds_path}: {error}"
                    ) from None
                await asyncio.sleep(0.1)

    async def exchange(
        self, raw_line: bytes, resendable: bool
    ) -> Tuple[List[bytes], bytes]:
        """Send one request line; returns ``(push_lines, response_line)``."""
        async with self._lock:
            deadline = time.monotonic() + self.retry_window
            while True:
                try:
                    await self._ensure_connected(deadline)
                    assert self._writer is not None
                    self._writer.write(raw_line)
                    await self._writer.drain()
                    sent = True
                except ClusterError:
                    raise
                except (OSError, ConnectionError) as error:
                    # The send did not complete: a resend is safe for
                    # everyone... unless the drain failure left the
                    # line's fate ambiguous for a mutating op.
                    self.drop()
                    if not resendable or time.monotonic() >= deadline:
                        raise ClusterError(
                            f"connection to worker {self.worker_id} "
                            f"failed while sending: {error}"
                        ) from None
                    await asyncio.sleep(0.1)
                    continue
                try:
                    pushes: List[bytes] = []
                    assert self._reader is not None
                    while True:
                        line = await self._reader.readline()
                        if not line:
                            raise ConnectionError("EOF from worker")
                        if line.startswith(_PUSH_PREFIX):
                            pushes.append(line)
                            continue
                        return pushes, line
                except (OSError, ConnectionError, ValueError) as error:
                    self.drop()
                    if resendable and time.monotonic() < deadline:
                        await asyncio.sleep(0.1)
                        continue
                    raise ClusterError(
                        f"connection to worker {self.worker_id} lost "
                        f"mid-request ({error}); the request's fate on "
                        f"the worker is unknown"
                    ) from None

    async def request(
        self, request: protocol.Request, resendable: bool = False
    ) -> dict:
        """Control-plane convenience: send a typed request, return the
        ``result`` dict, raising the typed exception on refusal."""
        raw = protocol.encode(protocol.request_payload(request))
        _, line = await self.exchange(raw, resendable=resendable)
        message = protocol.parse_server_message(line)
        assert isinstance(message, protocol.Response)
        message.raise_for_error()
        return message.result


class _ClientConnection:
    """Dispatcher-side state for one public TCP client."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        queue_size: int,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.queue: "asyncio.Queue" = asyncio.Queue(maxsize=queue_size)
        self.tasks: List["asyncio.Task"] = []
        self.channels: Dict[str, _WorkerChannel] = {}


class ClusterDispatcher:
    """The public endpoint of a sharded multi-process phase service.

    Parameters mirror :class:`~repro.service.server.PhaseService` where
    they mean the same thing; worker-fleet knobs (``workers``,
    ``runtime_dir``, ``data_root``, per-worker capacity) are new.
    ``data_root=None`` runs a RAM-only cluster; with a data root each
    worker persists to ``<data_root>/<worker_id>`` and recovers it on
    restart.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 2,
        runtime_dir: str,
        data_root: Optional[str] = None,
        num_shards: int = DEFAULT_SHARDS,
        queue_size: int = 32,
        max_connections: int = 64,
        drain_timeout: float = 30.0,
        telemetry=None,
        http_host: Optional[str] = None,
        http_port: Optional[int] = None,
        worker_max_sessions: int = 1024,
        pool_slots: Optional[int] = None,
        coalesce: bool = False,
        coalesce_window: float = 0.0,
        sync: str = "batch",
        checkpoint_interval: float = 30.0,
        idle_ttl: Optional[float] = None,
        max_restarts: int = 5,
        ready_timeout: float = 60.0,
        retry_window: float = 20.0,
        migration_timeout: float = 30.0,
    ) -> None:
        if workers <= 0:
            raise ConfigurationError(
                f"workers must be positive, got {workers}"
            )
        if workers > num_shards:
            raise ConfigurationError(
                f"workers ({workers}) cannot exceed num_shards "
                f"({num_shards}); extra workers would own no shards"
            )
        if http_port is not None and telemetry is None:
            from repro.telemetry import Telemetry as _Telemetry

            telemetry = _Telemetry()
        self.host = host
        self.port = port
        self.http_host = http_host if http_host is not None else host
        self.http_port = http_port
        self.initial_workers = workers
        self.queue_size = queue_size
        self.max_connections = max_connections
        self.drain_timeout = drain_timeout
        self.retry_window = retry_window
        self.migration_timeout = migration_timeout
        self._telemetry = telemetry
        self.supervisor = ClusterSupervisor(
            runtime_dir,
            data_root=data_root,
            sync=sync,
            checkpoint_interval=checkpoint_interval,
            max_sessions=worker_max_sessions,
            pool_slots=pool_slots,
            coalesce=coalesce,
            coalesce_window=coalesce_window,
            idle_ttl=idle_ttl,
            queue_size=queue_size,
            max_connections=max_connections + 8,
            max_restarts=max_restarts,
            ready_timeout=ready_timeout,
            telemetry=telemetry,
        )
        self.shard_map = ShardMap(num_shards=num_shards)
        self.migrator = SessionMigrator(self)
        # session -> owning worker id; authoritative once a session is
        # open (the shard map only decides where sessions *start*).
        self._sessions: Dict[str, str] = {}
        # session -> gate Event; present while that session migrates.
        self._gates: Dict[str, asyncio.Event] = {}
        # session -> requests currently executing on a worker.
        self._inflight: Dict[str, int] = {}
        self._control: Dict[str, _WorkerChannel] = {}
        self._restarting: set = set()
        self._connections: Dict[int, _ClientConnection] = {}
        self._names = itertools.count(1)
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._health_task: Optional["asyncio.Task"] = None
        self._drain_task: Optional["asyncio.Task"] = None
        self._gateway = None
        self._draining = False
        self.requests_served = 0
        self.errors_returned = 0
        self.connections_refused = 0
        self.migrations_completed = 0
        self.migrations_failed = 0
        self.started_at = time.time()
        self._started_mono = time.monotonic()
        self._init_metrics()

    def _init_metrics(self) -> None:
        telemetry = self._telemetry
        self._g_workers = self._g_migrations = None
        self._worker_gauges: Dict[str, dict] = {}
        if telemetry is None:
            return
        self._g_workers = telemetry.gauge(
            "repro_cluster_workers", "Live workers in the shard map"
        )
        self._g_uptime = telemetry.gauge(
            "repro_service_uptime_seconds",
            "Seconds since the dispatcher started",
        )
        self._m_migrations = telemetry.counter(
            "repro_cluster_migrations_total",
            "Completed live session migrations",
        )
        self._m_migrations_failed = telemetry.counter(
            "repro_cluster_migrations_failed_total",
            "Session migrations that failed and rolled back",
        )
        self._m_requests = telemetry.counter(
            "repro_service_requests_total",
            "Requests executed (dispatcher-side count)",
        )
        self._m_errors = telemetry.counter(
            "repro_service_errors_total",
            "Requests answered with an error response",
        )

    def _worker_metrics(self, worker_id: str) -> Optional[dict]:
        """Per-worker labeled gauge handles, created on first use."""
        if self._telemetry is None:
            return None
        gauges = self._worker_gauges.get(worker_id)
        if gauges is None:
            labels = {"worker": worker_id}
            telemetry = self._telemetry
            gauges = {
                "up": telemetry.gauge(
                    "repro_cluster_worker_up",
                    "1 when the worker process is up", labels=labels,
                ),
                "sessions": telemetry.gauge(
                    "repro_cluster_worker_sessions",
                    "Sessions routed to the worker", labels=labels,
                ),
                "shards": telemetry.gauge(
                    "repro_cluster_worker_shards",
                    "Shards the worker owns", labels=labels,
                ),
                "restarts": telemetry.gauge(
                    "repro_cluster_worker_restarts_total",
                    "Times the supervisor restarted the worker",
                    labels=labels,
                ),
            }
            self._worker_gauges[worker_id] = gauges
        return gauges

    def refresh_cluster_metrics(self) -> None:
        """Recompute the ``repro_cluster_*`` gauges (called on scrape
        and after topology changes)."""
        if self._telemetry is None:
            return
        self._g_workers.set(len(self.shard_map))
        occupancy = (
            self.shard_map.occupancy() if len(self.shard_map) else {}
        )
        sessions_per_worker: Dict[str, int] = {}
        for owner in self._sessions.values():
            sessions_per_worker[owner] = (
                sessions_per_worker.get(owner, 0) + 1
            )
        for worker_id, handle in self.supervisor.workers.items():
            gauges = self._worker_metrics(worker_id)
            gauges["up"].set(1.0 if handle.state == UP else 0.0)
            gauges["sessions"].set(sessions_per_worker.get(worker_id, 0))
            gauges["shards"].set(occupancy.get(worker_id, 0))
            gauges["restarts"].set(handle.restarts)

    # -- properties the gateway leans on ---------------------------------------

    @property
    def telemetry(self):
        return self._telemetry

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def gateway(self):
        return self._gateway

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started_mono

    def touch_uptime(self) -> float:
        uptime = self.uptime_seconds
        if self._telemetry is not None:
            self._g_uptime.set(uptime)
        return uptime

    def ingest_queue_depth(self) -> int:
        return sum(
            connection.queue.qsize()
            for connection in self._connections.values()
        )

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise ServiceUnavailableError("dispatcher is already started")
        self._stopped = asyncio.Event()
        handles = await asyncio.gather(*(
            self.supervisor.start_worker()
            for _ in range(self.initial_workers)
        ))
        for handle in handles:
            self._admit_worker(handle)
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        self._health_task = asyncio.ensure_future(self._health_loop())
        if self.http_port is not None:
            from repro.obs import ClusterGateway

            self._gateway = ClusterGateway(
                self, host=self.http_host, port=self.http_port
            )
            await self._gateway.start()
            self.http_port = self._gateway.port
        self.refresh_cluster_metrics()
        self._emit(
            "cluster_start", host=self.host, port=self.port,
            workers=list(self.shard_map.workers),
            num_shards=self.shard_map.num_shards,
            http_port=self.http_port,
        )

    def _admit_worker(self, handle: WorkerHandle) -> None:
        self.shard_map.add_worker(handle.worker_id)
        self._control[handle.worker_id] = _WorkerChannel(
            handle.worker_id, handle.uds_path, self.retry_window
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._stopped is not None
        await self._stopped.wait()

    def begin_drain(self, grace: float = 0.5) -> None:
        """Flip to draining now; full shutdown after ``grace`` seconds
        (same contract as ``PhaseService.begin_drain``)."""
        if self._draining:
            return
        self._draining = True

        async def _later() -> None:
            await asyncio.sleep(grace)
            await self.shutdown(drain=True)

        self._drain_task = asyncio.ensure_future(_later())

    async def shutdown(self, drain: bool = True) -> None:
        """Stop the cluster: drain client connections, then stop the
        workers gracefully (each drains and checkpoints)."""
        if self._server is None:
            return
        self._draining = True
        drain_task = self._drain_task
        if drain_task is not None and drain_task is not asyncio.current_task():
            self._drain_task = None
            drain_task.cancel()
        server, self._server = self._server, None
        server.close()
        await server.wait_closed()
        if self._health_task is not None:
            self._health_task.cancel()
            self._health_task = None

        connections = list(self._connections.values())
        if drain:
            for connection in connections:
                for task in connection.tasks[:1]:  # the reader
                    task.cancel()
            for connection in connections:
                try:
                    await asyncio.wait_for(
                        connection.queue.put(None), self.drain_timeout
                    )
                except asyncio.TimeoutError:
                    pass
            for connection in connections:
                for task in connection.tasks[1:]:  # the worker
                    try:
                        await asyncio.wait_for(
                            asyncio.shield(task), self.drain_timeout
                        )
                    except (asyncio.CancelledError, Exception):
                        pass
        for connection in connections:
            for task in connection.tasks:
                task.cancel()
            await self._close_client(connection)
        self._connections.clear()

        await self.supervisor.stop_all(timeout=self.drain_timeout)
        for channel in self._control.values():
            await channel.close()
        self._control.clear()
        self._emit(
            "cluster_stop", drained=drain,
            requests=self.requests_served,
            migrations=self.migrations_completed,
        )
        if self._gateway is not None:
            gateway, self._gateway = self._gateway, None
            await gateway.shutdown()
        if self._stopped is not None:
            self._stopped.set()

    async def _health_loop(self) -> None:
        """Detect crashed workers and restart them on the same socket
        and data dir; channels ride the restart via their retry window."""
        while True:
            await asyncio.sleep(0.25)
            for handle in self.supervisor.crashed_workers():
                worker_id = handle.worker_id
                if worker_id in self._restarting:
                    continue
                self._restarting.add(worker_id)
                asyncio.ensure_future(self._restart_worker(worker_id))

    async def _restart_worker(self, worker_id: str) -> None:
        try:
            await self.supervisor.restart_worker(worker_id)
        except ClusterError as error:
            # Restart budget exhausted (or the worker was stopped
            # mid-crash): stop routing *new* sessions to it. Existing
            # table entries fail loudly per-request.
            if worker_id in self.shard_map and len(self.shard_map) > 1:
                self.shard_map.remove_worker(worker_id)
            self._emit(
                "cluster_worker_abandoned", worker=worker_id,
                error=str(error),
            )
        finally:
            self._restarting.discard(worker_id)
            self.refresh_cluster_metrics()

    # -- routing ---------------------------------------------------------------

    def route(self, session: str) -> str:
        """The worker that owns ``session`` — table entry when live,
        rendezvous owner otherwise."""
        owner = self._sessions.get(session)
        if owner is None:
            owner = self.shard_map.owner_of(session)
        return owner

    def control_channel(self, worker_id: str) -> _WorkerChannel:
        channel = self._control.get(worker_id)
        if channel is None:
            raise ClusterError(f"no such worker: {worker_id!r}")
        return channel

    async def _gate_wait(self, session: str) -> None:
        """Block while ``session`` is being migrated."""
        while True:
            gate = self._gates.get(session)
            if gate is None:
                return
            await gate.wait()

    def _client_channel(
        self, connection: _ClientConnection, worker_id: str
    ) -> _WorkerChannel:
        channel = connection.channels.get(worker_id)
        if channel is None:
            handle = self.supervisor.workers.get(worker_id)
            if handle is None:
                raise ClusterError(f"no such worker: {worker_id!r}")
            channel = _WorkerChannel(
                worker_id, handle.uds_path, self.retry_window
            )
            connection.channels[worker_id] = channel
        return channel

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        if self._draining or len(self._connections) >= self.max_connections:
            self.connections_refused += 1
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
            return
        connection = _ClientConnection(reader, writer, self.queue_size)
        self._connections[id(connection)] = connection
        reader_task = asyncio.ensure_future(self._read_loop(connection))
        worker_task = asyncio.ensure_future(self._work_loop(connection))
        connection.tasks = [reader_task, worker_task]
        try:
            await worker_task
        except asyncio.CancelledError:
            pass
        finally:
            reader_task.cancel()
            if self._connections.pop(id(connection), None) is not None:
                await self._close_client(connection)

    async def _close_client(self, connection: _ClientConnection) -> None:
        # May race its counterpart in shutdown(): detach the channel
        # dict before the first await so both runs see a stable list.
        channels, connection.channels = list(
            connection.channels.values()
        ), {}
        for channel in channels:
            await channel.close()
        try:
            connection.writer.close()
            await connection.writer.wait_closed()
        except Exception:
            pass

    async def _read_loop(self, connection: _ClientConnection) -> None:
        """Parse just enough of each line to route it; queue the raw
        bytes. The bounded queue backpressures exactly like the
        single-process service."""
        try:
            while True:
                try:
                    line = await connection.reader.readline()
                except (asyncio.LimitOverrunError, ValueError) as error:
                    await connection.queue.put(
                        ("bad", None, ProtocolError(
                            f"request line exceeds the "
                            f"{protocol.MAX_LINE_BYTES}-byte limit: "
                            f"{error}"
                        ))
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                item = self._classify_line(line)
                if (
                    self._draining
                    and item[0] in ("open", "fwd")
                ):
                    request_id = item[2] if item[0] == "fwd" else item[1].id
                    await connection.queue.put(("bad", request_id,
                                                ServiceUnavailableError(
                        "service is draining; no new work is accepted"
                    )))
                    continue
                await connection.queue.put(item)
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            try:
                connection.queue.put_nowait(None)
            except asyncio.QueueFull:
                pass

    def _classify_line(self, line: bytes) -> tuple:
        """Turn one raw request line into a queue item:
        ``("fwd", raw, id, op, session)`` for the proxy fast path,
        ``("open", request)``, ``("local", request)`` for ops the
        dispatcher answers itself, or ``("bad", id, error)``.
        """
        match = _FAST_ROUTE.match(line)
        if match is not None:
            op = match.group(1).decode("ascii")
            request_id = int(match.group(2))
            session = match.group(3).decode("ascii")
            return ("fwd", line, request_id, op, session)
        try:
            request = protocol.parse_request(line)
        except ProtocolError as error:
            from repro.service.server import _best_effort_id

            return ("bad", _best_effort_id(line), error)
        if isinstance(request, (
            protocol.PingRequest,
            protocol.StatsRequest,
            protocol.ClusterRequest,
        )):
            return ("local", request)
        if isinstance(request, protocol.OpenRequest):
            return ("open", request)
        # A routable op the regex could not take (e.g. an escaped
        # session name): re-encode canonically and forward that.
        raw = protocol.encode(protocol.request_payload(request))
        return ("fwd", raw, request.id, request.op, request.session)

    async def _work_loop(self, connection: _ClientConnection) -> None:
        while True:
            item = await connection.queue.get()
            if item is None:
                break
            self.requests_served += 1
            if self._telemetry is not None:
                self._m_requests.inc()
            request_id: Optional[int] = None
            try:
                kind = item[0]
                if kind == "bad":
                    _, request_id, error = item
                    raise error
                if kind == "local":
                    request = item[1]
                    request_id = request.id
                    result = await self._execute_local(request)
                    payloads = [
                        protocol.encode(
                            protocol.ok_response(request.id, result)
                        )
                    ]
                elif kind == "open":
                    request = item[1]
                    request_id = request.id
                    payloads = await self._handle_open(connection, request)
                else:
                    _, raw, request_id, op, session = item
                    payloads = await self._forward(
                        connection, raw, request_id, op, session
                    )
            except ReproError as error:
                self.errors_returned += 1
                if self._telemetry is not None:
                    self._m_errors.inc()
                payloads = [protocol.encode(protocol.error_response(
                    request_id if request_id is not None else -1,
                    protocol.error_code_for(error),
                    str(error),
                ))]
            except Exception as error:  # pragma: no cover - defensive
                self.errors_returned += 1
                if self._telemetry is not None:
                    self._m_errors.inc()
                payloads = [protocol.encode(protocol.error_response(
                    request_id if request_id is not None else -1,
                    "internal",
                    f"{type(error).__name__}: {error}",
                ))]
            try:
                for payload in payloads:
                    connection.writer.write(payload)
                await connection.writer.drain()
            except (ConnectionError, RuntimeError):
                break

    # -- request execution -----------------------------------------------------

    async def _forward(
        self,
        connection: _ClientConnection,
        raw: bytes,
        request_id: int,
        op: str,
        session: str,
    ) -> List[bytes]:
        await self._gate_wait(session)
        worker_id = self.route(session)
        channel = self._client_channel(connection, worker_id)
        resendable = op in ("predict", "snapshot")
        self._inflight[session] = self._inflight.get(session, 0) + 1
        try:
            pushes, response = await channel.exchange(raw, resendable)
        finally:
            remaining = self._inflight.get(session, 1) - 1
            if remaining:
                self._inflight[session] = remaining
            else:
                self._inflight.pop(session, None)
        if op == "close" and response.startswith(b'{"id":') and (
            b'"ok":true' in response
        ):
            self._sessions.pop(session, None)
        elif _NOT_FOUND_MARKER in response:
            # The worker no longer knows the session (evicted without
            # persistence, or a RAM-only worker restarted): drop the
            # stale route so a future open hashes fresh.
            self._sessions.pop(session, None)
        return pushes + [response]

    async def _handle_open(
        self, connection: _ClientConnection, request: protocol.OpenRequest
    ) -> List[bytes]:
        session = request.session
        if session is None:
            # Anonymous opens get a cluster-unique name here: name
            # allocation must be global, not per-worker, or two workers
            # could hand out the same name.
            while True:
                session = f"session-{next(self._names)}"
                if session not in self._sessions:
                    break
            request = protocol.OpenRequest(
                id=request.id,
                session=session,
                config=request.config,
                interval_instructions=request.interval_instructions,
                snapshot=request.snapshot,
            )
        await self._gate_wait(session)
        worker_id = self.route(session)
        channel = self._client_channel(connection, worker_id)
        raw = protocol.encode(protocol.request_payload(request))
        self._inflight[session] = self._inflight.get(session, 0) + 1
        try:
            pushes, response = await channel.exchange(raw, resendable=False)
        finally:
            remaining = self._inflight.get(session, 1) - 1
            if remaining:
                self._inflight[session] = remaining
            else:
                self._inflight.pop(session, None)
        if response.startswith(b'{"id":') and b'"ok":true' in response:
            self._sessions[session] = worker_id
        return pushes + [response]

    async def _execute_local(self, request: protocol.Request) -> dict:
        if isinstance(request, protocol.PingRequest):
            return {
                "protocol": protocol.PROTOCOL_VERSION,
                "draining": self._draining,
                "cluster": True,
            }
        if isinstance(request, protocol.StatsRequest):
            return await self.aggregate_stats()
        assert isinstance(request, protocol.ClusterRequest)
        return await self._execute_cluster(request)

    async def _execute_cluster(
        self, request: protocol.ClusterRequest
    ) -> dict:
        action = request.action
        params = request.params
        if action == "status":
            return self.cluster_status()
        if action == "diagnostics":
            return await self.aggregate_diagnostics()
        if action == "migrate":
            session = params.get("session")
            if not isinstance(session, str) or not session:
                raise ClusterError(
                    "migrate requires params.session (a session name)"
                )
            target = params.get("worker")
            if target is not None and not isinstance(target, str):
                raise ClusterError("migrate params.worker must be a string")
            return await self.migrator.migrate(session, target)
        if action == "drain-worker":
            worker = params.get("worker")
            if not isinstance(worker, str) or not worker:
                raise ClusterError(
                    "drain-worker requires params.worker (a worker id)"
                )
            return await self.migrator.drain_worker(worker)
        if action == "rebalance":
            return await self.migrator.rebalance()
        if action == "grow":
            count = params.get("count", 1)
            if not isinstance(count, int) or isinstance(count, bool) or (
                count <= 0
            ):
                raise ClusterError("grow params.count must be a positive int")
            return await self.grow(count)
        raise ClusterError(
            f"unknown cluster action {action!r}; expected one of "
            f"status, diagnostics, migrate, drain-worker, rebalance, grow"
        )

    # -- cluster control plane -------------------------------------------------

    async def grow(self, count: int = 1) -> dict:
        """Add ``count`` fresh workers to the fleet and shard map.

        New shards route to them immediately; existing sessions stay
        put until :meth:`SessionMigrator.rebalance` moves them.
        """
        if len(self.shard_map) + count > self.shard_map.num_shards:
            raise ClusterError(
                f"cannot grow to {len(self.shard_map) + count} workers: "
                f"only {self.shard_map.num_shards} shards exist"
            )
        added = []
        for _ in range(count):
            handle = await self.supervisor.start_worker()
            self._admit_worker(handle)
            added.append(handle.worker_id)
        self.refresh_cluster_metrics()
        self._emit("cluster_grown", added=added,
                   workers=list(self.shard_map.workers))
        return {
            "added": added,
            "workers": list(self.shard_map.workers),
        }

    def cluster_status(self) -> dict:
        """Topology without touching the workers: supervisor states,
        shard ownership, session placement, migration counters."""
        sessions_per_worker: Dict[str, int] = {}
        for owner in self._sessions.values():
            sessions_per_worker[owner] = (
                sessions_per_worker.get(owner, 0) + 1
            )
        workers = {}
        occupancy = (
            self.shard_map.occupancy() if len(self.shard_map) else {}
        )
        for worker_id, handle in sorted(self.supervisor.workers.items()):
            entry = handle.to_dict()
            entry["shards"] = occupancy.get(worker_id, 0)
            entry["sessions"] = sessions_per_worker.get(worker_id, 0)
            entry["in_map"] = worker_id in self.shard_map
            workers[worker_id] = entry
        return {
            "workers": workers,
            "shard_map": self.shard_map.to_dict(),
            "sessions": len(self._sessions),
            "migrations": {
                "completed": self.migrations_completed,
                "failed": self.migrations_failed,
                "in_progress": len(self._gates),
            },
            "draining": self._draining,
            "uptime_seconds": self.touch_uptime(),
        }

    async def _gather_from_workers(
        self, request_factory
    ) -> Dict[str, dict]:
        """Run one control request against every up worker; skips
        workers that are down or unreachable (their absence is visible
        in the status section)."""
        results: Dict[str, dict] = {}
        for worker_id in self.shard_map.workers:
            handle = self.supervisor.workers.get(worker_id)
            if handle is None or handle.state != UP:
                continue
            channel = self.control_channel(worker_id)
            try:
                results[worker_id] = await channel.request(
                    request_factory(channel.next_id()), resendable=True
                )
            except (ClusterError, ReproError):
                continue
        return results

    async def aggregate_stats(self) -> dict:
        """Cluster-wide ``stats``: worker counters summed, same
        top-level keys a single service reports, plus ``cluster`` and
        ``per_worker`` sections."""
        per_worker = await self._gather_from_workers(
            lambda rid: protocol.StatsRequest(id=rid)
        )
        totals: Dict[str, object] = {}
        sum_keys = (
            "live", "opened", "closed", "evicted", "expired",
            "evicted_saved", "evicted_lost", "evicted_recycled",
            "hydrated", "adopted", "requests", "errors", "connections",
        )
        for key in sum_keys:
            totals[key] = sum(
                stats.get(key, 0) or 0 for stats in per_worker.values()
            )
        prediction = {
            key: sum(
                (stats.get("predictions") or {}).get(key, 0) or 0
                for stats in per_worker.values()
            )
            for key in (
                "scored", "correct", "confident_scored",
                "confident_correct",
            )
        }
        scored = prediction["scored"]
        confident = prediction["confident_scored"]
        prediction["accuracy"] = (
            prediction["correct"] / scored if scored else None
        )
        prediction["confident_accuracy"] = (
            prediction["confident_correct"] / confident
            if confident else None
        )
        totals["predictions"] = prediction
        totals["uptime_seconds"] = self.touch_uptime()
        totals["cluster"] = {
            "workers": len(self.shard_map),
            "dispatcher_requests": self.requests_served,
            "dispatcher_errors": self.errors_returned,
            "sessions_routed": len(self._sessions),
            "migrations_completed": self.migrations_completed,
        }
        totals["per_worker"] = per_worker
        return totals

    async def aggregate_diagnostics(self) -> dict:
        """Cluster-wide diagnostics in the same shape a single
        service's ``diagnostics()`` produces (so the dashboard renders
        unchanged), plus a ``cluster`` section for the worker panel."""
        per_worker = await self._gather_from_workers(
            lambda rid: protocol.ClusterRequest(
                id=rid, action="diagnostics"
            )
        )
        occupancy: Dict[str, int] = {}
        registry: Dict[str, object] = {}
        prediction = {
            "scored": 0, "correct": 0,
            "confident_scored": 0, "confident_correct": 0,
        }
        pool_capacity = pool_active = 0
        pool_present = False
        queue_depth = self.ingest_queue_depth()
        requests = errors = 0
        for diag in per_worker.values():
            for phase, count in (diag.get("phase_occupancy") or {}).items():
                occupancy[phase] = occupancy.get(phase, 0) + count
            for key, value in (diag.get("registry") or {}).items():
                if isinstance(value, (int, float)):
                    registry[key] = (registry.get(key, 0) or 0) + value
            for key in prediction:
                prediction[key] += (
                    (diag.get("prediction") or {}).get(key, 0) or 0
                )
            pool = diag.get("pool")
            if pool:
                pool_present = True
                pool_capacity += pool.get("capacity", 0) or 0
                pool_active += pool.get("active_slots", 0) or 0
            queue_depth += diag.get("ingest_queue_depth", 0) or 0
            requests += diag.get("requests", 0) or 0
            errors += diag.get("errors", 0) or 0
        scored = prediction["scored"]
        confident = prediction["confident_scored"]
        prediction_out = dict(prediction)
        prediction_out["accuracy"] = (
            prediction["correct"] / scored if scored else None
        )
        prediction_out["confident_accuracy"] = (
            prediction["confident_correct"] / confident
            if confident else None
        )
        status = self.cluster_status()
        status["per_worker"] = {
            worker_id: {
                "requests": diag.get("requests"),
                "errors": diag.get("errors"),
                "ingest_queue_depth": diag.get("ingest_queue_depth"),
                "registry_live": (diag.get("registry") or {}).get("live"),
            }
            for worker_id, diag in per_worker.items()
        }
        return {
            "uptime_seconds": self.touch_uptime(),
            "draining": self._draining,
            "requests": requests,
            "errors": errors,
            "connections": len(self._connections),
            "connections_refused": self.connections_refused,
            "ingest_queue_depth": queue_depth,
            "phase_occupancy": occupancy,
            "prediction": prediction_out,
            "registry": registry,
            "pool": (
                {
                    "capacity": pool_capacity,
                    "active_slots": pool_active,
                    "utilization": (
                        pool_active / pool_capacity
                        if pool_capacity else None
                    ),
                }
                if pool_present else None
            ),
            "persistence": None,
            "cluster": status,
        }

    def _emit(self, event: str, **fields: object) -> None:
        if self._telemetry is not None:
            self._telemetry.emit(event, **fields)


# -- thread hosting ------------------------------------------------------------


class ClusterHandle:
    """A running cluster on a background thread (tests, benchmarks,
    demos) — the cluster counterpart of
    :class:`~repro.service.server.ServiceHandle`."""

    def __init__(
        self, dispatcher: ClusterDispatcher, drain: bool = True
    ) -> None:
        self.dispatcher = dispatcher
        self.drain = drain
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.dispatcher.port

    @property
    def host(self) -> str:
        return self.dispatcher.host

    def run_control(self, coroutine, timeout: float = 60.0):
        """Run a dispatcher coroutine (migrate, drain_worker, …) on the
        cluster's loop from the calling thread."""
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout)

    def start(self, timeout: float = 120.0) -> "ClusterHandle":
        self._thread = threading.Thread(
            target=self._run, name="repro-cluster", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise ServiceUnavailableError(
                "cluster failed to start within the timeout"
            )
        if self._error is not None:
            raise ServiceUnavailableError(
                f"cluster failed to start: {self._error}"
            )
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.dispatcher.start())
        except BaseException as error:
            self._error = error
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_until_complete(self.dispatcher.serve_forever())
        finally:
            loop.close()

    def stop(
        self, drain: Optional[bool] = None, timeout: float = 60.0
    ) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None or not thread.is_alive():
            return
        should_drain = self.drain if drain is None else drain
        future = asyncio.run_coroutine_threadsafe(
            self.dispatcher.shutdown(drain=should_drain), loop
        )
        try:
            future.result(timeout)
        except Exception:
            pass
        thread.join(timeout)

    def __enter__(self) -> "ClusterHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def start_cluster_in_thread(**kwargs: object) -> ClusterHandle:
    """Build a :class:`ClusterDispatcher` and run it on a daemon
    thread; returns a started handle (``handle.port`` is live and all
    workers are ready)."""
    dispatcher = ClusterDispatcher(**kwargs)  # type: ignore[arg-type]
    return ClusterHandle(dispatcher).start()
