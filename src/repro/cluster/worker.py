"""Cluster worker entry point: ``python -m repro.cluster.worker``.

A worker is a complete :class:`~repro.service.server.PhaseService`
(pool-backed, persistence-capable) listening on a Unix domain socket
instead of TCP. The dispatcher is its only client, so the socket lives
in the cluster's private runtime directory and ``max_connections`` is
sized for the dispatcher's per-client channels, not the public
internet.

The process contract with :class:`~repro.cluster.supervisor.ClusterSupervisor`:

- construction recovers any persisted sessions from ``--data-dir``
  *before* binding, so the READY line implies recovery is complete;
- ``CLUSTER-WORKER READY <path>`` is printed to stdout (and flushed)
  once the socket is accepting;
- SIGTERM/SIGINT trigger a graceful drain (queued frames execute,
  final checkpoint, sockets close) — the supervisor's stop path;
- when ``--parent-pid`` is given, a watchdog exits the worker once the
  parent dies, so a killed dispatcher never leaks worker processes.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys
from typing import List, Optional

from repro.service.server import PhaseService

#: Stdout banner the supervisor waits for; the socket path follows.
READY_BANNER = "CLUSTER-WORKER READY"

#: How often the orphan watchdog checks that the parent is alive.
_PARENT_POLL_SECONDS = 1.0


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description=(
            "Run one cluster worker: a full PhaseService on a Unix "
            "domain socket, supervised by a cluster dispatcher."
        ),
    )
    parser.add_argument("--uds", required=True, metavar="PATH",
                        help="Unix socket path to listen on")
    parser.add_argument("--worker-id", default="w0",
                        help="stable worker id for logs and telemetry")
    parser.add_argument("--data-dir", default=None, metavar="DIR",
                        help="per-worker durable session directory")
    parser.add_argument("--sync", default="batch",
                        choices=("none", "batch", "always"),
                        help="journal sync mode (with --data-dir)")
    parser.add_argument("--checkpoint-interval", type=float, default=30.0,
                        help="seconds between checkpoint sweeps")
    parser.add_argument("--max-sessions", type=int, default=1024,
                        help="session table capacity")
    parser.add_argument("--pool-slots", type=int, default=None,
                        help="SoA tracker pool capacity (default scalar)")
    parser.add_argument("--coalesce", action="store_true",
                        help="micro-batch observes into fused pool rounds")
    parser.add_argument("--coalesce-window", type=float, default=0.0,
                        help="round gather delay in seconds (with --coalesce)")
    parser.add_argument("--queue-size", type=int, default=32,
                        help="per-connection ingest queue depth")
    parser.add_argument("--max-connections", type=int, default=1024,
                        help="connection cap (dispatcher channels)")
    parser.add_argument("--idle-ttl", type=float, default=None,
                        help="seconds of idleness before eviction")
    parser.add_argument("--parent-pid", type=int, default=None,
                        help="exit when this pid is gone (orphan guard)")
    parser.add_argument("--drain-timeout", type=float, default=30.0,
                        help="per-connection drain bound at shutdown")
    return parser


def build_service(args: argparse.Namespace) -> PhaseService:
    return PhaseService(
        uds_path=args.uds,
        max_sessions=args.max_sessions,
        idle_ttl=args.idle_ttl,
        max_connections=args.max_connections,
        queue_size=args.queue_size,
        drain_timeout=args.drain_timeout,
        data_dir=args.data_dir,
        checkpoint_interval=args.checkpoint_interval,
        sync=args.sync,
        pool_slots=args.pool_slots,
        coalesce=args.coalesce,
        coalesce_window=args.coalesce_window,
    )


async def _watch_parent(parent_pid: int, service: PhaseService) -> None:
    """Drain and exit once the parent process disappears."""
    while True:
        await asyncio.sleep(_PARENT_POLL_SECONDS)
        if os.getppid() != parent_pid:
            # Reparented to init: the dispatcher/supervisor died
            # without stopping us. Drain so persisted sessions get a
            # final checkpoint, then exit.
            await service.shutdown(drain=True)
            return


async def run_worker(args: argparse.Namespace) -> int:
    service = build_service(args)
    await service.start()
    print(f"{READY_BANNER} {args.uds}", flush=True)
    if service.sessions_recovered:
        print(
            f"worker {args.worker_id}: recovered "
            f"{service.sessions_recovered} session(s) from "
            f"{args.data_dir}",
            flush=True,
        )

    loop = asyncio.get_event_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(
            signum,
            lambda: asyncio.ensure_future(service.shutdown(drain=True)),
        )
    watchdog: Optional[asyncio.Task] = None
    if args.parent_pid is not None:
        watchdog = asyncio.ensure_future(
            _watch_parent(args.parent_pid, service)
        )
    try:
        await service.serve_forever()
    finally:
        if watchdog is not None:
            watchdog.cancel()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    try:
        return asyncio.run(run_worker(args))
    except KeyboardInterrupt:  # pragma: no cover - signal path
        return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
