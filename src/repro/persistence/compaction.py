"""Journal compaction: drop segments every checkpoint has superseded.

A journal segment named ``seg-<F>`` holds records with sequence
numbers in ``[F, F')`` where ``F'`` is the next segment's first seq.
Once every session's checkpoint covers seq ``S`` (and sessions without
a checkpoint still have their ``open`` record at hand), any whole
segment strictly below the minimum still-needed seq is dead weight:
recovery would skip all of it. :func:`compact_journal` deletes those
segments; the active (newest) segment is never touched.

Deletion order is oldest-first and stops at the first segment still
needed, so a crash mid-compaction leaves a journal that is merely less
compacted, never less correct.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, TYPE_CHECKING, Union

from repro.persistence.journal import list_segments, segment_first_seq

if TYPE_CHECKING:  # pragma: no cover - import-time typing only
    from repro.telemetry import Telemetry


def compact_journal(
    root: Union[str, Path],
    min_needed_seq: int,
    active_path: "Optional[Union[str, Path]]" = None,
    telemetry: "Optional[Telemetry]" = None,
) -> int:
    """Delete whole segments whose every record has
    ``seq < min_needed_seq``; returns how many were removed.

    ``min_needed_seq`` is the smallest sequence number any session
    still depends on — ``checkpoint seq + 1`` for checkpointed
    sessions, the ``open`` record's seq for ones never checkpointed,
    or the journal's ``next_seq`` when no session constrains anything.
    """
    active = Path(active_path) if active_path is not None else None
    segments = list_segments(root)
    removed = 0
    for segment, following in zip(segments, segments[1:]):
        if active is not None and segment == active:
            break
        # ``segment`` spans [first(segment), first(following)); it is
        # disposable only when even its last record is below the need.
        if segment_first_seq(following) > min_needed_seq:
            break
        try:
            segment.unlink()
        except OSError:  # pragma: no cover - raced deletion
            break
        removed += 1
    if telemetry is not None and removed:
        telemetry.metrics.counter(
            "repro_persistence_segments_compacted_total",
            "Journal segments deleted by compaction",
        ).inc(removed)
        telemetry.emit(
            "journal_compacted", removed=removed,
            min_needed_seq=min_needed_seq,
        )
    return removed
