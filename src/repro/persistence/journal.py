"""Append-only segment journal with CRC-framed records.

The write-ahead half of the durable session tier. Every session
lifecycle change and every observed branch batch becomes one framed
record appended to the active segment file::

    [length: u32 LE] [crc32(payload): u32 LE] [payload: UTF-8 JSON]

The payload always carries a ``seq`` field — one global, strictly
increasing sequence number per record — which is what checkpoints
reference ("this snapshot covers everything up to seq N") and what
compaction reasons about. Segments are named after the first sequence
number they hold (``seg-<first seq, 16 hex>.jnl``), so a segment's
coverage is knowable from directory listing alone.

Durability is a dial (:data:`SYNC_MODES`):

- ``none`` — records stay in the process's write buffer until the next
  rotation, :meth:`Journal.sync`, or close. Fastest; a ``kill -9`` can
  lose the buffered tail.
- ``batch`` — every append is flushed to the OS (so a process kill
  loses nothing) and ``fsync`` runs once per ``batch_records`` appends
  (bounding what a *machine* crash can lose). The default.
- ``always`` — flush + ``fsync`` per append: an acknowledged record
  survives power loss.

Reading is torn-tail tolerant: :func:`replay_journal` walks the
segments in order and, on the first frame that is short, CRC-corrupt,
or out of sequence, truncates the file back to the last good record
and stops — a counted, non-fatal event (exactly what a ``kill -9``
mid-append leaves behind). Segments after a truncation point are
causally unusable and are discarded.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, TYPE_CHECKING, Union

from repro.errors import PersistenceError

if TYPE_CHECKING:  # pragma: no cover - import-time typing only
    from repro.telemetry import Telemetry

#: Valid values for the journal's ``sync`` dial.
SYNC_MODES = ("none", "batch", "always")

#: Frame header: payload length then crc32 of the payload bytes.
_HEADER = struct.Struct("<II")

#: Upper bound on one record's payload. A frame whose declared length
#: exceeds this is treated as corruption, not as a huge record —
#: :meth:`Journal.append` refuses oversized payloads so a record that
#: replay would reject can never be written.
MAX_RECORD_BYTES = 32 * 1024 * 1024

_SEGMENT_PREFIX = "seg-"
_SEGMENT_SUFFIX = ".jnl"


def segment_name(first_seq: int) -> str:
    """The file name of the segment whose first record is ``first_seq``."""
    return f"{_SEGMENT_PREFIX}{first_seq:016x}{_SEGMENT_SUFFIX}"


def segment_first_seq(path: Union[str, Path]) -> int:
    """The first sequence number a segment file name declares."""
    stem = Path(path).name
    if not (
        stem.startswith(_SEGMENT_PREFIX) and stem.endswith(_SEGMENT_SUFFIX)
    ):
        raise PersistenceError(f"not a journal segment name: {stem!r}")
    return int(stem[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)], 16)


def list_segments(root: Union[str, Path]) -> List[Path]:
    """Segment files under ``root``, oldest first."""
    root = Path(root)
    if not root.is_dir():
        return []
    segments = [
        path
        for path in root.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")
        if path.is_file()
    ]
    return sorted(segments, key=segment_first_seq)


def encode_record(payload: bytes) -> bytes:
    """Frame one payload: length + crc32 header, then the bytes."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class ReplayStats:
    """What :func:`replay_journal` saw — including the damage."""

    records: int = 0
    segments: int = 0
    bytes_read: int = 0
    #: Torn/corrupt tails truncated back to the last good record.
    torn_tails: int = 0
    truncated_bytes: int = 0
    #: Whole segments discarded because they follow a truncation point.
    segments_discarded: int = 0
    #: One past the highest sequence number seen (the next to assign).
    next_seq: int = 1


@dataclass
class JournalReplay:
    """The decoded records plus the :class:`ReplayStats` accounting."""

    records: List[dict] = field(default_factory=list)
    stats: ReplayStats = field(default_factory=ReplayStats)


def _read_frames(path: Path) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(frame_start_offset, payload)`` for every *complete,
    CRC-valid* frame; raises :class:`_TornFrame` at the first bad one."""
    with open(path, "rb") as handle:
        offset = 0
        while True:
            header = handle.read(_HEADER.size)
            if not header:
                return
            if len(header) < _HEADER.size:
                raise _TornFrame(offset)
            length, crc = _HEADER.unpack(header)
            if length > MAX_RECORD_BYTES:
                raise _TornFrame(offset)
            payload = handle.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                raise _TornFrame(offset)
            yield offset, payload
            offset += _HEADER.size + length


class _TornFrame(Exception):
    """Internal: a frame at ``offset`` is incomplete or corrupt."""

    def __init__(self, offset: int) -> None:
        super().__init__(f"torn frame at offset {offset}")
        self.offset = offset


def replay_journal(
    root: Union[str, Path],
    truncate: bool = True,
    telemetry: "Optional[Telemetry]" = None,
) -> JournalReplay:
    """Decode every record under ``root``, repairing torn tails.

    The first short, CRC-corrupt, undecodable, or out-of-sequence frame
    ends the replay: with ``truncate=True`` the damaged segment is cut
    back to its last good record and any *later* segments (causally
    after the tear) are deleted. Both repairs are counted in the
    returned :class:`ReplayStats` and emitted as telemetry events —
    never raised, because this is the expected aftermath of ``kill -9``.
    """
    replay = JournalReplay()
    stats = replay.stats
    segments = list_segments(root)
    last_seq = 0
    torn_at: Optional[int] = None  # index into ``segments``

    for index, segment in enumerate(segments):
        if torn_at is not None:
            break
        stats.segments += 1
        try:
            for offset, payload in _read_frames(segment):
                try:
                    record = json.loads(payload.decode("utf-8"))
                    seq = record["seq"]
                except (UnicodeDecodeError, ValueError, KeyError, TypeError):
                    raise _TornFrame(offset) from None
                if not isinstance(seq, int) or seq <= last_seq:
                    raise _TornFrame(offset)
                last_seq = seq
                stats.records += 1
                stats.bytes_read += _HEADER.size + len(payload)
                replay.records.append(record)
        except _TornFrame as torn:
            stats.torn_tails += 1
            size = segment.stat().st_size
            stats.truncated_bytes += size - torn.offset
            if truncate:
                with open(segment, "rb+") as handle:
                    handle.truncate(torn.offset)
            torn_at = index
            if telemetry is not None:
                telemetry.emit(
                    "journal_torn_tail",
                    segment=segment.name,
                    offset=torn.offset,
                    dropped_bytes=size - torn.offset,
                )

    if torn_at is not None:
        for segment in segments[torn_at + 1:]:
            stats.segments_discarded += 1
            if truncate:
                try:
                    segment.unlink()
                except OSError:  # pragma: no cover - raced deletion
                    pass
            if telemetry is not None:
                telemetry.emit(
                    "journal_segment_discarded", segment=segment.name
                )

    stats.next_seq = last_seq + 1
    return replay


class Journal:
    """The append side: one writer, framed records, segment rotation.

    Parameters
    ----------
    root:
        Segment directory (created if missing).
    sync:
        One of :data:`SYNC_MODES`; see the module docstring.
    segment_bytes:
        Rotate to a fresh segment once the active one exceeds this.
    batch_records:
        In ``batch`` mode, ``fsync`` once per this many appends.
    next_seq:
        First sequence number to assign — pass the replay's
        ``stats.next_seq`` when reopening an existing journal.
    telemetry:
        Optional hub: appended-record/byte counters, an
        ``fsync``-latency histogram, and the durability-lag gauge
        (records appended but not yet fsynced).
    """

    def __init__(
        self,
        root: Union[str, Path],
        sync: str = "batch",
        segment_bytes: int = 4 * 1024 * 1024,
        batch_records: int = 64,
        next_seq: int = 1,
        telemetry: "Optional[Telemetry]" = None,
    ) -> None:
        if sync not in SYNC_MODES:
            raise PersistenceError(
                f"sync must be one of {SYNC_MODES}, got {sync!r}"
            )
        if segment_bytes <= 0 or batch_records <= 0 or next_seq <= 0:
            raise PersistenceError(
                "segment_bytes, batch_records and next_seq must be positive"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.sync_mode = sync
        self.segment_bytes = segment_bytes
        self.batch_records = batch_records
        self._next_seq = next_seq
        self._unsynced = 0
        self.records_appended = 0
        self.bytes_appended = 0
        self.fsyncs = 0
        self._telemetry = telemetry
        if telemetry is not None:
            self._m_records = telemetry.counter(
                "repro_persistence_journal_records_total",
                "Records appended to the session journal",
            )
            self._m_bytes = telemetry.counter(
                "repro_persistence_journal_bytes_total",
                "Framed bytes appended to the session journal",
            )
            self._h_fsync = telemetry.histogram(
                "repro_persistence_fsync_seconds",
                "Wall time of one journal fsync",
            )
            self._g_lag = telemetry.gauge(
                "repro_persistence_unsynced_records",
                "Durability lag: records appended but not yet fsynced",
            )

        # Continue the newest segment when it has headroom; otherwise
        # start a fresh one named after the next sequence number.
        segments = list_segments(self.root)
        if segments and segments[-1].stat().st_size < segment_bytes:
            self.active_path = segments[-1]
        else:
            self.active_path = self.root / segment_name(next_seq)
        self._file = open(self.active_path, "ab")
        self._active_bytes = self.active_path.stat().st_size

    # -- the write path -------------------------------------------------------

    @property
    def next_seq(self) -> int:
        return self._next_seq

    @property
    def unsynced_records(self) -> int:
        """Durability lag: appended records not yet fsynced."""
        return self._unsynced

    def append(self, record: dict) -> int:
        """Frame and append ``record``; returns its sequence number.

        The record must be JSON-safe; ``seq`` is stamped in here. The
        write is flushed/fsynced per the journal's sync mode before
        this returns, so a caller that acknowledges afterwards gets the
        mode's durability guarantee.

        A payload over :data:`MAX_RECORD_BYTES` raises
        :class:`PersistenceError` *before* anything is written: replay
        treats such a frame as corruption and would truncate the
        journal there, discarding every later record.
        """
        if self._file is None:
            raise PersistenceError("journal is closed")
        seq = self._next_seq
        payload = json.dumps(
            dict(record, seq=seq), separators=(",", ":")
        ).encode("utf-8")
        if len(payload) > MAX_RECORD_BYTES:
            raise PersistenceError(
                f"journal record of {len(payload)} bytes exceeds the "
                f"{MAX_RECORD_BYTES}-byte frame cap"
            )
        frame = encode_record(payload)
        self._file.write(frame)
        self._next_seq += 1
        self._unsynced += 1
        self._active_bytes += len(frame)
        self.records_appended += 1
        self.bytes_appended += len(frame)
        if self._telemetry is not None:
            self._m_records.inc()
            self._m_bytes.inc(len(frame))
        if self.sync_mode == "always":
            self._flush(fsync=True)
        elif self.sync_mode == "batch":
            self._flush(fsync=self._unsynced >= self.batch_records)
        if self._telemetry is not None:
            self._g_lag.set(self._unsynced)
        if self._active_bytes >= self.segment_bytes:
            self._rotate()
        return seq

    def sync(self) -> None:
        """Flush and ``fsync`` everything appended so far."""
        if self._file is not None:
            self._flush(fsync=True)
            if self._telemetry is not None:
                self._g_lag.set(self._unsynced)

    def close(self) -> None:
        """Sync and close the active segment. Idempotent."""
        if self._file is None:
            return
        self._flush(fsync=self.sync_mode != "none")
        file, self._file = self._file, None
        file.close()

    @property
    def closed(self) -> bool:
        return self._file is None

    # -- internals ------------------------------------------------------------

    def _flush(self, fsync: bool) -> None:
        self._file.flush()
        if fsync:
            started = time.perf_counter()
            os.fsync(self._file.fileno())
            self.fsyncs += 1
            self._unsynced = 0
            if self._telemetry is not None:
                self._h_fsync.observe(time.perf_counter() - started)

    def _rotate(self) -> None:
        # The retiring segment is made fully durable so a torn tail can
        # only ever live in the active segment.
        self._flush(fsync=self.sync_mode != "none")
        self._file.close()
        self.active_path = self.root / segment_name(self._next_seq)
        self._file = open(self.active_path, "ab")
        self._active_bytes = 0

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Journal(root={str(self.root)!r}, sync={self.sync_mode!r}, "
            f"next_seq={self._next_seq})"
        )
