"""Crash recovery: checkpoints fast-forward, the journal tail replays.

:func:`recover_state` rebuilds the full session population from a data
directory, tolerating everything a ``kill -9`` leaves behind:

1. Load every readable checkpoint (name -> snapshot + covered ``seq``).
2. Replay the journal in sequence order (torn tails truncated by
   :func:`~repro.persistence.journal.replay_journal`):

   - an ``open`` record *materializes* a fresh tracker — unless a
     checkpoint already covers it;
   - an ``observe`` record is applied through the tracker's own
     ``observe_batch`` (the vectorized ingest path the live service
     uses, so replayed state is byte-identical to never-crashed
     state). A session whose first uncovered record is an observe is
     materialized from its checkpoint on demand;
   - a ``close`` record drops the session and schedules its checkpoint
     for deletion.

3. Sessions that needed no replay stay **cold**: their checkpoint is
   current, so they hydrate on first touch instead of occupying RAM —
   which is what keeps recovery O(journal tail), not O(all sessions).

Damage beyond the torn tail (a checkpoint that will not restore, a
record that will not apply) demotes the affected session instead of
failing recovery: back to its last good checkpoint when one exists,
dropped and counted otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, TYPE_CHECKING, Union

from repro.core.online import PhaseTracker
from repro.errors import PersistenceError, ReproError
from repro.persistence.checkpoints import CheckpointStore
from repro.persistence.journal import ReplayStats, replay_journal
from repro.service.session import build_config
from repro.service.snapshot import restore_tracker
from repro.workloads.trace import DEFAULT_INTERVAL_INSTRUCTIONS

if TYPE_CHECKING:  # pragma: no cover - import-time typing only
    from repro.telemetry import Telemetry


@dataclass
class RecoveredSession:
    """One session materialized during replay."""

    name: str
    tracker: PhaseTracker
    intervals_pushed: int = 0
    branches_ingested: int = 0
    #: Highest journal seq applied to (or covering) this session.
    last_seq: int = 0
    #: The checkpoint seq it was fast-forwarded from, if any.
    checkpoint_seq: Optional[int] = None
    #: Its ``open`` record's seq, when it was built from one.
    first_seq: Optional[int] = None


@dataclass
class RecoveryResult:
    """Everything :func:`recover_state` reconstructed and counted."""

    #: Materialized sessions (had journal records past their checkpoint).
    live: Dict[str, RecoveredSession] = field(default_factory=dict)
    #: Checkpoint-current sessions left on disk: name -> covered seq.
    cold: Dict[str, int] = field(default_factory=dict)
    #: Sessions closed in the journal whose checkpoint files linger.
    closed: List[str] = field(default_factory=list)
    next_seq: int = 1
    replayed_records: int = 0
    skipped_records: int = 0
    #: Records naming a session recovery knows nothing about.
    orphaned_records: int = 0
    #: Sessions demoted/dropped because their state would not apply.
    damaged_sessions: int = 0
    journal: ReplayStats = field(default_factory=ReplayStats)

    @property
    def sessions(self) -> int:
        return len(self.live) + len(self.cold)


def _materialize_open(record: dict) -> PhaseTracker:
    """Build the tracker an ``open`` record describes, exactly as the
    registry's open path would."""
    snapshot = record.get("snapshot")
    if snapshot is not None:
        return restore_tracker(snapshot)
    if record.get("snapshot_ref") == "checkpoint":
        # The restore snapshot was too large to travel inline and was
        # published as a checkpoint covering this record. Reaching
        # here means that checkpoint is gone — a fresh tracker would
        # silently impersonate the restored one.
        raise PersistenceError(
            "open record references a checkpointed snapshot that no "
            "longer exists"
        )
    return PhaseTracker(
        build_config(record.get("config")),
        interval_instructions=(
            record.get("interval_instructions")
            or DEFAULT_INTERVAL_INSTRUCTIONS
        ),
    )


def _materialize_checkpoint(document: dict) -> RecoveredSession:
    meta = document.get("meta") or {}
    return RecoveredSession(
        name=document["session"],
        tracker=restore_tracker(document["snapshot"]),
        intervals_pushed=int(meta.get("intervals_pushed", 0)),
        branches_ingested=int(meta.get("branches_ingested", 0)),
        last_seq=int(document["seq"]),
        checkpoint_seq=int(document["seq"]),
    )


def recover_state(
    journal_root: Union[str, Path],
    checkpoints: CheckpointStore,
    telemetry: "Optional[Telemetry]" = None,
) -> RecoveryResult:
    """Rebuild the session population from ``journal_root`` plus
    ``checkpoints``. Never raises for on-disk damage — torn tails,
    unreadable checkpoints, and unappliable records are counted (and
    reported via telemetry events) instead."""
    result = RecoveryResult()
    documents = checkpoints.load_all()
    checkpoint_seq = {
        name: int(document["seq"]) for name, document in documents.items()
    }
    replay = replay_journal(journal_root, truncate=True, telemetry=telemetry)
    result.journal = replay.stats
    # A crash can leave a durable checkpoint covering seqs the on-disk
    # journal never kept (sync=none, or a tail lost to the machine).
    # Never hand those seqs out again: a restarted journal reusing
    # them would have its records skipped as "covered" on the *next*
    # recovery, silently dropping acknowledged observes.
    max_covered = max(checkpoint_seq.values(), default=0)
    result.next_seq = max(replay.stats.next_seq, max_covered + 1)

    live = result.live
    dead: set = set()  # closed or damaged-beyond-recovery this replay

    for record in replay.records:
        kind = record.get("kind")
        name = record.get("session")
        seq = record["seq"]
        if not isinstance(name, str):
            result.orphaned_records += 1
            continue

        if kind == "open":
            covered = checkpoint_seq.get(name)
            if covered is not None and covered >= seq:
                result.skipped_records += 1
                continue
            try:
                tracker = _materialize_open(record)
            except ReproError:
                result.damaged_sessions += 1
                dead.add(name)
                continue
            dead.discard(name)
            live[name] = RecoveredSession(
                name=name, tracker=tracker, last_seq=seq, first_seq=seq
            )
            result.replayed_records += 1

        elif kind == "observe":
            if name in dead:
                result.skipped_records += 1
                continue
            session = live.get(name)
            if session is None:
                covered = checkpoint_seq.get(name)
                if covered is None:
                    # Its open record was compacted away and no
                    # checkpoint survived: nothing to replay onto.
                    result.orphaned_records += 1
                    continue
                if seq <= covered:
                    result.skipped_records += 1
                    continue
                try:
                    session = _materialize_checkpoint(documents[name])
                except (ReproError, KeyError, TypeError, ValueError):
                    result.damaged_sessions += 1
                    dead.add(name)
                    continue
                live[name] = session
            try:
                reports = session.tracker.observe_batch(
                    record["pcs"],
                    record["counts"],
                    cpi=record.get("cpi", 1.0),
                )
            except (ReproError, KeyError, TypeError, ValueError):
                # The record will not apply: demote the session to its
                # last good checkpoint rather than serve half-replayed
                # state.
                result.damaged_sessions += 1
                live.pop(name, None)
                if name not in checkpoint_seq:
                    dead.add(name)
                if telemetry is not None:
                    telemetry.emit(
                        "recovery_record_unappliable",
                        session=name, record_seq=seq,
                    )
                continue
            session.intervals_pushed += len(reports)
            session.branches_ingested += len(record["pcs"])
            session.last_seq = seq
            result.replayed_records += 1

        elif kind == "close":
            live.pop(name, None)
            covered = checkpoint_seq.get(name)
            # A checkpoint stamped *after* this close belongs to a
            # newer incarnation of the name (close -> reopen ->
            # checkpoint -> crash before the file swap) — keep it.
            if covered is not None and covered < seq:
                checkpoint_seq.pop(name)
                result.closed.append(name)
            if covered is None or covered < seq:
                dead.add(name)
            result.replayed_records += 1

        else:
            result.orphaned_records += 1

    # Checkpoint-current sessions that never needed replay stay cold.
    for name, seq in checkpoint_seq.items():
        if name not in live and name not in dead:
            result.cold[name] = seq

    if telemetry is not None:
        telemetry.emit(
            "recovery_complete",
            live=len(live),
            cold=len(result.cold),
            replayed=result.replayed_records,
            skipped=result.skipped_records,
            orphaned=result.orphaned_records,
            damaged=result.damaged_sessions,
            torn_tails=result.journal.torn_tails,
            next_seq=result.next_seq,
        )
        telemetry.metrics.counter(
            "repro_persistence_replayed_records_total",
            "Journal records applied during crash recovery",
        ).inc(result.replayed_records)
        telemetry.metrics.counter(
            "repro_persistence_recoveries_total",
            "Recovery passes completed",
        ).inc()
    return result
