"""The durable session tier behind one handle.

:class:`PersistenceManager` composes the journal, the checkpoint
store, recovery, and compaction into the three hooks the session
registry exposes, plus the logging calls the server makes:

- **write path** — the server calls :meth:`log_open` /
  :meth:`log_observe` / :meth:`log_close` after each successful
  mutation and *before* acknowledging it, so the journal's sync mode
  is exactly the durability the client was promised.
- **evict-to-disk** — installed as the registry's ``on_evict``
  pre-drop hook: LRU eviction and idle-TTL expiry checkpoint the
  session and register it *cold* instead of destroying its phase
  history.
- **hydrate-on-demand** — installed as the registry's ``resolver``: a
  request naming a cold session restores its checkpoint (byte-identical
  to the never-evicted tracker, the property the test suite enforces)
  and the registry re-installs it. No journal scan is needed: a cold
  session's checkpoint is current by construction, because eviction
  wrote it after the session's last observe.
- **crash recovery** — construction replays the data directory
  (:func:`~repro.persistence.recovery.recover_state`);
  :meth:`install_into` re-registers the reconstructed sessions, letting
  the registry's own eviction policy push overflow back to disk.
- **checkpoint + compact** — :meth:`checkpoint_all` snapshots dirty
  sessions (the server runs it on a timer and at shutdown), after
  which :meth:`compact` drops journal segments nobody needs.

The layout under ``data_dir``::

    data_dir/
      journal/      seg-<first seq, hex>.jnl   (CRC-framed records)
      checkpoints/  <sha256(session)>.ckpt     (atomic JSON snapshots)
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Dict, Iterable, Optional, TYPE_CHECKING, Union

from repro.errors import PersistenceError
from repro.persistence.checkpoints import CheckpointStore
from repro.persistence.compaction import compact_journal
from repro.persistence.journal import Journal
from repro.persistence.recovery import RecoveryResult, recover_state
from repro.service.session import Session, SessionRegistry
from repro.service.snapshot import restore_tracker, snapshot_tracker

if TYPE_CHECKING:  # pragma: no cover - import-time typing only
    from repro.telemetry import Telemetry


class PersistenceManager:
    """Durable sessions for one data directory.

    Constructing the manager *is* recovery: the journal is replayed
    (torn tail truncated, a counted non-fatal event) and every session
    the directory knows is reconstructed — materialized when it had a
    replay tail, left cold when its checkpoint is current.

    Parameters
    ----------
    data_dir:
        Root of the journal + checkpoint layout (created if missing).
    sync:
        Journal durability mode (:data:`~repro.persistence.journal.SYNC_MODES`).
        ``none`` also skips checkpoint fsyncs.
    segment_bytes, batch_records:
        Journal rotation size and ``batch``-mode fsync cadence.
    telemetry:
        Optional hub: journal/checkpoint/hydrate counters, the
        durability-lag gauge, the fsync-latency histogram, and
        lifecycle events.
    clock:
        Monotonic time source for hydrated sessions' activity stamps.
    """

    def __init__(
        self,
        data_dir: Union[str, Path],
        sync: str = "batch",
        segment_bytes: int = 4 * 1024 * 1024,
        batch_records: int = 64,
        telemetry: "Optional[Telemetry]" = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.root = Path(data_dir).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.journal_root = self.root / "journal"
        self._telemetry = telemetry
        self._clock = clock
        self.checkpoints = CheckpointStore(
            self.root / "checkpoints",
            fsync=sync != "none",
            telemetry=telemetry,
        )
        self.recovery: RecoveryResult = recover_state(
            self.journal_root, self.checkpoints, telemetry
        )
        self.journal = Journal(
            self.journal_root,
            sync=sync,
            segment_bytes=segment_bytes,
            batch_records=batch_records,
            next_seq=self.recovery.next_seq,
            telemetry=telemetry,
        )
        for name in self.recovery.closed:
            self.checkpoints.delete(name)

        #: The registry's tracker pool, captured by :meth:`install_into`
        #: so hydrated sessions land back on pool slots.
        self.pool = None
        #: Cold sessions on disk: name -> the seq their checkpoint covers.
        self._cold: Dict[str, int] = dict(self.recovery.cold)
        #: Live sessions' last journaled seq.
        self._session_seqs: Dict[str, int] = {}
        #: Live sessions' last checkpointed seq.
        self._checkpoint_seqs: Dict[str, int] = {}
        #: Live sessions' ``open`` record seq (until first checkpoint).
        self._first_seqs: Dict[str, int] = {}
        self.hydrated = 0
        self.hydrate_failures = 0
        self.evict_saves = 0
        self.checkpoints_skipped_clean = 0
        if telemetry is not None:
            self._m_hydrates = telemetry.counter(
                "repro_persistence_hydrates_total",
                "Cold sessions restored on demand",
            )
            self._m_checkpoints = telemetry.counter(
                "repro_persistence_checkpoint_sessions_total",
                "Per-session checkpoints written",
            )
            self._g_cold = telemetry.gauge(
                "repro_persistence_cold_sessions",
                "Sessions evicted to disk, hydrate-on-demand",
            )
            self._g_cold.set(len(self._cold))

    # -- registry wiring ------------------------------------------------------

    def install_into(self, registry: SessionRegistry) -> int:
        """Wire the registry's persistence hooks and re-install the
        sessions recovery materialized; returns how many went live.

        Installation is oldest-activity-first, so when the recovered
        population exceeds the registry cap, the registry's own LRU
        eviction (now persistence-backed) pushes the stalest ones
        straight back to disk as cold sessions.
        """
        registry.on_evict = self.save_session
        registry.resolver = self.resolve
        registry.name_reserved = self.contains_cold
        self.pool = getattr(registry, "pool", None)
        installed = 0
        recovered = sorted(
            self.recovery.live.values(), key=lambda entry: entry.last_seq
        )
        for entry in recovered:
            session = Session(
                entry.name, entry.tracker, self._clock(), recyclable=False
            )
            session.intervals_pushed = entry.intervals_pushed
            session.branches_ingested = entry.branches_ingested
            self._session_seqs[entry.name] = entry.last_seq
            if entry.checkpoint_seq is not None:
                self._checkpoint_seqs[entry.name] = entry.checkpoint_seq
            if entry.first_seq is not None:
                self._first_seqs[entry.name] = entry.first_seq
            registry.adopt(session)
            installed += 1
        return installed

    # -- write-ahead logging --------------------------------------------------

    def log_open(
        self,
        name: str,
        config: Optional[dict] = None,
        interval_instructions: Optional[int] = None,
        snapshot: Optional[dict] = None,
    ) -> int:
        """Journal a successful ``open``; returns the record's seq.

        A restore snapshot too large for one journal frame does not
        travel inline: the open record carries a marker instead and the
        snapshot is published as the session's first checkpoint,
        covering the open record itself.
        """
        record = {
            "kind": "open",
            "session": name,
            "config": config,
            "interval_instructions": interval_instructions,
            "snapshot": snapshot,
        }
        try:
            seq = self.journal.append(record)
        except PersistenceError:
            if snapshot is None or self.journal.closed:
                raise
            record.update(snapshot=None, snapshot_ref="checkpoint")
            seq = self.journal.append(record)
            self.checkpoints.write(name, {
                "seq": seq,
                "snapshot": snapshot,
                "meta": {"interval_instructions": interval_instructions},
            })
            self._session_seqs[name] = seq
            self._first_seqs[name] = seq
            self._checkpoint_seqs[name] = seq
            return seq
        self._session_seqs[name] = seq
        self._first_seqs[name] = seq
        self._checkpoint_seqs.pop(name, None)
        return seq

    def log_observe(self, name: str, pcs, counts, cpi: float = 1.0) -> int:
        """Journal one applied observe batch; returns the record's seq."""
        seq = self.journal.append({
            "kind": "observe",
            "session": name,
            "pcs": [int(pc) for pc in pcs],
            "counts": [int(count) for count in counts],
            "cpi": float(cpi),
        })
        self._session_seqs[name] = seq
        return seq

    def log_close(self, name: str) -> int:
        """Journal a ``close`` and delete the session's durable state."""
        seq = self.journal.append({"kind": "close", "session": name})
        self._session_seqs.pop(name, None)
        self._checkpoint_seqs.pop(name, None)
        self._first_seqs.pop(name, None)
        if self._cold.pop(name, None) is not None:
            self._set_cold_gauge()
        self.checkpoints.delete(name)
        return seq

    # -- evict-to-disk / hydrate-on-demand ------------------------------------

    def save_session(self, session: Session, reason: str) -> None:
        """The registry's ``on_evict`` pre-drop hook: checkpoint the
        session and register it cold instead of losing its state."""
        seq = self.checkpoint_session(session)
        self._session_seqs.pop(session.name, None)
        self._checkpoint_seqs.pop(session.name, None)
        self._first_seqs.pop(session.name, None)
        self._cold[session.name] = seq
        self._set_cold_gauge()
        self.evict_saves += 1
        if self._telemetry is not None:
            self._telemetry.emit(
                "session_evicted_to_disk",
                session=session.name, reason=reason, covered_seq=seq,
            )

    def resolve(self, name: str) -> Optional[Session]:
        """The registry's ``resolver``: hydrate a cold session.

        Returns ``None`` when the name is unknown or its checkpoint is
        unreadable (a counted failure — the registry then reports the
        session as not found, the same as any reclaimed session).
        """
        seq = self._cold.get(name)
        if seq is None:
            return None
        document = self.checkpoints.load(name)
        if document is None:
            self.hydrate_failures += 1
            if self.checkpoints.path_for(name).exists():
                # Transient read failure: the checkpoint is still on
                # disk, so keep the cold registration (and the name
                # reservation) for a later retry.
                return None
            self._cold.pop(name, None)
            self._set_cold_gauge()
            return None
        try:
            session = Session(
                name,
                restore_tracker(document["snapshot"], pool=self.pool),
                self._clock(),
                recyclable=False,
            )
        except Exception:
            self._cold.pop(name, None)
            self._set_cold_gauge()
            self.hydrate_failures += 1
            if self._telemetry is not None:
                self._telemetry.emit("hydrate_failed", session=name)
            return None
        meta = document.get("meta") or {}
        session.intervals_pushed = int(meta.get("intervals_pushed", 0))
        session.branches_ingested = int(meta.get("branches_ingested", 0))
        self._cold.pop(name, None)
        self._session_seqs[name] = int(document["seq"])
        self._checkpoint_seqs[name] = int(document["seq"])
        self._set_cold_gauge()
        self.hydrated += 1
        if self._telemetry is not None:
            self._m_hydrates.inc()
        return session

    def contains_cold(self, name: str) -> bool:
        """The registry's ``name_reserved`` hook: cold names stay taken."""
        return name in self._cold

    @property
    def cold_sessions(self) -> int:
        return len(self._cold)

    def cold_names(self):
        return sorted(self._cold)

    # -- checkpoint + compact -------------------------------------------------

    def checkpoint_session(self, session: Session) -> int:
        """Snapshot one live session; returns the seq it covers.

        The journal is synced first: a published checkpoint covering
        seq N asserts the on-disk journal reaches N, so recovery's
        seq accounting stays consistent after a machine crash.
        """
        seq = self._session_seqs.get(session.name, 0)
        if self.journal.unsynced_records:
            self.journal.sync()
        self.checkpoints.write(session.name, {
            "seq": seq,
            "snapshot": snapshot_tracker(session.tracker),
            "meta": {
                "intervals_pushed": session.intervals_pushed,
                "branches_ingested": session.branches_ingested,
                "interval_instructions":
                    session.tracker.interval_instructions,
            },
        })
        self._checkpoint_seqs[session.name] = seq
        self._first_seqs.pop(session.name, None)
        if self._telemetry is not None:
            self._m_checkpoints.inc()
        return seq

    def checkpoint_all(self, sessions: Iterable[Session]) -> int:
        """Checkpoint every *dirty* live session (journaled past its
        last checkpoint); returns the number written.

        The journal is fsynced *before* any checkpoint publishes (and
        unconditionally, so each sweep also bounds durability lag even
        when every session is clean) — a checkpoint must never be
        durable while the journal records it covers are not.
        """
        self.journal.sync()
        written = 0
        for session in sessions:
            current = self._session_seqs.get(session.name, 0)
            if self._checkpoint_seqs.get(session.name) == current:
                self.checkpoints_skipped_clean += 1
                continue
            self.checkpoint_session(session)
            written += 1
        return written

    def compact(self) -> int:
        """Drop journal segments every session has checkpointed past."""
        needed = [seq + 1 for seq in self._cold.values()]
        for name in self._session_seqs:
            checkpointed = self._checkpoint_seqs.get(name)
            if checkpointed is not None:
                needed.append(checkpointed + 1)
            else:
                needed.append(self._first_seqs.get(name, 1))
        min_needed = min(needed) if needed else self.journal.next_seq
        return compact_journal(
            self.journal_root,
            min_needed,
            active_path=self.journal.active_path,
            telemetry=self._telemetry,
        )

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Sync and close the journal. Idempotent."""
        self.journal.close()

    def __enter__(self) -> "PersistenceManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _set_cold_gauge(self) -> None:
        if self._telemetry is not None:
            self._g_cold.set(len(self._cold))

    def stats(self) -> Dict[str, int]:
        """JSON-safe durability counters for the stats endpoint."""
        return {
            "cold": len(self._cold),
            "journal_records": self.journal.records_appended,
            "journal_bytes": self.journal.bytes_appended,
            "journal_unsynced": self.journal.unsynced_records,
            "checkpoints_written": self.checkpoints.written,
            "hydrated": self.hydrated,
            "hydrate_failures": self.hydrate_failures,
            "evict_saves": self.evict_saves,
            "recovered_live": len(self.recovery.live),
            "recovered_cold": len(self.recovery.cold),
            "replayed_records": self.recovery.replayed_records,
            "torn_tails": self.recovery.journal.torn_tails,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PersistenceManager(root={str(self.root)!r}, "
            f"sync={self.journal.sync_mode!r}, cold={len(self._cold)})"
        )
