"""Atomic per-session snapshot checkpoints.

A checkpoint is the materialized half of the durable tier: one JSON
file per session holding the full tracker snapshot
(:func:`repro.service.snapshot.snapshot_tracker`), the journal
sequence number the snapshot covers, and the session's service-level
counters. Journal records at or below the stamped ``seq`` are
superseded by the checkpoint; records above it are the replay tail.

Durability discipline (PR 3's store rules, tightened):

- writes go to a private temp file, are optionally fsynced, and are
  published with one atomic ``os.replace`` — readers only ever see
  complete documents, even under ``kill -9``;
- the payload carries a CRC32 over its canonical JSON, so silent
  corruption is detected on load;
- a CRC-mismatched, undecodable, or schema-incompatible checkpoint is
  a counted miss (best-effort unlinked), never an exception — recovery
  keeps going with what it can read. A *transient* read failure (EIO,
  EACCES) is also a counted miss, but the file stays on disk for a
  retry or the next recovery.

File names are the SHA-256 of the session name (client-chosen names
are not filesystem-safe); the name travels inside the document, so
:meth:`CheckpointStore.load_all` can rebuild the name -> document map
from a directory listing alone.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from pathlib import Path
from typing import Dict, Iterator, Optional, TYPE_CHECKING, Union

from repro.errors import PersistenceError

if TYPE_CHECKING:  # pragma: no cover - import-time typing only
    from repro.telemetry import Telemetry

#: Bump when the checkpoint document layout changes; old files become
#: counted misses, never misreads.
CHECKPOINT_SCHEMA_VERSION = 1

_SUFFIX = ".ckpt"


def _canonical(body: dict) -> bytes:
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


class CheckpointStore:
    """One checkpoint file per session under ``root``."""

    def __init__(
        self,
        root: Union[str, Path],
        fsync: bool = True,
        telemetry: "Optional[Telemetry]" = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.written = 0
        self.corrupt_dropped = 0
        self.read_errors = 0
        self._tmp_serial = 0
        self._telemetry = telemetry

    def _count(self, name: str, amount: int = 1, help: str = "") -> None:
        if self._telemetry is not None and amount:
            self._telemetry.metrics.counter(
                f"repro_persistence_{name}_total", help
            ).inc(amount)

    def path_for(self, name: str) -> Path:
        digest = hashlib.sha256(name.encode("utf-8")).hexdigest()
        return self.root / f"{digest}{_SUFFIX}"

    # -- write ----------------------------------------------------------------

    def write(self, name: str, document: dict) -> Path:
        """Atomically publish ``document`` as ``name``'s checkpoint.

        The document must be JSON-safe; the schema stamp, session name,
        and CRC are added here. Raises :class:`PersistenceError` when
        the write cannot be completed (disk full, unwritable root) —
        the caller decides whether losing the checkpoint is fatal.
        """
        body = dict(
            document,
            checkpoint_schema=CHECKPOINT_SCHEMA_VERSION,
            session=name,
        )
        payload = _canonical(body)
        envelope = json.dumps(
            {"crc": zlib.crc32(payload), "body": body},
            separators=(",", ":"),
        ).encode("utf-8")
        final = self.path_for(name)
        self._tmp_serial += 1
        tmp = final.with_name(
            f"{final.stem}.{os.getpid()}.{self._tmp_serial}.tmp"
        )
        try:
            with open(tmp, "wb") as handle:
                handle.write(envelope)
                if self.fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp, final)
        except OSError as error:
            try:
                tmp.unlink()
            except OSError:
                pass
            self._count("checkpoint_write_errors", help="Failed writes")
            raise PersistenceError(
                f"cannot write checkpoint for {name!r}: {error}"
            ) from None
        self.written += 1
        self._count("checkpoints_written", help="Checkpoints published")
        self._count(
            "checkpoint_bytes_written", len(envelope),
            help="Checkpoint bytes published",
        )
        return final

    # -- read -----------------------------------------------------------------

    def _load_path(self, path: Path) -> Optional[dict]:
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return None
        except OSError as error:
            # A transient read failure (EIO, EACCES) is not
            # corruption: count the miss but leave the file in place
            # for a retry or the next recovery.
            self.read_errors += 1
            self._count(
                "checkpoint_read_errors",
                help="Checkpoint reads that failed transiently",
            )
            if self._telemetry is not None:
                self._telemetry.emit(
                    "checkpoint_read_error",
                    path=path.name,
                    error=f"{type(error).__name__}: {error}",
                )
            return None
        try:
            envelope = json.loads(raw.decode("utf-8"))
            body = envelope["body"]
            if zlib.crc32(_canonical(body)) != envelope["crc"]:
                raise ValueError("checkpoint CRC mismatch")
            if body.get("checkpoint_schema") != CHECKPOINT_SCHEMA_VERSION:
                raise ValueError(
                    f"checkpoint schema {body.get('checkpoint_schema')!r}"
                    f" != {CHECKPOINT_SCHEMA_VERSION}"
                )
            if not isinstance(body.get("session"), str):
                raise ValueError("checkpoint lacks a session name")
        except (UnicodeDecodeError, ValueError, KeyError, TypeError):
            self.corrupt_dropped += 1
            self._count(
                "checkpoints_corrupt",
                help="Checkpoints dropped as unreadable",
            )
            if self._telemetry is not None:
                self._telemetry.emit(
                    "checkpoint_corrupt", path=path.name
                )
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return body

    def load(self, name: str) -> Optional[dict]:
        """``name``'s checkpoint document, or ``None`` (missing or
        dropped as corrupt — a counted, non-fatal event)."""
        return self._load_path(self.path_for(name))

    def load_all(self) -> Dict[str, dict]:
        """Every readable checkpoint, keyed by session name."""
        documents: Dict[str, dict] = {}
        for path in self._files():
            body = self._load_path(path)
            if body is not None:
                documents[body["session"]] = body
        return documents

    def _files(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob(f"*{_SUFFIX}")):
            if path.is_file():
                yield path

    # -- maintenance ----------------------------------------------------------

    def delete(self, name: str) -> bool:
        """Remove ``name``'s checkpoint; returns whether one existed."""
        try:
            self.path_for(name).unlink()
        except OSError:
            return False
        return True

    def __len__(self) -> int:
        return sum(1 for _ in self._files())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CheckpointStore(root={str(self.root)!r})"
