"""repro.persistence — the durable session tier (stdlib only).

Sessions used to live only in RAM behind the service registry's LRU
cap: idle users were silently destroyed, and a crash lost every
signature table and predictor the node had warmed — exactly the
transition-phase learning the source paper shows dominates accuracy.
This package makes phase history durable:

- :mod:`repro.persistence.journal` — append-only CRC-framed segment
  journal (``none`` / ``batch`` / ``always`` sync modes, torn-tail
  tolerant replay);
- :mod:`repro.persistence.checkpoints` — atomic per-session snapshot
  checkpoints (tmp + rename publication, CRC-verified loads);
- :mod:`repro.persistence.recovery` — ``kill -9`` recovery: checkpoints
  fast-forward, the journal tail replays through the tracker's own
  vectorized ingest, damage is counted instead of raised;
- :mod:`repro.persistence.compaction` — drop journal segments every
  checkpoint has superseded;
- :mod:`repro.persistence.manager` — :class:`PersistenceManager`, the
  facade the service tier wires in: evict-to-disk, hydrate-on-demand,
  write-ahead logging, periodic checkpoints.

Enable it on a server with ``repro-phases serve --data-dir PATH``
(plus ``--sync`` and ``--checkpoint-interval``), or in code via
``PhaseService(data_dir=...)``.
"""

from repro.persistence.checkpoints import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointStore,
)
from repro.persistence.compaction import compact_journal
from repro.persistence.journal import (
    Journal,
    JournalReplay,
    ReplayStats,
    SYNC_MODES,
    list_segments,
    replay_journal,
)
from repro.persistence.manager import PersistenceManager
from repro.persistence.recovery import (
    RecoveredSession,
    RecoveryResult,
    recover_state,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointStore",
    "Journal",
    "JournalReplay",
    "PersistenceManager",
    "RecoveredSession",
    "RecoveryResult",
    "ReplayStats",
    "SYNC_MODES",
    "compact_journal",
    "list_segments",
    "recover_state",
    "replay_journal",
]
