"""Basic Block Vectors (BBVs) and random projection.

A BBV is the offline analogue of the hardware signature: one dimension
per static basic block, weighted by the instructions executed in that
block during the interval, normalized to sum to 1 (Sherwood et al.,
ASPLOS 2002). SimPoint reduces the (often 100k+-dimensional) BBV space
with a random linear projection to ~15 dimensions before clustering;
random projection approximately preserves relative distances
(Johnson-Lindenstrauss) while making k-means tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import ConfigurationError, TraceError
from repro.workloads.trace import IntervalTrace


@dataclass
class BBVMatrix:
    """Per-interval basic block vectors in a dense matrix.

    ``matrix`` is (intervals x blocks), rows normalized to sum to 1.
    ``block_pcs`` maps columns back to static branch PCs.
    """

    matrix: np.ndarray
    block_pcs: np.ndarray

    def __post_init__(self) -> None:
        if self.matrix.ndim != 2:
            raise TraceError("BBV matrix must be 2-D")
        if self.matrix.shape[1] != self.block_pcs.shape[0]:
            raise TraceError(
                "BBV matrix columns must match block_pcs length"
            )

    @property
    def num_intervals(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def num_blocks(self) -> int:
        return int(self.matrix.shape[1])


def build_bbv_matrix(trace: IntervalTrace) -> BBVMatrix:
    """Collect the full-dimensional BBV matrix of a trace.

    Every static branch PC observed anywhere in the trace gets one
    column; each row is the interval's per-block instruction weights,
    normalized so rows sum to 1.
    """
    index: Dict[int, int] = {}
    for interval in trace:
        for pc in interval.branch_pcs.tolist():
            if pc not in index:
                index[pc] = len(index)
    if not index:
        raise TraceError("trace contains no branch records")

    matrix = np.zeros((len(trace), len(index)), dtype=np.float64)
    for row, interval in enumerate(trace):
        columns = [index[int(pc)] for pc in interval.branch_pcs]
        matrix[row, columns] = interval.instr_counts
        total = matrix[row].sum()
        if total <= 0:
            raise TraceError(f"interval {row} has zero instruction weight")
        matrix[row] /= total

    block_pcs = np.empty(len(index), dtype=np.int64)
    for pc, column in index.items():
        block_pcs[column] = pc
    return BBVMatrix(matrix=matrix, block_pcs=block_pcs)


def random_projection(
    matrix: np.ndarray, dimensions: int = 15, seed: int = 42
) -> np.ndarray:
    """Project rows onto ``dimensions`` random directions.

    Uses the dense Gaussian projection SimPoint describes; the seed is
    fixed by default so classifications are reproducible.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ConfigurationError("matrix must be 2-D")
    if dimensions <= 0:
        raise ConfigurationError(
            f"dimensions must be positive, got {dimensions}"
        )
    if dimensions >= matrix.shape[1]:
        # Projection to >= original dimensionality is the identity in
        # spirit; return the original data to avoid inflating noise.
        return matrix.copy()
    rng = np.random.default_rng(seed)
    projector = rng.normal(
        scale=1.0 / np.sqrt(dimensions), size=(matrix.shape[1], dimensions)
    )
    return matrix @ projector
