"""The SimPoint offline phase classifier and simulation-point picker.

Pipeline (Sherwood et al. ASPLOS 2002, Perelman et al. PACT 2003):

1. collect per-interval Basic Block Vectors;
2. randomly project to ~15 dimensions;
3. run k-means for k = 1..max_k (k-means++ with restarts);
4. score each k with the BIC and keep the smallest k reaching 90% of
   the best score;
5. per cluster, the interval closest to the centroid is the phase's
   *simulation point*; its weight is the cluster's share of intervals.

The classification assigns a phase label to every interval — the
offline analogue of the online classifier's phase IDs — and the
simulation points estimate whole-program metrics from a handful of
simulated intervals (SimPoint's raison d'être).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import ConfigurationError, TraceError
from repro.offline.bbv import build_bbv_matrix, random_projection
from repro.offline.bic import bic_score, pick_k_by_bic
from repro.offline.kmeans import KMeansResult, kmeans
from repro.workloads.trace import IntervalTrace


@dataclass(frozen=True)
class SimPoint:
    """One simulation point: a representative interval and its weight."""

    interval_index: int
    phase: int
    weight: float


@dataclass
class SimPointClassification:
    """The result of an offline classification."""

    labels: np.ndarray
    k: int
    simulation_points: List[SimPoint]
    bic_scores: List[float] = field(default_factory=list)

    @property
    def num_intervals(self) -> int:
        return int(self.labels.shape[0])

    def phase_interval_indices(self) -> "dict[int, np.ndarray]":
        return {
            int(phase): np.nonzero(self.labels == phase)[0]
            for phase in np.unique(self.labels)
        }

    def estimate_mean(self, values: np.ndarray) -> float:
        """SimPoint's estimator: weighted sum over simulation points.

        ``values`` is a per-interval metric (e.g. CPI); the estimate is
        the sum of each point's value times its phase weight — what you
        would get by simulating only the chosen points.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape[0] != self.num_intervals:
            raise TraceError(
                "values length does not match the classified intervals"
            )
        return float(
            sum(
                point.weight * values[point.interval_index]
                for point in self.simulation_points
            )
        )


class SimPointClassifier:
    """Offline phase classification via projected BBV clustering.

    Parameters
    ----------
    max_k:
        Largest cluster count tried (SimPoint used 10 for simulation
        point selection).
    dimensions:
        Random-projection target dimensionality (15 in SimPoint).
    bic_threshold:
        Fraction of the best BIC a smaller k must reach to be chosen.
    seed / restarts:
        Clustering reproducibility and quality knobs.
    early_points:
        Choose *early* simulation points (the earliest interval whose
        centroid distance is within 30% of the best) instead of the
        absolute closest — Perelman et al.'s variant that minimizes
        simulator fast-forwarding.
    """

    def __init__(
        self,
        max_k: int = 10,
        dimensions: int = 15,
        bic_threshold: float = 0.9,
        seed: int = 0,
        restarts: int = 5,
        early_points: bool = False,
    ) -> None:
        if max_k < 1:
            raise ConfigurationError(f"max_k must be >= 1, got {max_k}")
        self.max_k = max_k
        self.dimensions = dimensions
        self.bic_threshold = bic_threshold
        self.seed = seed
        self.restarts = restarts
        self.early_points = early_points

    def classify(self, trace: IntervalTrace) -> SimPointClassification:
        """Cluster a whole trace into phases and pick simulation points."""
        bbv = build_bbv_matrix(trace)
        projected = random_projection(
            bbv.matrix, dimensions=self.dimensions, seed=self.seed
        )

        max_k = min(self.max_k, projected.shape[0])
        ks = list(range(1, max_k + 1))
        clusterings: List[KMeansResult] = []
        scores: List[float] = []
        for k in ks:
            clustering = kmeans(
                projected, k, seed=self.seed + k, restarts=self.restarts
            )
            clusterings.append(clustering)
            scores.append(bic_score(projected, clustering))

        chosen_k = pick_k_by_bic(scores, ks, threshold=self.bic_threshold)
        chosen = clusterings[ks.index(chosen_k)]

        points = self._simulation_points(
            projected, chosen, early=self.early_points
        )
        return SimPointClassification(
            labels=chosen.labels,
            k=chosen.k,
            simulation_points=points,
            bic_scores=scores,
        )

    @staticmethod
    def _simulation_points(
        data: np.ndarray,
        clustering: KMeansResult,
        early: bool = False,
        early_tolerance: float = 1.3,
    ) -> List[SimPoint]:
        """Pick one representative interval per cluster.

        Standard SimPoint takes the interval closest to the centroid.
        With ``early`` (Perelman et al., PACT 2003: "early and
        statistically valid simulation points"), the *earliest*
        interval whose centroid distance is within ``early_tolerance``
        of the closest one is chosen instead — early points let a
        simulator fast-forward less before reaching them.
        """
        points: List[SimPoint] = []
        n = data.shape[0]
        for cluster in range(clustering.k):
            members = np.nonzero(clustering.labels == cluster)[0]
            if members.size == 0:
                continue
            distances = np.sqrt(
                (
                    (data[members] - clustering.centroids[cluster]) ** 2
                ).sum(axis=1)
            )
            closest = float(distances.min())
            if early:
                eligible = members[
                    distances <= closest * early_tolerance + 1e-12
                ]
                representative = int(eligible.min())
            else:
                representative = int(members[int(distances.argmin())])
            points.append(
                SimPoint(
                    interval_index=representative,
                    phase=cluster,
                    weight=members.size / n,
                )
            )
        return points
