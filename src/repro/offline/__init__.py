"""Offline phase classification: the SimPoint comparator.

The paper validates its online classifier by comparing against the
offline SimPoint algorithm (§4.4: the 25% similarity / min-count-8
configuration "produced [results] comparable to the results of the
offline phase classification algorithm used in SimPoint"). This package
implements that comparator from scratch, following Sherwood et al.
(ASPLOS 2002) and Perelman et al. (PACT 2003):

- :mod:`repro.offline.bbv` — per-interval Basic Block Vectors and
  random projection to a low-dimensional space (15 dims in SimPoint).
- :mod:`repro.offline.kmeans` — k-means with k-means++ seeding and
  multiple restarts (no external ML dependency).
- :mod:`repro.offline.bic` — the Bayesian Information Criterion score
  used to pick the number of clusters.
- :mod:`repro.offline.simpoint` — the full pipeline: project, cluster
  for k = 1..max_k, choose the smallest k whose BIC clears a threshold
  of the best score, and select one *simulation point* (representative
  interval) per phase with its weight.
"""

from repro.offline.bbv import BBVMatrix, build_bbv_matrix, random_projection
from repro.offline.kmeans import KMeansResult, kmeans
from repro.offline.bic import bic_score
from repro.offline.simpoint import (
    SimPoint,
    SimPointClassification,
    SimPointClassifier,
)

__all__ = [
    "BBVMatrix",
    "KMeansResult",
    "SimPoint",
    "SimPointClassification",
    "SimPointClassifier",
    "bic_score",
    "build_bbv_matrix",
    "kmeans",
    "random_projection",
]
