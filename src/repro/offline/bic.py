"""Bayesian Information Criterion for choosing k (SimPoint's rule).

SimPoint scores each k-means clustering with the BIC of a spherical
Gaussian mixture fitted to the clusters (Pelleg & Moore's X-means
formulation) and picks the smallest k whose score reaches a fixed
fraction of the best score over all k. Higher BIC is better; the
log-likelihood term rewards tight clusters, the penalty term charges
``p/2 * log(n)`` for the parameters of each added cluster.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.offline.kmeans import KMeansResult


def bic_score(data: np.ndarray, clustering: KMeansResult) -> float:
    """BIC of a clustering under the spherical-Gaussian model.

    Returns ``-inf`` is never produced; degenerate zero-variance
    clusterings (every point on its centroid) get the maximal
    likelihood allowed by a small variance floor.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ConfigurationError("data must be 2-D")
    n, dims = data.shape
    k = clustering.k
    if clustering.labels.shape[0] != n:
        raise ConfigurationError(
            "clustering labels do not match the data points"
        )
    if n <= k:
        # No degrees of freedom left for a variance estimate.
        return float("-inf")

    # Pooled ML variance estimate (spherical), floored for degeneracy.
    variance = clustering.inertia / (dims * (n - k))
    variance = max(variance, 1e-12)

    sizes = clustering.cluster_sizes()
    log_likelihood = 0.0
    for cluster in range(k):
        size = int(sizes[cluster])
        if size == 0:
            continue
        log_likelihood += (
            size * np.log(size / n)
            - size * dims / 2.0 * np.log(2.0 * np.pi * variance)
        )
    log_likelihood -= (n - k) * dims / 2.0

    # Free parameters: k-1 mixing weights, k*dims means, one variance.
    parameters = (k - 1) + k * dims + 1
    return float(log_likelihood - parameters / 2.0 * np.log(n))


def pick_k_by_bic(
    scores: "list[float]", ks: "list[int]", threshold: float = 0.9
) -> int:
    """SimPoint's rule: the smallest k whose BIC clears the threshold.

    Scores are shifted to be non-negative before applying the
    fractional threshold (BIC values are typically negative).
    """
    if len(scores) != len(ks) or not scores:
        raise ConfigurationError("scores and ks must be parallel, non-empty")
    if not 0.0 < threshold <= 1.0:
        raise ConfigurationError(
            f"threshold must be in (0, 1], got {threshold}"
        )
    finite = [s for s in scores if np.isfinite(s)]
    if not finite:
        return ks[0]
    low = min(finite)
    high = max(finite)
    if high == low:
        return ks[int(np.argmax(scores))] if len(ks) == 1 else min(
            k for s, k in zip(scores, ks) if np.isfinite(s)
        )
    for score, k in zip(scores, ks):
        if not np.isfinite(score):
            continue
        if (score - low) / (high - low) >= threshold:
            return k
    return ks[int(np.argmax(scores))]
