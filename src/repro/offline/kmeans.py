"""k-means clustering with k-means++ seeding and restarts.

Self-contained (no external ML dependency): Lloyd's algorithm with
k-means++ initialization, several random restarts, and empty-cluster
repair (an empty cluster is re-seeded on the point farthest from its
centroid). Distances are Euclidean, as in SimPoint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class KMeansResult:
    """One clustering: labels, centroids, and the within-cluster SSE."""

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float

    @property
    def k(self) -> int:
        return int(self.centroids.shape[0])

    def cluster_sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.k)


def _plusplus_init(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = data.shape[0]
    centroids = np.empty((k, data.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = data[first]
    distances = ((data - centroids[0]) ** 2).sum(axis=1)
    for index in range(1, k):
        total = distances.sum()
        if total <= 0:
            # All remaining points coincide with a centroid; pick any.
            choice = int(rng.integers(n))
        else:
            choice = int(rng.choice(n, p=distances / total))
        centroids[index] = data[choice]
        new_d = ((data - centroids[index]) ** 2).sum(axis=1)
        np.minimum(distances, new_d, out=distances)
    return centroids


def _lloyd(
    data: np.ndarray,
    centroids: np.ndarray,
    max_iterations: int,
    tolerance: float,
) -> KMeansResult:
    k = centroids.shape[0]
    labels = np.zeros(data.shape[0], dtype=np.int64)
    for _ in range(max_iterations):
        # Assign.
        distances = (
            ((data[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        )
        labels = distances.argmin(axis=1)
        # Update.
        new_centroids = centroids.copy()
        for cluster in range(k):
            members = data[labels == cluster]
            if members.shape[0] == 0:
                # Re-seed the empty cluster on the farthest point.
                farthest = int(
                    distances[np.arange(len(labels)), labels].argmax()
                )
                new_centroids[cluster] = data[farthest]
            else:
                new_centroids[cluster] = members.mean(axis=0)
        shift = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        if shift <= tolerance:
            break
    distances = (
        ((data[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    )
    labels = distances.argmin(axis=1)
    inertia = float(distances[np.arange(len(labels)), labels].sum())
    return KMeansResult(labels=labels, centroids=centroids, inertia=inertia)


def kmeans(
    data: np.ndarray,
    k: int,
    seed: int = 0,
    restarts: int = 5,
    max_iterations: int = 100,
    tolerance: float = 1e-7,
) -> KMeansResult:
    """Cluster ``data`` into ``k`` groups; returns the best restart.

    Parameters
    ----------
    data:
        (points x dims) array.
    k:
        Number of clusters; must not exceed the number of points.
    restarts:
        Independent k-means++ initializations; the lowest-inertia
        clustering wins.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] == 0:
        raise ConfigurationError("data must be a non-empty 2-D array")
    if not 1 <= k <= data.shape[0]:
        raise ConfigurationError(
            f"k must be in [1, {data.shape[0]}], got {k}"
        )
    if restarts < 1:
        raise ConfigurationError(f"restarts must be >= 1, got {restarts}")
    if max_iterations < 1:
        raise ConfigurationError(
            f"max_iterations must be >= 1, got {max_iterations}"
        )

    rng = np.random.default_rng(seed)
    best: "KMeansResult | None" = None
    for _ in range(restarts):
        centroids = _plusplus_init(data, k, rng)
        result = _lloyd(data, centroids, max_iterations, tolerance)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best
