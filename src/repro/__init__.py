"""repro — Transition Phase Classification and Prediction (HPCA 2005).

A production-quality reproduction of Lau, Schoenmackers & Calder,
"Transition Phase Classification and Prediction", HPCA 2005, including
every substrate the paper depends on:

- :mod:`repro.core` — the online phase classifier (transition phase,
  adaptive thresholds, most-similar matching, dynamic bit selection).
- :mod:`repro.prediction` — next-phase, phase-change and phase-length
  predictors with confidence.
- :mod:`repro.simulator` — the SimpleScalar-substitute machine model
  (caches, hybrid branch predictor, TLB, analytic OoO core).
- :mod:`repro.workloads` — synthetic models of the paper's eleven SPEC
  CPU2000 workloads.
- :mod:`repro.analysis` — CoV of CPI, phase-run statistics, prediction
  metrics.
- :mod:`repro.harness` — one experiment per paper figure.
- :mod:`repro.telemetry` — metrics, structured events and tracing for
  the tracker and harness.

Quickstart
----------
>>> import repro
>>> trace = repro.benchmark("gzip/g", scale=0.2)
>>> classifier = repro.PhaseClassifier(repro.ClassifierConfig.paper_default())
>>> run = classifier.classify_trace(trace)
>>> cov = repro.weighted_cov(run, trace)
"""

from repro.core import (
    ClassificationResult,
    ClassificationRun,
    ClassifierConfig,
    PhaseClassifier,
    PhaseTracker,
    TRANSITION_PHASE_ID,
)
from repro.errors import (
    ConfigurationError,
    PredictionError,
    ReproError,
    SimulationError,
    TelemetryError,
    TraceError,
)
from repro.simulator import Machine, MachineConfig
from repro.telemetry import Telemetry
from repro.workloads import BENCHMARK_NAMES, IntervalTrace, benchmark

__version__ = "1.0.0"

__all__ = [
    "BENCHMARK_NAMES",
    "ClassificationResult",
    "ClassificationRun",
    "ClassifierConfig",
    "ConfigurationError",
    "IntervalTrace",
    "Machine",
    "MachineConfig",
    "PhaseClassifier",
    "PhaseTracker",
    "PredictionError",
    "ReproError",
    "SimulationError",
    "TRANSITION_PHASE_ID",
    "Telemetry",
    "TelemetryError",
    "TraceError",
    "benchmark",
    "weighted_cov",
    "__version__",
]


def weighted_cov(run: "ClassificationRun", trace: "IntervalTrace") -> float:
    """Overall CoV of CPI for a classification (paper §3.1).

    Convenience re-export of :func:`repro.analysis.cov.weighted_cov`.
    """
    from repro.analysis.cov import weighted_cov as _weighted_cov

    return _weighted_cov(run, trace)
