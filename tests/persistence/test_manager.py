"""The PersistenceManager end to end through a real SessionRegistry:
evict-to-disk, hydrate-on-demand byte-identity, in-process crash
recovery, checkpoint sweeps, and compaction."""

import numpy as np
import pytest

from repro.core import PhaseTracker
from repro.errors import SessionExistsError, SessionNotFoundError
from repro.persistence import PersistenceManager, list_segments
from repro.service.session import SessionRegistry
from repro.service.snapshot import dumps, snapshot_tracker

INTERVAL_INSTRUCTIONS = 2_000
BASE_A, BASE_B = 0x400000, 0x900000


def branch_batches(seed, batches, batch_size=200):
    rng = np.random.default_rng(seed)
    out = []
    for index in range(batches):
        base = BASE_A if (index // 3) % 2 == 0 else BASE_B
        pcs = (base + rng.integers(0, 48, size=batch_size) * 4).tolist()
        counts = rng.integers(10, 60, size=batch_size).tolist()
        out.append((pcs, counts))
    return out


def durable_registry(tmp_path, max_sessions=4, **kwargs):
    manager = PersistenceManager(tmp_path / "data", **kwargs)
    registry = SessionRegistry(max_sessions=max_sessions)
    installed = manager.install_into(registry)
    return manager, registry, installed


def open_and_drive(manager, registry, name, batches):
    """Mimic the server's apply-then-journal discipline."""
    session = registry.open(
        name=name, interval_instructions=INTERVAL_INSTRUCTIONS
    )
    manager.log_open(
        name, interval_instructions=INTERVAL_INSTRUCTIONS
    )
    drive(manager, session, batches)
    return session


def drive(manager, session, batches):
    for pcs, counts in batches:
        reports = session.tracker.observe_batch(pcs, counts, cpi=1.1)
        session.intervals_pushed += len(reports)
        session.branches_ingested += len(pcs)
        manager.log_observe(session.name, pcs, counts, cpi=1.1)


class TestEvictHydrate:
    def test_evicted_session_hydrates_byte_identical(self, tmp_path):
        manager, registry, _ = durable_registry(tmp_path, max_sessions=2)
        batches = branch_batches(seed=1, batches=4)
        open_and_drive(manager, registry, "victim", batches)
        before = dumps(snapshot_tracker(registry.get("victim").tracker))

        # Two more opens push "victim" out through the LRU hook.
        open_and_drive(manager, registry, "b", batches[:1])
        open_and_drive(manager, registry, "c", batches[:1])
        assert "victim" not in registry
        assert manager.cold_names() == ["victim"]
        assert registry.stats()["evicted_saved"] == 1

        session = registry.get("victim")  # hydrates transparently
        assert dumps(snapshot_tracker(session.tracker)) == before
        assert session.branches_ingested == 4 * 200
        assert registry.stats()["hydrated"] == 1
        # Hydrating into a full registry pushed the LRU session ("b")
        # out to disk in its place — nothing was destroyed.
        assert manager.cold_names() == ["b"]

    def test_hydrated_session_continues_identically(self, tmp_path):
        manager, registry, _ = durable_registry(tmp_path, max_sessions=2)
        batches = branch_batches(seed=2, batches=6)
        reference = PhaseTracker(
            interval_instructions=INTERVAL_INSTRUCTIONS
        )
        for pcs, counts in batches:
            reference.observe_batch(pcs, counts, cpi=1.1)

        open_and_drive(manager, registry, "victim", batches[:3])
        open_and_drive(manager, registry, "b", batches[:1])
        open_and_drive(manager, registry, "c", batches[:1])  # evicts
        session = registry.get("victim")
        drive(manager, session, batches[3:])
        assert dumps(snapshot_tracker(session.tracker)) == dumps(
            snapshot_tracker(reference)
        )

    def test_open_refuses_cold_names(self, tmp_path):
        manager, registry, _ = durable_registry(tmp_path, max_sessions=2)
        batches = branch_batches(seed=3, batches=1)
        open_and_drive(manager, registry, "victim", batches)
        open_and_drive(manager, registry, "b", batches)
        open_and_drive(manager, registry, "c", batches)  # evicts victim
        with pytest.raises(SessionExistsError, match="evicted to disk"):
            registry.open(name="victim")

    def test_generated_names_skip_cold_names(self, tmp_path):
        manager, registry, _ = durable_registry(tmp_path, max_sessions=2)
        batches = branch_batches(seed=4, batches=1)
        open_and_drive(manager, registry, "session-1", batches)
        open_and_drive(manager, registry, "b", batches)
        open_and_drive(manager, registry, "c", batches)  # session-1 cold
        session = registry.open()
        assert session.name != "session-1"

    def test_closing_a_cold_session_frees_its_name(self, tmp_path):
        manager, registry, _ = durable_registry(tmp_path, max_sessions=2)
        batches = branch_batches(seed=5, batches=1)
        open_and_drive(manager, registry, "victim", batches)
        open_and_drive(manager, registry, "b", batches)
        open_and_drive(manager, registry, "c", batches)  # evicts victim
        registry.close("victim")
        manager.log_close("victim")
        assert manager.cold_sessions == 0
        assert len(manager.checkpoints) == 0
        registry.open(name="victim")  # name is reusable again

    def test_transient_checkpoint_read_error_keeps_cold_entry(
        self, tmp_path, monkeypatch
    ):
        manager, registry, _ = durable_registry(tmp_path, max_sessions=2)
        batches = branch_batches(seed=18, batches=1)
        open_and_drive(manager, registry, "victim", batches)
        open_and_drive(manager, registry, "b", batches)
        open_and_drive(manager, registry, "c", batches)  # evicts victim
        # Checkpoint unreadable but still on disk (EIO-style): the
        # cold registration must survive for a later retry.
        monkeypatch.setattr(manager.checkpoints, "load", lambda name: None)
        with pytest.raises(SessionNotFoundError):
            registry.get("victim")
        assert manager.hydrate_failures == 1
        assert manager.cold_names() == ["victim"]
        monkeypatch.undo()
        assert registry.get("victim").branches_ingested == 200

    def test_hydrate_failure_is_counted_not_raised(self, tmp_path):
        manager, registry, _ = durable_registry(tmp_path, max_sessions=2)
        batches = branch_batches(seed=6, batches=1)
        open_and_drive(manager, registry, "victim", batches)
        open_and_drive(manager, registry, "b", batches)
        open_and_drive(manager, registry, "c", batches)
        manager.checkpoints.path_for("victim").write_bytes(b"smashed")
        with pytest.raises(SessionNotFoundError):
            registry.get("victim")
        assert manager.hydrate_failures == 1
        assert manager.cold_sessions == 0


class TestCrashRecovery:
    def test_oversized_open_snapshot_travels_via_checkpoint(
        self, tmp_path, monkeypatch
    ):
        import repro.persistence.journal as journal_module

        # Frame cap small enough that a warmed tracker's snapshot
        # cannot travel inline in the open record.
        monkeypatch.setattr(journal_module, "MAX_RECORD_BYTES", 2_048)
        donor = PhaseTracker(interval_instructions=INTERVAL_INSTRUCTIONS)
        for pcs, counts in branch_batches(seed=19, batches=3):
            donor.observe_batch(pcs, counts, cpi=1.1)
        snapshot = snapshot_tracker(donor)
        assert len(dumps(snapshot)) > 2_048

        manager, registry, _ = durable_registry(tmp_path)
        session = registry.open(name="big", snapshot=snapshot)
        manager.log_open("big", snapshot=snapshot)
        before = dumps(snapshot_tracker(session.tracker))
        del manager, registry  # kill -9

        manager2, registry2, _ = durable_registry(tmp_path)
        assert "big" in manager2.cold_names()
        after = dumps(snapshot_tracker(registry2.get("big").tracker))
        assert after == before

    def test_unclean_restart_recovers_byte_identical(self, tmp_path):
        manager, registry, _ = durable_registry(tmp_path)
        batches = branch_batches(seed=7, batches=5)
        session = open_and_drive(manager, registry, "a", batches)
        before = dumps(snapshot_tracker(session.tracker))
        # No manager.close(): simulate kill -9. Batch mode flushed
        # every record to the OS, so nothing is lost.
        del manager, registry

        manager2, registry2, installed = durable_registry(tmp_path)
        assert installed == 1
        after = dumps(snapshot_tracker(registry2.get("a").tracker))
        assert after == before
        assert manager2.stats()["replayed_records"] == 1 + len(batches)

    def test_checkpoint_bounds_the_replay_tail(self, tmp_path):
        manager, registry, _ = durable_registry(tmp_path)
        batches = branch_batches(seed=8, batches=6)
        session = open_and_drive(manager, registry, "a", batches[:4])
        assert manager.checkpoint_all(registry.sessions()) == 1
        drive(manager, session, batches[4:])
        before = dumps(snapshot_tracker(session.tracker))
        del manager, registry

        manager2, _, _ = durable_registry(tmp_path)
        # Only the two post-checkpoint observes replayed.
        assert manager2.stats()["replayed_records"] == 2
        recovered = manager2.recovery.live["a"]
        assert dumps(snapshot_tracker(recovered.tracker)) == before

    def test_evicted_sessions_survive_restart_cold(self, tmp_path):
        manager, registry, _ = durable_registry(tmp_path, max_sessions=2)
        batches = branch_batches(seed=9, batches=3)
        open_and_drive(manager, registry, "victim", batches)
        before = dumps(snapshot_tracker(registry.get("victim").tracker))
        open_and_drive(manager, registry, "b", batches[:1])
        open_and_drive(manager, registry, "c", batches[:1])  # evicts
        del manager, registry

        manager2, registry2, _ = durable_registry(
            tmp_path, max_sessions=4
        )
        assert "victim" in manager2.cold_names()
        after = dumps(snapshot_tracker(registry2.get("victim").tracker))
        assert after == before

    def test_recovered_overflow_spills_back_to_disk(self, tmp_path):
        manager, registry, _ = durable_registry(tmp_path, max_sessions=8)
        batches = branch_batches(seed=10, batches=1)
        for index in range(5):
            open_and_drive(manager, registry, f"s{index}", batches)
        del manager, registry

        # Restart with a smaller cap: all five are adopted through the
        # normal admission path, and the overflow is evicted *to disk*
        # (the hooks are installed before adoption), not destroyed.
        manager2, registry2, installed = durable_registry(
            tmp_path, max_sessions=2
        )
        assert installed == 5
        assert len(registry2) == 2
        assert manager2.cold_sessions == 3
        assert registry2.stats()["evicted_saved"] == 3
        # Every one of the five is still reachable.
        for index in range(5):
            assert registry2.get(f"s{index}") is not None

    def test_closed_sessions_stay_closed_after_restart(self, tmp_path):
        manager, registry, _ = durable_registry(tmp_path)
        batches = branch_batches(seed=11, batches=2)
        open_and_drive(manager, registry, "a", batches)
        manager.checkpoint_all(registry.sessions())
        registry.close("a")
        manager.log_close("a")
        del manager, registry

        manager2, registry2, installed = durable_registry(tmp_path)
        assert installed == 0 and manager2.cold_sessions == 0
        assert len(manager2.checkpoints) == 0
        with pytest.raises(SessionNotFoundError):
            registry2.get("a")

    def test_torn_journal_tail_is_survivable(self, tmp_path):
        manager, registry, _ = durable_registry(tmp_path)
        batches = branch_batches(seed=12, batches=4)
        reference = PhaseTracker(
            interval_instructions=INTERVAL_INSTRUCTIONS
        )
        session = open_and_drive(manager, registry, "a", batches[:3])
        for pcs, counts in batches[:3]:
            reference.observe_batch(pcs, counts, cpi=1.1)
        drive(manager, session, batches[3:])  # will be torn off
        manager.close()
        segment = list_segments(manager.journal_root)[-1]
        with open(segment, "rb+") as handle:
            handle.truncate(segment.stat().st_size - 7)
        del manager, registry

        manager2, registry2, _ = durable_registry(tmp_path)
        assert manager2.stats()["torn_tails"] == 1
        after = dumps(snapshot_tracker(registry2.get("a").tracker))
        assert after == dumps(snapshot_tracker(reference))


class TestMaintenance:
    def test_checkpoint_all_skips_clean_sessions(self, tmp_path):
        manager, registry, _ = durable_registry(tmp_path)
        batches = branch_batches(seed=13, batches=2)
        open_and_drive(manager, registry, "a", batches)
        open_and_drive(manager, registry, "b", batches)
        assert manager.checkpoint_all(registry.sessions()) == 2
        assert manager.checkpoint_all(registry.sessions()) == 0
        assert manager.checkpoints_skipped_clean == 2
        drive(manager, registry.get("a"), batches[:1])
        assert manager.checkpoint_all(registry.sessions()) == 1

    def test_compaction_drops_superseded_segments(self, tmp_path):
        manager, registry, _ = durable_registry(
            tmp_path, segment_bytes=2_048
        )
        batches = branch_batches(seed=14, batches=20, batch_size=40)
        open_and_drive(manager, registry, "a", batches)
        assert len(list_segments(manager.journal_root)) > 2
        manager.checkpoint_all(registry.sessions())
        removed = manager.compact()
        assert removed > 0
        # Everything still recovers from checkpoint + remaining tail.
        before = dumps(snapshot_tracker(registry.get("a").tracker))
        del registry
        manager.close()
        manager2, registry2, _ = durable_registry(
            tmp_path, segment_bytes=2_048
        )
        assert dumps(
            snapshot_tracker(registry2.get("a").tracker)
        ) == before

    def test_compaction_respects_uncheckpointed_sessions(self, tmp_path):
        manager, registry, _ = durable_registry(
            tmp_path, segment_bytes=2_048
        )
        batches = branch_batches(seed=15, batches=20, batch_size=40)
        open_and_drive(manager, registry, "a", batches)
        segments = list_segments(manager.journal_root)
        assert len(segments) > 2
        # "a" was never checkpointed: its open record (seq 1) is still
        # needed, so nothing may be compacted.
        assert manager.compact() == 0
        assert list_segments(manager.journal_root) == segments

    def test_stats_are_json_safe(self, tmp_path):
        import json

        manager, registry, _ = durable_registry(tmp_path)
        batches = branch_batches(seed=16, batches=1)
        open_and_drive(manager, registry, "a", batches)
        stats = manager.stats()
        assert json.loads(json.dumps(stats)) == stats
        assert stats["journal_records"] == 2
        assert stats["cold"] == 0

    def test_context_manager_closes_journal(self, tmp_path):
        with PersistenceManager(tmp_path / "data") as manager:
            manager.log_open("a", interval_instructions=1_000)
        assert manager.journal.closed


class TestTelemetry:
    def test_evict_and_hydrate_events(self, tmp_path):
        import io

        from repro.telemetry import EventLog, Telemetry, read_events

        stream = io.StringIO()
        telemetry = Telemetry(events=EventLog(stream=stream))
        manager = PersistenceManager(tmp_path / "data", telemetry=telemetry)
        registry = SessionRegistry(max_sessions=2, telemetry=telemetry)
        manager.install_into(registry)
        batches = branch_batches(seed=17, batches=1)
        open_and_drive(manager, registry, "victim", batches)
        open_and_drive(manager, registry, "b", batches)
        open_and_drive(manager, registry, "c", batches)
        registry.get("victim")
        kinds = [
            record["event"]
            for record in read_events(io.StringIO(stream.getvalue()))
        ]
        assert "session_evicted_to_disk" in kinds
        assert "session_hydrated" in kinds
        assert telemetry.metrics.get(
            "repro_persistence_hydrates_total"
        ).value == 1
        # "victim" came back; "b" took its place on disk.
        assert telemetry.metrics.get(
            "repro_persistence_cold_sessions"
        ).value == 1
        assert manager.cold_names() == ["b"]
