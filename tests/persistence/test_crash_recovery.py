"""The headline durability guarantee, end to end over real sockets:
SIGKILL a live server mid-ingest, restart it on the same data
directory, and every session comes back byte-identical — including a
truncated journal tail when the kill lands mid-append."""

import os
import signal
import subprocess
import sys
import time

import numpy as np

from repro.service import PhaseServiceClient, start_in_thread
from repro.service.snapshot import dumps

INTERVAL_INSTRUCTIONS = 3_000
BASE_A, BASE_B = 0x400000, 0x900000

SERVE_CODE = """\
import sys
from repro.harness.cli import main
sys.exit(main(sys.argv[1:]))
"""


def branch_batches(seed, batches, batch_size=300):
    rng = np.random.default_rng(seed)
    out = []
    for index in range(batches):
        base = BASE_A if (index // 4) % 2 == 0 else BASE_B
        pcs = (base + rng.integers(0, 48, size=batch_size) * 4).tolist()
        counts = rng.integers(10, 60, size=batch_size).tolist()
        out.append((pcs, counts))
    return out


def spawn_server(data_dir, sync="batch"):
    process = subprocess.Popen(
        [
            sys.executable, "-c", SERVE_CODE, "serve",
            "--port", "0", "--data-dir", str(data_dir), "--sync", sync,
            "--checkpoint-interval", "600",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=dict(
            os.environ,
            PYTHONPATH=os.pathsep.join(
                filter(None, ["src", os.environ.get("PYTHONPATH")])
            ),
        ),
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        ))),
    )
    port = None
    deadline = time.time() + 30
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line:
            raise AssertionError(
                f"server exited early: {process.poll()}"
            )
        if "listening on" in line:
            port = int(line.split("listening on", 1)[1]
                       .split()[0].rsplit(":", 1)[1])
            break
    assert port, "server never reported its port"
    return process, port


class TestSigkillRecovery:
    def test_sigkill_mid_ingest_recovers_full_registry(self, tmp_path):
        data_dir = tmp_path / "data"
        batches = branch_batches(seed=42, batches=8)
        process, port = spawn_server(data_dir)
        try:
            with PhaseServiceClient(port=port) as client:
                client.open_session(
                    "alpha", interval_instructions=INTERVAL_INSTRUCTIONS
                )
                client.open_session(
                    "beta", interval_instructions=INTERVAL_INSTRUCTIONS
                )
                for pcs, counts in batches:
                    client.observe("alpha", pcs, counts, cpi=1.1)
                for pcs, counts in batches[:3]:
                    client.observe("beta", pcs, counts, cpi=1.4)
                expected = {
                    name: dumps(client.snapshot(name))
                    for name in ("alpha", "beta")
                }
                stats = client.stats()
                assert stats["persistence"]["journal_records"] == 13
        finally:
            # The crash: no drain, no checkpoint sweep, no journal
            # close. Batch mode's flush-per-append means an acked
            # batch still survives losing the process.
            process.kill()
            process.wait(timeout=10)

        process, port = spawn_server(data_dir)
        try:
            with PhaseServiceClient(port=port) as client:
                recovered = {
                    name: dumps(client.snapshot(name))
                    for name in ("alpha", "beta")
                }
                assert recovered == expected
                stats = client.stats()
                assert stats["persistence"]["replayed_records"] == 13
                # Recovered sessions keep streaming normally.
                extra = branch_batches(seed=7, batches=2)
                for pcs, counts in extra:
                    client.observe("alpha", pcs, counts, cpi=1.1)
                summary = client.close_session("alpha")
                assert summary["branches"] == (8 + 2) * 300
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)

    def test_torn_tail_after_sigkill_is_counted_and_survivable(
        self, tmp_path
    ):
        # A kill can land mid-append; simulate the worst case
        # deterministically by tearing the journal tail ourselves
        # between the kill and the restart.
        data_dir = tmp_path / "data"
        batches = branch_batches(seed=3, batches=5)
        process, port = spawn_server(data_dir)
        try:
            with PhaseServiceClient(port=port) as client:
                client.open_session(
                    "alpha", interval_instructions=INTERVAL_INSTRUCTIONS
                )
                for pcs, counts in batches:
                    client.observe("alpha", pcs, counts, cpi=1.1)
        finally:
            process.kill()
            process.wait(timeout=10)

        from repro.persistence import list_segments

        segment = list_segments(data_dir / "journal")[-1]
        with open(segment, "rb+") as handle:
            handle.truncate(segment.stat().st_size - 9)

        process, port = spawn_server(data_dir)
        try:
            with PhaseServiceClient(port=port) as client:
                stats = client.stats()["persistence"]
                assert stats["torn_tails"] == 1
                # One observe record was torn off the tail.
                assert stats["replayed_records"] == 1 + len(batches) - 1
                # The session is intact up to the last durable record.
                summary = client.close_session("alpha")
                assert summary["branches"] == (len(batches) - 1) * 300
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)


class TestInThreadServiceDurability:
    """The same guarantees through start_in_thread — cheaper, and they
    cover the graceful path (shutdown checkpoints everything)."""

    def test_graceful_restart_recovers_from_checkpoints(self, tmp_path):
        batches = branch_batches(seed=11, batches=6)
        handle = start_in_thread(
            max_sessions=8, data_dir=tmp_path / "data"
        )
        try:
            with PhaseServiceClient(port=handle.port) as client:
                client.open_session(
                    "alpha", interval_instructions=INTERVAL_INSTRUCTIONS
                )
                for pcs, counts in batches:
                    client.observe("alpha", pcs, counts, cpi=1.2)
                expected = dumps(client.snapshot("alpha"))
        finally:
            handle.stop()  # graceful: checkpoint sweep + compact

        handle = start_in_thread(
            max_sessions=8, data_dir=tmp_path / "data"
        )
        try:
            assert handle.service.sessions_recovered == 0  # cold, not live
            with PhaseServiceClient(port=handle.port) as client:
                assert dumps(client.snapshot("alpha")) == expected
                stats = client.stats()["persistence"]
                # Graceful shutdown checkpointed: no tail to replay.
                assert stats["replayed_records"] == 0
        finally:
            handle.stop()

    def test_checkpoint_loop_survives_a_failed_sweep(self, tmp_path):
        import asyncio

        from repro.errors import PersistenceError
        from repro.service.server import PhaseService

        service = PhaseService(
            data_dir=str(tmp_path / "data"), checkpoint_interval=0.01
        )
        service._persistence.close()

        calls = []

        class ExplodingPersistence:
            def checkpoint_all(self, sessions):
                calls.append("sweep")
                if len(calls) == 1:
                    raise PersistenceError("disk full")

            def compact(self):
                return 0

        service._persistence = ExplodingPersistence()

        async def run():
            task = asyncio.ensure_future(service._checkpoint_loop())
            deadline = asyncio.get_event_loop().time() + 5
            while (
                len(calls) < 3
                and asyncio.get_event_loop().time() < deadline
            ):
                await asyncio.sleep(0.01)
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

        asyncio.run(run())
        # The first sweep failed; the loop counted it and kept going.
        assert len(calls) >= 3
        assert service.checkpoint_failures == 1

    def test_observe_batches_are_journaled(self, tmp_path):
        batches = branch_batches(seed=12, batches=2)
        handle = start_in_thread(
            max_sessions=8, data_dir=tmp_path / "data"
        )
        try:
            with PhaseServiceClient(port=handle.port) as client:
                client.open_session(
                    "alpha", interval_instructions=INTERVAL_INSTRUCTIONS
                )
                for pcs, counts in batches:
                    client.observe("alpha", pcs, counts, cpi=1.0)
                stats = client.stats()["persistence"]
                assert stats["journal_records"] == 3
                assert stats["journal_unsynced"] <= 3
        finally:
            handle.stop()
