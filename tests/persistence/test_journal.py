"""The segment journal: CRC framing, rotation, sync modes, and the
torn-tail truncation that makes ``kill -9`` a recoverable event."""

import json
import struct

import pytest

from repro.errors import PersistenceError
from repro.persistence import (
    Journal,
    list_segments,
    replay_journal,
)
from repro.persistence.journal import (
    MAX_RECORD_BYTES,
    encode_record,
    segment_first_seq,
    segment_name,
)


def append_n(journal, n, start=0):
    for index in range(start, start + n):
        journal.append({"kind": "observe", "session": "s", "index": index})


class TestFraming:
    def test_round_trip(self, tmp_path):
        with Journal(tmp_path, sync="batch") as journal:
            append_n(journal, 5)
        replay = replay_journal(tmp_path)
        assert [r["index"] for r in replay.records] == list(range(5))
        assert [r["seq"] for r in replay.records] == [1, 2, 3, 4, 5]
        assert replay.stats.records == 5
        assert replay.stats.torn_tails == 0
        assert replay.stats.next_seq == 6

    def test_segment_name_round_trip(self):
        assert segment_first_seq(segment_name(0xDEAD)) == 0xDEAD
        with pytest.raises(PersistenceError):
            segment_first_seq("not-a-segment.bin")

    def test_reopen_continues_sequence(self, tmp_path):
        with Journal(tmp_path) as journal:
            append_n(journal, 3)
        stats = replay_journal(tmp_path).stats
        with Journal(tmp_path, next_seq=stats.next_seq) as journal:
            append_n(journal, 2, start=3)
        replay = replay_journal(tmp_path)
        assert [r["seq"] for r in replay.records] == [1, 2, 3, 4, 5]
        assert [r["index"] for r in replay.records] == list(range(5))

    def test_empty_directory_replays_empty(self, tmp_path):
        replay = replay_journal(tmp_path / "missing")
        assert replay.records == []
        assert replay.stats.next_seq == 1


class TestRotation:
    def test_rotates_at_segment_bytes(self, tmp_path):
        with Journal(tmp_path, segment_bytes=256) as journal:
            append_n(journal, 40)
        segments = list_segments(tmp_path)
        assert len(segments) > 1
        firsts = [segment_first_seq(p) for p in segments]
        assert firsts == sorted(firsts) and firsts[0] == 1
        replay = replay_journal(tmp_path)
        assert replay.stats.records == 40
        assert replay.stats.segments == len(segments)

    def test_reopen_continues_unfilled_segment(self, tmp_path):
        with Journal(tmp_path, segment_bytes=1 << 20) as journal:
            append_n(journal, 3)
        with Journal(tmp_path, next_seq=4, segment_bytes=1 << 20) as journal:
            append_n(journal, 3, start=3)
        assert len(list_segments(tmp_path)) == 1
        assert replay_journal(tmp_path).stats.records == 6


class TestTornTails:
    def corrupt_tail(self, tmp_path, cut):
        """Chop ``cut`` bytes off the newest segment — what a crash
        mid-append leaves behind."""
        segment = list_segments(tmp_path)[-1]
        size = segment.stat().st_size
        with open(segment, "rb+") as handle:
            handle.truncate(size - cut)
        return segment

    def test_short_tail_is_truncated_and_counted(self, tmp_path):
        with Journal(tmp_path) as journal:
            append_n(journal, 5)
        segment = self.corrupt_tail(tmp_path, cut=3)
        good_size = segment.stat().st_size  # pre-replay, still torn
        replay = replay_journal(tmp_path)
        assert replay.stats.records == 4
        assert replay.stats.torn_tails == 1
        assert replay.stats.truncated_bytes > 0
        assert segment.stat().st_size < good_size
        # The repaired journal replays cleanly.
        again = replay_journal(tmp_path)
        assert again.stats.records == 4 and again.stats.torn_tails == 0

    def test_crc_corruption_is_a_torn_tail(self, tmp_path):
        with Journal(tmp_path) as journal:
            append_n(journal, 4)
        segment = list_segments(tmp_path)[0]
        data = bytearray(segment.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte in the last record
        segment.write_bytes(bytes(data))
        replay = replay_journal(tmp_path)
        assert replay.stats.records == 3
        assert replay.stats.torn_tails == 1

    def test_segments_after_tear_are_discarded(self, tmp_path):
        with Journal(tmp_path, segment_bytes=256) as journal:
            append_n(journal, 40)
        segments = list_segments(tmp_path)
        assert len(segments) >= 3
        # Corrupt the first record of the *second* segment.
        data = bytearray(segments[1].read_bytes())
        data[struct.calcsize("<II")] ^= 0xFF
        segments[1].write_bytes(bytes(data))
        replay = replay_journal(tmp_path)
        assert replay.stats.torn_tails == 1
        assert replay.stats.segments_discarded == len(segments) - 2
        remaining = list_segments(tmp_path)
        assert remaining[-1] == segments[1]
        # Every surviving record predates the tear.
        assert replay.records[-1]["seq"] < segment_first_seq(segments[2])

    def test_truncate_false_leaves_damage_in_place(self, tmp_path):
        with Journal(tmp_path) as journal:
            append_n(journal, 3)
        segment = self.corrupt_tail(tmp_path, cut=2)
        size = segment.stat().st_size
        replay = replay_journal(tmp_path, truncate=False)
        assert replay.stats.torn_tails == 1
        assert segment.stat().st_size == size

    def test_absurd_length_header_is_corruption(self, tmp_path):
        with Journal(tmp_path) as journal:
            append_n(journal, 1)
        segment = list_segments(tmp_path)[0]
        with open(segment, "ab") as handle:
            handle.write(struct.pack("<II", MAX_RECORD_BYTES + 1, 0))
        replay = replay_journal(tmp_path)
        assert replay.stats.records == 1
        assert replay.stats.torn_tails == 1

    def test_non_monotonic_seq_ends_replay(self, tmp_path):
        with Journal(tmp_path) as journal:
            append_n(journal, 2)
        segment = list_segments(tmp_path)[0]
        stale = json.dumps({"kind": "observe", "seq": 1}).encode()
        with open(segment, "ab") as handle:
            handle.write(encode_record(stale))
        replay = replay_journal(tmp_path)
        assert replay.stats.records == 2
        assert replay.stats.torn_tails == 1


class TestSyncModes:
    def test_invalid_mode_rejected(self, tmp_path):
        with pytest.raises(PersistenceError, match="sync"):
            Journal(tmp_path, sync="sometimes")

    def test_invalid_sizes_rejected(self, tmp_path):
        with pytest.raises(PersistenceError):
            Journal(tmp_path, segment_bytes=0)
        with pytest.raises(PersistenceError):
            Journal(tmp_path, batch_records=0)
        with pytest.raises(PersistenceError):
            Journal(tmp_path, next_seq=0)

    def test_batch_fsyncs_every_batch_records(self, tmp_path):
        journal = Journal(tmp_path, sync="batch", batch_records=3)
        append_n(journal, 2)
        assert journal.unsynced_records == 2
        append_n(journal, 1, start=2)
        assert journal.unsynced_records == 0
        assert journal.fsyncs == 1
        journal.close()

    def test_always_never_lags(self, tmp_path):
        journal = Journal(tmp_path, sync="always")
        append_n(journal, 3)
        assert journal.unsynced_records == 0
        assert journal.fsyncs == 3
        journal.close()

    def test_explicit_sync_clears_lag(self, tmp_path):
        journal = Journal(tmp_path, sync="batch", batch_records=100)
        append_n(journal, 5)
        assert journal.unsynced_records == 5
        journal.sync()
        assert journal.unsynced_records == 0
        journal.close()

    def test_none_mode_still_replayable_after_close(self, tmp_path):
        with Journal(tmp_path, sync="none") as journal:
            append_n(journal, 4)
        assert replay_journal(tmp_path).stats.records == 4

    def test_oversized_record_is_refused_before_write(
        self, tmp_path, monkeypatch
    ):
        import repro.persistence.journal as journal_module

        monkeypatch.setattr(journal_module, "MAX_RECORD_BYTES", 256)
        with Journal(tmp_path) as journal:
            journal.append({"kind": "open", "session": "s"})
            with pytest.raises(PersistenceError, match="frame cap"):
                journal.append({
                    "kind": "open", "session": "s",
                    "snapshot": "x" * 1024,
                })
            # Nothing was written and the seq was not consumed.
            journal.append({"kind": "close", "session": "s"})
        replay = replay_journal(tmp_path)
        assert [r["seq"] for r in replay.records] == [1, 2]
        assert replay.stats.torn_tails == 0

    def test_append_after_close_raises(self, tmp_path):
        journal = Journal(tmp_path)
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(PersistenceError, match="closed"):
            journal.append({"kind": "observe"})


class TestTelemetry:
    def test_counters_and_lag_gauge(self, tmp_path):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        with Journal(
            tmp_path, sync="batch", batch_records=100, telemetry=telemetry
        ) as journal:
            append_n(journal, 7)
            metrics = telemetry.metrics
            records = metrics.get(
                "repro_persistence_journal_records_total"
            )
            assert records.value == 7
            lag = metrics.get("repro_persistence_unsynced_records")
            assert lag.value == 7
            journal.sync()
            assert lag.value == 0
            fsync = metrics.get("repro_persistence_fsync_seconds")
            assert fsync.count >= 1

    def test_torn_tail_emits_event(self, tmp_path):
        import io

        from repro.telemetry import EventLog, Telemetry, read_events

        with Journal(tmp_path) as journal:
            append_n(journal, 3)
        segment = list_segments(tmp_path)[0]
        with open(segment, "rb+") as handle:
            handle.truncate(segment.stat().st_size - 1)
        stream = io.StringIO()
        telemetry = Telemetry(events=EventLog(stream=stream))
        replay_journal(tmp_path, telemetry=telemetry)
        kinds = [
            record["event"]
            for record in read_events(io.StringIO(stream.getvalue()))
        ]
        assert "journal_torn_tail" in kinds
