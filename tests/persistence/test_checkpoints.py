"""The checkpoint store: atomic publication, CRC-verified loads, and
corrupt-is-a-counted-miss semantics."""

import json

import pytest

from repro.errors import PersistenceError
from repro.persistence import CHECKPOINT_SCHEMA_VERSION, CheckpointStore


def sample_document(seq=7):
    return {"seq": seq, "snapshot": {"kind": "test"}, "meta": {"n": 3}}


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write("alpha", sample_document())
        body = store.load("alpha")
        assert body["seq"] == 7
        assert body["session"] == "alpha"
        assert body["checkpoint_schema"] == CHECKPOINT_SCHEMA_VERSION
        assert body["snapshot"] == {"kind": "test"}

    def test_missing_is_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load("ghost") is None

    def test_overwrite_wins(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write("alpha", sample_document(seq=1))
        store.write("alpha", sample_document(seq=9))
        assert store.load("alpha")["seq"] == 9
        assert len(store) == 1

    def test_load_all_keys_by_session_name(self, tmp_path):
        store = CheckpointStore(tmp_path)
        names = ["a", "weird/name with spaces", "☃"]
        for index, name in enumerate(names):
            store.write(name, sample_document(seq=index))
        documents = store.load_all()
        assert sorted(documents) == sorted(names)
        assert documents["☃"]["seq"] == 2

    def test_delete(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write("alpha", sample_document())
        assert store.delete("alpha") is True
        assert store.delete("alpha") is False
        assert store.load("alpha") is None


class TestAtomicity:
    def test_no_tmp_files_survive_a_write(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for index in range(5):
            store.write("alpha", sample_document(seq=index))
        leftovers = [p.name for p in tmp_path.iterdir()
                     if not p.name.endswith(".ckpt")]
        assert leftovers == []

    def test_unwritable_root_raises_persistence_error(self, tmp_path):
        store = CheckpointStore(tmp_path / "store")
        # Replace the directory with a plain file: the temp-file open
        # fails, which must surface as a typed error, not an OSError.
        import shutil
        shutil.rmtree(tmp_path / "store")
        (tmp_path / "store").write_text("in the way")
        with pytest.raises(PersistenceError, match="alpha"):
            store.write("alpha", sample_document())


class TestCorruption:
    def write_raw(self, store, name, data):
        store.path_for(name).write_bytes(data)

    def test_garbage_bytes_are_a_counted_miss(self, tmp_path):
        store = CheckpointStore(tmp_path)
        self.write_raw(store, "alpha", b"\x00\xffnot json")
        assert store.load("alpha") is None
        assert store.corrupt_dropped == 1
        # Best-effort unlinked, so the miss does not repeat forever.
        assert not store.path_for("alpha").exists()

    def test_crc_mismatch_is_a_counted_miss(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write("alpha", sample_document())
        raw = json.loads(store.path_for("alpha").read_bytes())
        raw["body"]["seq"] = 999  # tamper without recomputing the CRC
        self.write_raw(store, "alpha", json.dumps(raw).encode())
        assert store.load("alpha") is None
        assert store.corrupt_dropped == 1

    def test_schema_mismatch_is_a_counted_miss(self, tmp_path):
        import zlib

        store = CheckpointStore(tmp_path)
        body = dict(
            sample_document(),
            checkpoint_schema=CHECKPOINT_SCHEMA_VERSION + 1,
            session="alpha",
        )
        canonical = json.dumps(
            body, sort_keys=True, separators=(",", ":")
        ).encode()
        envelope = json.dumps({"crc": zlib.crc32(canonical), "body": body})
        self.write_raw(store, "alpha", envelope.encode())
        assert store.load("alpha") is None
        assert store.corrupt_dropped == 1

    def test_load_all_skips_corrupt_entries(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write("good", sample_document())
        self.write_raw(store, "bad", b"{broken")
        documents = store.load_all()
        assert list(documents) == ["good"]
        assert store.corrupt_dropped == 1

    def test_transient_read_error_keeps_the_file(
        self, tmp_path, monkeypatch
    ):
        import builtins

        store = CheckpointStore(tmp_path)
        store.write("alpha", sample_document())
        target = store.path_for("alpha")
        real_open = builtins.open

        def failing_open(file, *args, **kwargs):
            if file == target:
                raise OSError(5, "Input/output error")
            return real_open(file, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", failing_open)
        assert store.load("alpha") is None
        assert store.read_errors == 1
        assert store.corrupt_dropped == 0
        # The intact file survives the transient failure...
        assert target.exists()
        monkeypatch.undo()
        # ...so a retry serves the durable state.
        assert store.load("alpha")["seq"] == 7

    def test_corruption_emits_event_and_counter(self, tmp_path):
        import io

        from repro.telemetry import EventLog, Telemetry, read_events

        stream = io.StringIO()
        telemetry = Telemetry(events=EventLog(stream=stream))
        store = CheckpointStore(tmp_path, telemetry=telemetry)
        self.write_raw(store, "alpha", b"junk")
        store.load("alpha")
        kinds = [
            record["event"]
            for record in read_events(io.StringIO(stream.getvalue()))
        ]
        assert "checkpoint_corrupt" in kinds
        counter = telemetry.metrics.get(
            "repro_persistence_checkpoints_corrupt_total"
        )
        assert counter.value == 1
