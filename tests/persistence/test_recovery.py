"""Crash recovery and compaction: checkpoints fast-forward, the
journal tail replays byte-identically, damage demotes instead of
raising, and compaction never deletes a segment anyone still needs."""

import numpy as np

from repro.core import PhaseTracker
from repro.persistence import (
    CheckpointStore,
    Journal,
    compact_journal,
    list_segments,
    recover_state,
    replay_journal,
)
from repro.persistence.journal import segment_first_seq
from repro.service.snapshot import dumps, snapshot_tracker

INTERVAL_INSTRUCTIONS = 2_000
BASE_A, BASE_B = 0x400000, 0x900000


def branch_batches(seed, batches, batch_size=200):
    rng = np.random.default_rng(seed)
    out = []
    for index in range(batches):
        base = BASE_A if (index // 3) % 2 == 0 else BASE_B
        pcs = (base + rng.integers(0, 48, size=batch_size) * 4).tolist()
        counts = rng.integers(10, 60, size=batch_size).tolist()
        out.append((pcs, counts))
    return out


def open_record(name, interval_instructions=INTERVAL_INSTRUCTIONS):
    return {
        "kind": "open",
        "session": name,
        "config": None,
        "interval_instructions": interval_instructions,
        "snapshot": None,
    }


def observe_record(name, pcs, counts, cpi=1.1):
    return {
        "kind": "observe", "session": name,
        "pcs": pcs, "counts": counts, "cpi": cpi,
    }


def stores(tmp_path):
    return tmp_path / "journal", CheckpointStore(tmp_path / "checkpoints")


class TestReplay:
    def test_open_plus_observes_rebuild_the_tracker(self, tmp_path):
        journal_root, checkpoints = stores(tmp_path)
        batches = branch_batches(seed=1, batches=5)
        reference = PhaseTracker(
            interval_instructions=INTERVAL_INSTRUCTIONS
        )
        with Journal(journal_root) as journal:
            journal.append(open_record("a"))
            for pcs, counts in batches:
                reference.observe_batch(pcs, counts, cpi=1.1)
                journal.append(observe_record("a", pcs, counts))

        result = recover_state(journal_root, checkpoints)
        assert list(result.live) == ["a"]
        assert result.cold == {} and result.closed == []
        recovered = result.live["a"]
        assert recovered.branches_ingested == 5 * 200
        assert recovered.intervals_pushed == reference.intervals_observed
        assert dumps(snapshot_tracker(recovered.tracker)) == dumps(
            snapshot_tracker(reference)
        )

    def test_checkpoint_current_session_stays_cold(self, tmp_path):
        journal_root, checkpoints = stores(tmp_path)
        batches = branch_batches(seed=2, batches=3)
        tracker = PhaseTracker(interval_instructions=INTERVAL_INSTRUCTIONS)
        with Journal(journal_root) as journal:
            journal.append(open_record("a"))
            last = 1
            for pcs, counts in batches:
                tracker.observe_batch(pcs, counts, cpi=1.1)
                last = journal.append(observe_record("a", pcs, counts))
        checkpoints.write("a", {
            "seq": last,
            "snapshot": snapshot_tracker(tracker),
            "meta": {},
        })

        result = recover_state(journal_root, checkpoints)
        assert result.live == {}
        assert result.cold == {"a": last}
        assert result.replayed_records == 0
        assert result.skipped_records == 1 + len(batches)

    def test_checkpoint_plus_tail_matches_uninterrupted(self, tmp_path):
        journal_root, checkpoints = stores(tmp_path)
        batches = branch_batches(seed=3, batches=6)
        reference = PhaseTracker(
            interval_instructions=INTERVAL_INSTRUCTIONS
        )
        with Journal(journal_root) as journal:
            journal.append(open_record("a"))
            for index, (pcs, counts) in enumerate(batches):
                reference.observe_batch(pcs, counts, cpi=1.1)
                seq = journal.append(observe_record("a", pcs, counts))
                if index == 2:  # checkpoint mid-stream
                    checkpoints.write("a", {
                        "seq": seq,
                        "snapshot": snapshot_tracker(reference),
                        "meta": {"intervals_pushed": 11,
                                 "branches_ingested": 3 * 200},
                    })

        result = recover_state(journal_root, checkpoints)
        recovered = result.live["a"]
        assert recovered.checkpoint_seq is not None
        assert result.replayed_records == 3  # only the tail
        assert dumps(snapshot_tracker(recovered.tracker)) == dumps(
            snapshot_tracker(reference)
        )
        assert recovered.branches_ingested == 3 * 200 + 3 * 200

    def test_close_record_drops_the_session(self, tmp_path):
        journal_root, checkpoints = stores(tmp_path)
        checkpoints.write("a", {"seq": 2, "snapshot": {}, "meta": {}})
        with Journal(journal_root) as journal:
            journal.append(open_record("a"))         # seq 1
            pcs, counts = branch_batches(seed=4, batches=1)[0]
            journal.append(observe_record("a", pcs, counts))  # seq 2
            journal.append({"kind": "close", "session": "a"})  # seq 3

        result = recover_state(journal_root, checkpoints)
        assert result.live == {} and result.cold == {}
        assert result.closed == ["a"]  # its checkpoint file lingers

    def test_close_keeps_newer_incarnations_checkpoint(self, tmp_path):
        # close -> reopen -> checkpoint -> crash before the old close
        # could delete anything: the checkpoint stamped after the close
        # belongs to the NEW incarnation and must survive recovery.
        journal_root, checkpoints = stores(tmp_path)
        tracker = PhaseTracker(interval_instructions=INTERVAL_INSTRUCTIONS)
        pcs, counts = branch_batches(seed=5, batches=1)[0]
        tracker.observe_batch(pcs, counts, cpi=1.1)
        with Journal(journal_root) as journal:
            journal.append(open_record("a"))                   # seq 1
            journal.append({"kind": "close", "session": "a"})  # seq 2
            journal.append(open_record("a"))                   # seq 3
            last = journal.append(observe_record("a", pcs, counts))
        checkpoints.write("a", {
            "seq": last,
            "snapshot": snapshot_tracker(tracker),
            "meta": {},
        })

        result = recover_state(journal_root, checkpoints)
        assert result.closed == []
        assert result.cold == {"a": last}

    def test_orphaned_observe_is_counted_not_fatal(self, tmp_path):
        journal_root, checkpoints = stores(tmp_path)
        pcs, counts = branch_batches(seed=6, batches=1)[0]
        with Journal(journal_root) as journal:
            # No open record, no checkpoint: its open was compacted
            # away and the checkpoint was lost.
            journal.append(observe_record("ghost", pcs, counts))
        result = recover_state(journal_root, checkpoints)
        assert result.orphaned_records == 1
        assert result.live == {} and result.damaged_sessions == 0

    def test_unappliable_record_demotes_to_checkpoint(self, tmp_path):
        journal_root, checkpoints = stores(tmp_path)
        tracker = PhaseTracker(interval_instructions=INTERVAL_INSTRUCTIONS)
        pcs, counts = branch_batches(seed=7, batches=1)[0]
        tracker.observe_batch(pcs, counts, cpi=1.1)
        checkpoints.write("a", {
            "seq": 1,
            "snapshot": snapshot_tracker(tracker),
            "meta": {},
        })
        with Journal(journal_root, next_seq=2) as journal:
            journal.append({
                "kind": "observe", "session": "a",
                "pcs": "not-a-list", "counts": None, "cpi": 1.0,
            })
        result = recover_state(journal_root, checkpoints)
        assert result.damaged_sessions == 1
        # Demoted, not dropped: the last good checkpoint still serves.
        assert result.cold == {"a": 1}

    def test_unappliable_record_without_checkpoint_drops(self, tmp_path):
        journal_root, checkpoints = stores(tmp_path)
        with Journal(journal_root) as journal:
            journal.append(open_record("a"))
            journal.append({
                "kind": "observe", "session": "a",
                "pcs": "junk", "counts": "junk", "cpi": 1.0,
            })
        result = recover_state(journal_root, checkpoints)
        assert result.damaged_sessions == 1
        assert result.live == {} and result.cold == {}

    def test_torn_tail_recovery_keeps_the_prefix(self, tmp_path):
        journal_root, checkpoints = stores(tmp_path)
        batches = branch_batches(seed=8, batches=4)
        reference = PhaseTracker(
            interval_instructions=INTERVAL_INSTRUCTIONS
        )
        with Journal(journal_root) as journal:
            journal.append(open_record("a"))
            for pcs, counts in batches[:3]:
                reference.observe_batch(pcs, counts, cpi=1.1)
                journal.append(observe_record("a", pcs, counts))
            journal.append(observe_record("a", *batches[3]))
        # Tear the final record: what kill -9 mid-append leaves.
        segment = list_segments(journal_root)[-1]
        with open(segment, "rb+") as handle:
            handle.truncate(segment.stat().st_size - 5)

        result = recover_state(journal_root, checkpoints)
        assert result.journal.torn_tails == 1
        recovered = result.live["a"]
        assert dumps(snapshot_tracker(recovered.tracker)) == dumps(
            snapshot_tracker(reference)
        )

    def test_next_seq_never_reuses_checkpoint_covered_seqs(self, tmp_path):
        # A crash under sync=none (or a machine crash eating the
        # journal tail) can leave a durable checkpoint covering seqs
        # the on-disk journal lost. The restarted journal must not
        # hand those seqs out again — records reusing them would be
        # skipped as "covered" on the next recovery.
        journal_root, checkpoints = stores(tmp_path)
        tracker = PhaseTracker(interval_instructions=INTERVAL_INSTRUCTIONS)
        with Journal(journal_root) as journal:
            journal.append(open_record("a"))  # seq 1; observes 2..9 lost
        checkpoints.write("a", {
            "seq": 9,
            "snapshot": snapshot_tracker(tracker),
            "meta": {},
        })
        result = recover_state(journal_root, checkpoints)
        assert result.cold == {"a": 9}
        assert result.next_seq == 10

    def test_open_with_missing_checkpointed_snapshot_is_damage(
        self, tmp_path
    ):
        # An oversized restore snapshot travels as a checkpoint, not
        # inline; if that checkpoint is gone, building a fresh tracker
        # would silently impersonate the restored one.
        journal_root, checkpoints = stores(tmp_path)
        with Journal(journal_root) as journal:
            journal.append(
                dict(open_record("a"), snapshot_ref="checkpoint")
            )
        result = recover_state(journal_root, checkpoints)
        assert result.damaged_sessions == 1
        assert result.live == {} and result.cold == {}

    def test_unknown_record_kind_is_orphaned(self, tmp_path):
        journal_root, checkpoints = stores(tmp_path)
        with Journal(journal_root) as journal:
            journal.append({"kind": "vacuum", "session": "a"})
            journal.append({"kind": "open"})  # no session name
        result = recover_state(journal_root, checkpoints)
        assert result.orphaned_records == 2


class TestCompaction:
    def build_segmented_journal(self, root, records=40):
        with Journal(root, segment_bytes=256) as journal:
            journal.append(open_record("a"))
            pcs, counts = branch_batches(seed=9, batches=1, batch_size=4)[0]
            for _ in range(records - 1):
                journal.append(observe_record("a", pcs, counts))
        return list_segments(root)

    def test_compacts_only_fully_superseded_segments(self, tmp_path):
        root = tmp_path / "journal"
        segments = self.build_segmented_journal(root)
        assert len(segments) >= 4
        # Everything up to the third segment's first record is covered.
        needed = segment_first_seq(segments[2])
        removed = compact_journal(root, needed)
        remaining = list_segments(root)
        assert removed == 2
        assert remaining[0] == segments[2]
        # The survivors still hold every record >= needed.
        replay = replay_journal(root)
        assert replay.records[0]["seq"] == needed

    def test_never_removes_the_active_segment(self, tmp_path):
        root = tmp_path / "journal"
        segments = self.build_segmented_journal(root)
        removed = compact_journal(
            root, min_needed_seq=10**9, active_path=segments[0]
        )
        assert removed == 0
        assert list_segments(root) == segments

    def test_nothing_needed_keeps_the_newest_segment(self, tmp_path):
        root = tmp_path / "journal"
        segments = self.build_segmented_journal(root)
        removed = compact_journal(root, min_needed_seq=10**9)
        assert removed == len(segments) - 1
        assert list_segments(root) == segments[-1:]

    def test_min_needed_one_removes_nothing(self, tmp_path):
        root = tmp_path / "journal"
        segments = self.build_segmented_journal(root)
        assert compact_journal(root, min_needed_seq=1) == 0
        assert list_segments(root) == segments
