"""The minimal HTTP/1.1 layer: parsing, caps, keep-alive, routing."""

import asyncio
import json
import socket
import threading

import pytest

from repro.obs import (
    HttpError,
    HttpRequest,
    HttpResponse,
    HttpServer,
    StreamingResponse,
    route_pattern_match,
)
from repro.obs.http import MAX_BODY_BYTES, MAX_REQUEST_LINE_BYTES


class TestRoutePatternMatch:
    def test_exact_match_captures_nothing(self):
        assert route_pattern_match("/healthz", "/healthz") == ()
        assert route_pattern_match("/", "/") == ()

    def test_wildcard_segments_capture(self):
        assert route_pattern_match(
            "/v1/sessions/{id}", "/v1/sessions/s1"
        ) == ("s1",)
        assert route_pattern_match(
            "/v1/sessions/{id}/observe-batch",
            "/v1/sessions/web-42/observe-batch",
        ) == ("web-42",)

    def test_mismatches_return_none(self):
        assert route_pattern_match("/v1/sessions/{id}", "/v1/sessions") is None
        assert route_pattern_match("/healthz", "/readyz") is None
        assert route_pattern_match(
            "/v1/sessions/{id}", "/v1/sessions/a/b"
        ) is None

    def test_empty_segment_never_captured(self):
        assert route_pattern_match("/v1/sessions/{id}", "/v1/sessions//") is None


class TestRequestObjects:
    def make(self, body=b""):
        return HttpRequest("POST", "/x", {}, {}, body)

    def test_empty_body_decodes_to_empty_object(self):
        assert self.make(b"").json() == {}

    def test_invalid_json_is_a_400(self):
        with pytest.raises(HttpError) as excinfo:
            self.make(b"{nope").json()
        assert excinfo.value.status == 400

    def test_query_first(self):
        request = HttpRequest("GET", "/x", {"a": ["1", "2"]}, {}, b"")
        assert request.query_first("a") == "1"
        assert request.query_first("missing") is None

    def test_error_response_shape(self):
        response = HttpResponse.error(404, "gone", code="session_not_found")
        payload = json.loads(response.body)
        assert payload == {
            "error": {"message": "gone", "code": "session_not_found"}
        }


class ServerThread:
    """Run an :class:`HttpServer` on its own loop in a daemon thread."""

    def __init__(self, handler):
        self.loop = asyncio.new_event_loop()
        self.server = HttpServer(handler, host="127.0.0.1", port=0)
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()
            self.loop.close()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(5)

    @property
    def port(self):
        return self.server.port

    def stop(self):
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self.loop
        )
        future.result(timeout=5)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=5)


async def echo_handler(request):
    if request.path == "/boom":
        raise RuntimeError("kaboom")
    if request.path == "/typed":
        raise HttpError(409, "already there")
    if request.path == "/stream":
        async def chunks():
            yield b"one\n"
            yield b"two\n"
        return StreamingResponse(chunks(), content_type="text/plain")
    return HttpResponse.json({
        "method": request.method,
        "path": request.path,
        "body": request.body.decode("utf-8", "replace"),
    })


@pytest.fixture(scope="module")
def server():
    thread = ServerThread(echo_handler)
    yield thread
    thread.stop()


def raw_exchange(port, payload, read_all=True):
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    try:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return data
            data += chunk
    finally:
        sock.close()


def parse_response(data):
    head, _, body = data.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


class TestServer:
    def test_get_round_trip(self, server):
        data = raw_exchange(
            server.port, b"GET /hello HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        status, headers, body = parse_response(data)
        assert status == 200
        assert headers["content-type"].startswith("application/json")
        assert json.loads(body)["path"] == "/hello"

    def test_post_body_delivered(self, server):
        body = b'{"k": 1}'
        request = (
            b"POST /in HTTP/1.1\r\nHost: t\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        status, _, response_body = parse_response(
            raw_exchange(server.port, request)
        )
        assert status == 200
        assert json.loads(response_body)["body"] == '{"k": 1}'

    def test_keep_alive_serves_sequential_requests(self, server):
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=10)
        try:
            reader = sock.makefile("rb")
            for path in (b"/one", b"/two"):
                sock.sendall(
                    b"GET " + path + b" HTTP/1.1\r\nHost: t\r\n\r\n"
                )
                status_line = reader.readline()
                assert b"200" in status_line
                length = None
                while True:
                    line = reader.readline()
                    if line in (b"\r\n", b""):
                        break
                    if line.lower().startswith(b"content-length:"):
                        length = int(line.split(b":")[1])
                    if line.lower().startswith(b"connection:"):
                        assert b"keep-alive" in line.lower()
                payload = reader.read(length)
                assert json.loads(payload)["path"] == path.decode()
        finally:
            sock.close()

    def test_connection_close_honored(self, server):
        data = raw_exchange(
            server.port,
            b"GET /x HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        )
        _, headers, _ = parse_response(data)
        assert headers["connection"] == "close"

    def test_unknown_method_is_501(self, server):
        status, _, _ = parse_response(raw_exchange(
            server.port, b"PUT /x HTTP/1.1\r\nHost: t\r\n\r\n"
        ))
        assert status == 501

    def test_malformed_request_line_is_400(self, server):
        status, _, _ = parse_response(
            raw_exchange(server.port, b"NONSENSE\r\n\r\n")
        )
        assert status == 400

    def test_overlong_request_line_is_400(self, server):
        request = (
            b"GET /" + b"a" * (MAX_REQUEST_LINE_BYTES + 10)
            + b" HTTP/1.1\r\n\r\n"
        )
        status, _, _ = parse_response(raw_exchange(server.port, request))
        assert status == 400

    def test_oversized_body_is_413(self, server):
        request = (
            b"POST /x HTTP/1.1\r\nHost: t\r\n"
            + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        )
        status, _, _ = parse_response(raw_exchange(server.port, request))
        assert status == 413

    def test_chunked_request_body_is_501(self, server):
        request = (
            b"POST /x HTTP/1.1\r\nHost: t\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n"
        )
        status, _, _ = parse_response(raw_exchange(server.port, request))
        assert status == 501

    def test_handler_exception_is_opaque_500(self, server):
        status, _, body = parse_response(raw_exchange(
            server.port, b"GET /boom HTTP/1.1\r\nHost: t\r\n\r\n"
        ))
        assert status == 500
        assert "kaboom" in json.loads(body)["error"]["message"]

    def test_http_error_keeps_status(self, server):
        status, _, body = parse_response(raw_exchange(
            server.port, b"GET /typed HTTP/1.1\r\nHost: t\r\n\r\n"
        ))
        assert status == 409
        assert json.loads(body)["error"]["message"] == "already there"

    def test_head_sends_headers_only(self, server):
        data = raw_exchange(
            server.port, b"HEAD /x HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        status, headers, body = parse_response(data)
        assert status == 200
        assert int(headers["content-length"]) > 0
        assert body == b""

    def test_streaming_response_closes_connection(self, server):
        data = raw_exchange(
            server.port, b"GET /stream HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        status, headers, body = parse_response(data)
        assert status == 200
        assert headers["connection"] == "close"
        assert "content-length" not in headers
        assert body == b"one\ntwo\n"
