"""The HTTP operations gateway, end to end against a live service.

The load-bearing guarantee: the HTTP session routes run the *same*
``PhaseService._execute`` path as the NDJSON-over-TCP protocol, so the
interval reports that come back over HTTP are byte-for-byte the ones
the TCP client would have received for the same stream.
"""

import json
import socket
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.service import PhaseServiceClient, start_in_thread
from repro.telemetry import parse_prometheus_text

BASE_A, BASE_B = 0x400000, 0x900000
INTERVAL = 3_000


def branch_batches(seed, batches, batch_size=300):
    rng = np.random.default_rng(seed)
    out = []
    for index in range(batches):
        base = BASE_A if (index // 4) % 2 == 0 else BASE_B
        pcs = (base + rng.integers(0, 48, size=batch_size) * 4).tolist()
        counts = rng.integers(10, 60, size=batch_size).tolist()
        out.append((pcs, counts))
    return out


def call(base, method, path, body=None):
    """One JSON request; returns ``(status, decoded_body)`` for both
    success and error statuses."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture()
def service():
    handle = start_in_thread(max_sessions=8, pool_slots=8, http_port=0)
    yield handle
    handle.stop()


@pytest.fixture()
def base(service):
    return f"http://{service.service.http_host}:{service.service.http_port}"


class TestProbesAndMetadata:
    def test_healthz_shape(self, base):
        status, health = call(base, "GET", "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["draining"] is False
        assert health["sessions"] == 0
        assert health["uptime_seconds"] >= 0
        assert isinstance(health["pid"], int)
        from repro import __version__

        assert health["version"] == __version__

    def test_readyz_while_live(self, base):
        status, body = call(base, "GET", "/readyz")
        assert status == 200 and body == {"ready": True}

    def test_dashboard_served_at_root(self, base):
        with urllib.request.urlopen(base + "/", timeout=10) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/html")
            page = response.read().decode()
        assert "/v1/diagnostics" in page and "/v1/events" in page

    def test_unknown_route_is_404(self, base):
        status, body = call(base, "GET", "/nope")
        assert status == 404
        assert "no route" in body["error"]["message"]

    def test_wrong_method_is_405(self, base):
        status, _ = call(base, "DELETE", "/healthz")
        assert status == 405


class TestSessionRoutes:
    def test_http_reports_match_ndjson_byte_for_byte(self, service, base):
        """The acceptance test: one stream pushed through both fronts
        of the same service must yield identical report payloads."""
        batches = branch_batches(seed=7, batches=10)

        _, opened = call(base, "POST", "/v1/sessions", {
            "session": "via-http", "interval_instructions": INTERVAL,
        })
        assert opened["session"] == "via-http"
        http_reports = []
        for pcs, counts in batches:
            status, result = call(
                base, "POST", "/v1/sessions/via-http/observe-batch",
                {"pcs": pcs, "counts": counts, "cpi": 1.1},
            )
            assert status == 200
            http_reports.extend(result["reports"])

        with PhaseServiceClient(port=service.port) as client:
            client.open_session(
                session="via-tcp", interval_instructions=INTERVAL
            )
            tcp_reports = []
            for pcs, counts in batches:
                tcp_reports.extend(
                    client.observe("via-tcp", pcs, counts, cpi=1.1)
                )

        assert len(http_reports) > 0
        assert json.dumps(http_reports, sort_keys=True) == (
            json.dumps(tcp_reports, sort_keys=True)
        )

    def test_crud_cycle(self, base):
        status, opened = call(base, "POST", "/v1/sessions", {
            "session": "s1", "interval_instructions": INTERVAL,
        })
        assert status == 201

        status, listing = call(base, "GET", "/v1/sessions")
        assert status == 200
        assert [s["session"] for s in listing["sessions"]] == ["s1"]

        status, info = call(base, "GET", "/v1/sessions/s1")
        assert status == 200
        assert info["session"] == "s1"

        status, snapshot = call(base, "GET", "/v1/sessions/s1/snapshot")
        assert status == 200
        assert "snapshot" in snapshot

        status, closed = call(base, "DELETE", "/v1/sessions/s1")
        assert status == 200
        assert closed["session"] == "s1"

        status, listing = call(base, "GET", "/v1/sessions")
        assert listing["sessions"] == []

    def test_snapshot_round_trips_into_new_session(self, base):
        call(base, "POST", "/v1/sessions", {
            "session": "orig", "interval_instructions": INTERVAL,
        })
        for pcs, counts in branch_batches(seed=3, batches=4):
            call(base, "POST", "/v1/sessions/orig/observe-batch",
                 {"pcs": pcs, "counts": counts})
        _, snapshot = call(base, "GET", "/v1/sessions/orig/snapshot")
        status, reopened = call(base, "POST", "/v1/sessions", {
            "session": "clone", "snapshot": snapshot["snapshot"],
        })
        assert status == 201
        _, a = call(base, "GET", "/v1/sessions/orig")
        _, b = call(base, "GET", "/v1/sessions/clone")
        assert a["current_phase"] == b["current_phase"]
        assert a["predicted_next_phase"] == b["predicted_next_phase"]
        assert a["intervals"] == b["intervals"]

    def test_error_status_mapping(self, base):
        status, body = call(base, "GET", "/v1/sessions/ghost")
        assert status == 404
        assert body["error"]["message"]

        call(base, "POST", "/v1/sessions", {"session": "dup"})
        status, _ = call(base, "POST", "/v1/sessions", {"session": "dup"})
        assert status == 409

    def test_body_validation_is_400(self, base):
        call(base, "POST", "/v1/sessions", {"session": "v"})
        for bad in (
            {"pcs": [1], "counts": [1, 2]},           # length mismatch
            {"pcs": "nope", "counts": [1]},           # not a list
            {"pcs": [1.5], "counts": [1]},            # non-int entries
            {"pcs": [True], "counts": [1]},           # bools are not ints
            {"pcs": [1], "counts": [1], "cpi": "x"},  # non-numeric cpi
        ):
            status, body = call(
                base, "POST", "/v1/sessions/v/observe-batch", bad
            )
            assert status == 400, bad
            assert body["error"]["message"]
        status, _ = call(base, "POST", "/v1/sessions", {"session": 7})
        assert status == 400


class TestMetrics:
    def test_metrics_round_trip_with_request_counters(self, base):
        call(base, "GET", "/healthz")
        call(base, "POST", "/v1/sessions", {"session": "m"})
        for pcs, counts in branch_batches(seed=5, batches=2):
            call(base, "POST", "/v1/sessions/m/observe-batch",
                 {"pcs": pcs, "counts": counts})

        with urllib.request.urlopen(base + "/metrics", timeout=10) as resp:
            assert resp.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            text = resp.read().decode()
        samples = parse_prometheus_text(text)

        assert samples[
            'repro_http_requests_total{method="GET",route="/healthz"}'
        ] >= 1
        assert samples[
            'repro_http_requests_total'
            '{method="POST",route="/v1/sessions/{id}/observe-batch"}'
        ] == 2
        assert samples[
            'repro_http_request_seconds_count{route="/healthz"}'
        ] >= 1
        assert samples["repro_service_uptime_seconds"] > 0
        assert samples["repro_http_in_flight"] >= 1  # the scrape itself
        info_keys = [k for k in samples if k.startswith("repro_service_info")]
        assert len(info_keys) == 1 and samples[info_keys[0]] == 1
        assert 'version="' in info_keys[0] and 'pid="' in info_keys[0]
        assert samples["repro_pool_capacity"] > 0

    def test_every_line_of_live_output_parses(self, base):
        call(base, "POST", "/v1/sessions", {"session": "p"})
        with urllib.request.urlopen(base + "/metrics", timeout=10) as resp:
            text = resp.read().decode()
        sample_lines = [
            line for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert len(parse_prometheus_text(text)) == len(sample_lines)


class TestDiagnostics:
    def test_shape_reflects_live_state(self, base):
        call(base, "POST", "/v1/sessions",
             {"session": "d", "interval_instructions": INTERVAL})
        for pcs, counts in branch_batches(seed=9, batches=8):
            call(base, "POST", "/v1/sessions/d/observe-batch",
                 {"pcs": pcs, "counts": counts})
        status, diag = call(base, "GET", "/v1/diagnostics")
        assert status == 200
        assert diag["draining"] is False
        assert diag["uptime_seconds"] > 0
        assert sum(diag["phase_occupancy"].values()) == 1
        prediction = diag["prediction"]
        assert prediction["scored"] >= 0
        assert set(prediction) >= {
            "scored", "correct", "accuracy",
            "confident_scored", "confident_correct", "confident_accuracy",
        }
        assert diag["pool"]["active_slots"] == 1
        assert 0 < diag["pool"]["utilization"] <= 1
        assert diag["ingest_queue_depth"] >= 0
        assert diag["registry"]["live"] == 1


class TestEventsStream:
    def read_sse_events(self, host, port, limit, path="/v1/events",
                        timeout=10.0):
        sock = socket.create_connection((host, port), timeout=timeout)
        events = []
        try:
            sock.sendall(
                f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode()
            )
            buffer = b""
            deadline = time.time() + timeout
            while len(events) < limit and time.time() < deadline:
                try:
                    chunk = sock.recv(4096)
                except socket.timeout:
                    break
                if not chunk:
                    break
                buffer += chunk
                while b"\n\n" in buffer and len(events) < limit:
                    frame, buffer = buffer.split(b"\n\n", 1)
                    name, data = None, None
                    for line in frame.splitlines():
                        if line.startswith(b"event: "):
                            name = line[7:].decode()
                        elif line.startswith(b"data: "):
                            data = json.loads(line[6:])
                    if data is not None:
                        events.append((name, data))
        finally:
            sock.close()
        return events

    def test_subscriber_receives_interval_events(self, service, base):
        import threading

        call(base, "POST", "/v1/sessions",
             {"session": "sse", "interval_instructions": INTERVAL})
        host = service.service.http_host
        port = service.service.http_port

        def feed():
            for pcs, counts in branch_batches(seed=2, batches=6):
                call(base, "POST", "/v1/sessions/sse/observe-batch",
                     {"pcs": pcs, "counts": counts})
                time.sleep(0.05)

        feeder = threading.Thread(target=feed, daemon=True)
        feeder.start()
        events = self.read_sse_events(
            host, port, limit=3, path="/v1/events?types=interval"
        )
        feeder.join()
        assert len(events) == 3
        for name, data in events:
            assert name == "interval"
            assert data["session"] == "sse"
            assert "phase_id" in data and "interval_index" in data
            assert "seq" in data and "ts" in data

    def test_type_filter_excludes_other_events(self, service, base):
        # Opening sessions emits session_open events; an interval-only
        # subscriber must never see them.
        import threading

        host = service.service.http_host
        port = service.service.http_port
        collected = []

        def subscribe():
            collected.extend(self.read_sse_events(
                host, port, limit=1,
                path="/v1/events?types=interval", timeout=4.0,
            ))

        subscriber = threading.Thread(target=subscribe, daemon=True)
        subscriber.start()
        time.sleep(0.3)
        call(base, "POST", "/v1/sessions", {"session": "noise"})
        call(base, "DELETE", "/v1/sessions/noise")
        subscriber.join()
        assert collected == []

    def test_subscriber_gauge_returns_to_zero_after_disconnect(
        self, service, base
    ):
        self.read_sse_events(
            service.service.http_host, service.service.http_port,
            limit=1, timeout=1.0,
        )
        deadline = time.time() + 5
        while time.time() < deadline:
            with urllib.request.urlopen(base + "/metrics", timeout=10) as r:
                samples = parse_prometheus_text(r.read().decode())
            if samples.get("repro_http_sse_subscribers") == 0:
                return
            time.sleep(0.1)
        pytest.fail("SSE subscriber gauge never returned to zero")


class TestDrain:
    def test_drain_flips_readyz_and_refuses_mutations(self):
        handle = start_in_thread(max_sessions=4, http_port=0)
        try:
            base = (
                f"http://{handle.service.http_host}"
                f":{handle.service.http_port}"
            )
            status, body = call(base, "POST", "/v1/drain", {"grace": 5.0})
            assert status == 200 and body["draining"] is True

            status, body = call(base, "GET", "/readyz")
            assert status == 503
            assert body == {"ready": False, "reason": "draining"}

            # Liveness stays green; mutating routes get a typed refusal.
            status, health = call(base, "GET", "/healthz")
            assert status == 200 and health["draining"] is True
            status, body = call(base, "POST", "/v1/sessions",
                                {"session": "late"})
            assert status == 503
            assert body["error"]["code"] == "shutting_down"
        finally:
            handle.stop()


class TestCoalescedObserve:
    """The observe-batch route joins the service's coalescing rounds:
    reports must match a non-coalesced gateway run exactly."""

    def run_gateway(self, coalesce):
        handle = start_in_thread(
            max_sessions=8, pool_slots=8, http_port=0,
            coalesce=coalesce,
        )
        base = (
            f"http://{handle.service.http_host}:"
            f"{handle.service.http_port}"
        )
        reports = []
        try:
            call(base, "POST", "/v1/sessions", {
                "session": "co", "interval_instructions": INTERVAL,
            })
            for pcs, counts in branch_batches(seed=11, batches=8):
                status, result = call(
                    base, "POST", "/v1/sessions/co/observe-batch",
                    {"pcs": pcs, "counts": counts, "cpi": 1.2},
                )
                assert status == 200
                reports += result["reports"]
            status, diagnostics = call(base, "GET", "/v1/diagnostics")
        finally:
            handle.stop()
        return reports, diagnostics

    def test_reports_match_uncoalesced_gateway(self):
        coalesced, diagnostics = self.run_gateway(coalesce=True)
        reference, _ = self.run_gateway(coalesce=False)
        assert coalesced == reference
        assert len(coalesced) > 0
        assert diagnostics["coalesce"]["requests"] == 8
        assert diagnostics["coalesce"]["rounds"] >= 1

    def test_observe_errors_still_map_to_http_status(self):
        handle = start_in_thread(
            max_sessions=4, pool_slots=4, http_port=0, coalesce=True,
        )
        base = (
            f"http://{handle.service.http_host}:"
            f"{handle.service.http_port}"
        )
        try:
            status, body = call(
                base, "POST", "/v1/sessions/ghost/observe-batch",
                {"pcs": [0x400], "counts": [1], "cpi": 1.0},
            )
        finally:
            handle.stop()
        assert status == 404
        assert "ghost" in body["error"]["message"]
