"""The repro.api stable facade: the promised names, nothing missing."""

import repro.api as api


def test_all_names_resolve():
    for name in api.__all__:
        assert getattr(api, name) is not None


def test_facade_exports_the_promised_surface():
    assert set(api.__all__) == {
        "ClassifierConfig",
        "HttpGateway",
        "PhaseServiceClient",
        "PhaseTracker",
        "TrackerPool",
        "TrackerReport",
    }


def test_facade_names_are_the_canonical_classes():
    from repro.core import ClassifierConfig, PhaseTracker, TrackerPool
    from repro.core.online import TrackerReport
    from repro.obs import HttpGateway
    from repro.service.client import PhaseServiceClient

    assert api.ClassifierConfig is ClassifierConfig
    assert api.PhaseTracker is PhaseTracker
    assert api.TrackerPool is TrackerPool
    assert api.TrackerReport is TrackerReport
    assert api.PhaseServiceClient is PhaseServiceClient
    assert api.HttpGateway is HttpGateway
