"""Property-based tests for the simulator substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.branch import BimodalPredictor, GSharePredictor
from repro.simulator.cache import Cache, CacheConfig
from repro.simulator.core_model import CoreModel, EventRates
from repro.simulator.tlb import TLB, TLBConfig

addresses = st.lists(st.integers(0, 2**30), min_size=1, max_size=300)


class TestCacheProperties:
    @given(addresses)
    @settings(max_examples=50)
    def test_hits_plus_misses_equals_accesses(self, stream):
        cache = Cache(CacheConfig(1024, 2, 32))
        for address in stream:
            cache.access(address)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses == len(stream)

    @given(addresses)
    @settings(max_examples=50)
    def test_immediate_repeat_always_hits(self, stream):
        cache = Cache(CacheConfig(1024, 2, 32))
        for address in stream:
            cache.access(address)
            assert cache.access(address) is True

    @given(addresses)
    @settings(max_examples=50)
    def test_resident_blocks_bounded_by_capacity(self, stream):
        config = CacheConfig(512, 2, 32)
        cache = Cache(config)
        for address in stream:
            cache.access(address)
        assert cache.resident_blocks <= (
            config.num_sets * config.assoc
        )

    @given(addresses)
    @settings(max_examples=30)
    def test_bigger_cache_never_misses_more(self, stream):
        small = Cache(CacheConfig(512, 2, 32))
        # Same sets*2 ways: strictly more capacity, LRU inclusion holds
        # per set for associativity increase.
        big = Cache(CacheConfig(1024, 4, 32))
        small_misses = small.access_many(stream)
        big_misses = big.access_many(stream)
        assert big_misses <= small_misses


class TestTLBProperties:
    @given(addresses)
    @settings(max_examples=50)
    def test_resident_bounded(self, stream):
        tlb = TLB(TLBConfig(entries=8))
        for address in stream:
            tlb.access(address)
        assert tlb.resident_pages <= 8
        assert tlb.misses <= tlb.accesses


class TestBranchProperties:
    @given(st.lists(st.tuples(st.integers(0, 2**20), st.booleans()),
                    min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_mispredictions_bounded(self, events):
        for predictor in (BimodalPredictor(64), GSharePredictor(4, 64)):
            for pc, taken in events:
                predictor.predict_and_update(pc, taken)
            assert 0 <= predictor.mispredictions <= predictor.predictions

    @given(st.booleans().flatmap(
        lambda bias: st.lists(st.just(bias), min_size=50, max_size=50)
    ))
    def test_constant_branch_learned_perfectly(self, outcomes):
        predictor = BimodalPredictor()
        for taken in outcomes:
            predictor.predict_and_update(0x40, taken)
        # After warmup (2 updates) everything is predicted correctly.
        assert predictor.mispredictions <= 2


class TestCoreModelProperties:
    rates_strategy = st.builds(
        EventRates,
        base_ipc=st.floats(0.5, 4.0),
        branch_rate=st.floats(0.0, 0.3),
        branch_mispredict_rate=st.just(0.0),
        il1_miss_rate=st.floats(0.0, 0.2),
        dl1_miss_rate=st.floats(0.0, 0.2),
        l2_miss_rate=st.floats(0.0, 0.2),
        tlb_miss_rate=st.floats(0.0, 0.1),
    )

    @given(rates_strategy)
    def test_cpi_positive_and_finite(self, rates):
        cpi = CoreModel().cpi(rates)
        assert np.isfinite(cpi)
        assert cpi >= 0.25  # cannot beat the 4-wide issue limit

    @given(rates_strategy, st.floats(0.0, 3.0))
    def test_scaling_misses_never_reduces_cpi(self, rates, factor):
        model = CoreModel()
        base = model.cpi(rates.scaled(1.0))
        scaled = model.cpi(rates.scaled(1.0 + factor))
        assert scaled >= base - 1e-9

    @given(rates_strategy, rates_strategy)
    def test_blend_endpoints_exact(self, a, b):
        model = CoreModel()
        assert model.cpi(EventRates.blend(a, b, 0.0)) == pytest.approx(
            model.cpi(a)
        )
        assert model.cpi(EventRates.blend(a, b, 1.0)) == pytest.approx(
            model.cpi(b)
        )

    @given(rates_strategy, rates_strategy, st.floats(0.0, 1.0))
    def test_blend_bounded_by_sum(self, a, b, weight):
        """Every CPI term of a blend lies between the endpoints' terms,
        so the blended total cannot exceed their sum (the totals
        themselves do not bound it: the per-term maxima may come from
        different endpoints)."""
        model = CoreModel()
        blended = model.cpi(EventRates.blend(a, b, weight))
        assert 0.0 < blended <= model.cpi(a) + model.cpi(b) + 1e-9
