"""Property-based tests for the workload substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.runs import extract_runs
from repro.workloads import address_stream
from repro.workloads.basic_block import CodeRegion
from repro.workloads.phase_script import (
    PhaseScript,
    Segment,
    hierarchical_pattern,
    irregular_pattern,
    stable_pattern,
)

seeds = st.integers(0, 2**31 - 1)


class TestAddressStreamProperties:
    @given(seeds, st.sampled_from(address_stream.PATTERNS),
           st.integers(1, 500), st.sampled_from([4096, 65536, 1 << 20]))
    @settings(max_examples=40)
    def test_streams_in_bounds(self, seed, pattern, count, working_set):
        rng = np.random.default_rng(seed)
        stream = address_stream.generate(
            pattern, rng, count, base=0x1000, working_set_bytes=working_set
        )
        assert stream.shape == (count,)
        assert stream.min() >= 0x1000
        assert stream.max() < 0x1000 + working_set


class TestPhaseScriptProperties:
    @given(seeds, st.integers(1, 8), st.integers(30, 500))
    @settings(max_examples=40)
    def test_patterns_cover_exact_total(self, seed, regions, total):
        rng = np.random.default_rng(seed)
        for build in (stable_pattern, hierarchical_pattern,
                      irregular_pattern):
            script = build(np.random.default_rng(seed), regions, total)
            assert script.total_intervals == total
            assert all(s.length >= 1 for s in script.segments)
            assert max(script.regions_used()) < regions

    @given(st.lists(
        st.tuples(st.integers(0, 3), st.integers(1, 9)),
        min_size=1, max_size=40,
    ))
    def test_coalesce_preserves_total(self, raw):
        script = PhaseScript([Segment(r, l) for r, l in raw])
        merged = script.coalesced()
        assert merged.total_intervals == script.total_intervals
        regions = [s.region for s in merged.segments]
        assert all(a != b for a, b in zip(regions, regions[1:]))


class TestRegionSamplingProperties:
    @given(seeds, st.integers(2, 24), st.integers(1_000, 2_000_000))
    @settings(max_examples=30, deadline=None)
    def test_interval_instruction_conservation(self, seed, blocks,
                                               instructions):
        rng = np.random.default_rng(seed)
        region = CodeRegion("p", rng, num_blocks=blocks, code_bytes=8192)
        pcs, counts, _ = region.sample_interval_records(rng, instructions)
        assert counts.sum() == instructions
        assert (counts >= 0).all()
        assert len(set(pcs.tolist())) == len(pcs)  # aggregated per block


class TestRunExtractionRoundTrip:
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=300))
    def test_runs_reconstruct_stream(self, stream):
        runs = extract_runs(stream)
        rebuilt = []
        for run in runs:
            rebuilt.extend([run.phase_id] * run.length)
        assert rebuilt == stream
