"""Property-based tests for the offline (SimPoint) machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.offline.bic import bic_score, pick_k_by_bic
from repro.offline.bbv import random_projection
from repro.offline.kmeans import kmeans

datasets = st.integers(0, 2**31 - 1).flatmap(
    lambda seed: st.tuples(
        st.just(seed), st.integers(5, 40), st.integers(2, 6)
    )
)


def make_data(seed, points, dims):
    return np.random.default_rng(seed).normal(size=(points, dims))


class TestKMeansProperties:
    @given(datasets, st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_invariants(self, dataset, k):
        seed, points, dims = dataset
        data = make_data(seed, points, dims)
        k = min(k, points)
        result = kmeans(data, k, seed=seed % 1000, restarts=2)
        assert result.labels.shape == (points,)
        assert result.centroids.shape == (k, dims)
        assert result.inertia >= 0.0
        assert result.cluster_sizes().sum() == points

    @given(datasets)
    @settings(max_examples=20, deadline=None)
    def test_inertia_nonincreasing_in_k(self, dataset):
        seed, points, dims = dataset
        data = make_data(seed, points, dims)
        ks = [1, min(3, points), min(5, points)]
        inertias = [
            kmeans(data, k, seed=1, restarts=3).inertia for k in ks
        ]
        for a, b in zip(inertias, inertias[1:]):
            assert b <= a + 1e-6

    @given(datasets)
    @settings(max_examples=20, deadline=None)
    def test_centroids_within_data_hull_box(self, dataset):
        seed, points, dims = dataset
        data = make_data(seed, points, dims)
        result = kmeans(data, min(3, points), seed=2)
        assert (result.centroids >= data.min(axis=0) - 1e-9).all()
        assert (result.centroids <= data.max(axis=0) + 1e-9).all()


class TestProjectionProperties:
    @given(datasets, st.integers(1, 10))
    @settings(max_examples=25, deadline=None)
    def test_projection_shape_and_determinism(self, dataset, target):
        seed, points, dims = dataset
        data = make_data(seed, points, dims)
        out = random_projection(data, dimensions=target, seed=5)
        expected = min(target, dims) if target < dims else dims
        assert out.shape[0] == points
        if target < dims:
            assert out.shape[1] == target
        assert np.allclose(
            out, random_projection(data, dimensions=target, seed=5)
        )


class TestBICProperties:
    @given(datasets)
    @settings(max_examples=20, deadline=None)
    def test_bic_finite_when_enough_points(self, dataset):
        seed, points, dims = dataset
        data = make_data(seed, points, dims)
        k = min(2, points - 1)
        if k < 1:
            return
        clustering = kmeans(data, k, seed=3)
        assert np.isfinite(bic_score(data, clustering))

    @given(st.lists(st.floats(-1e6, 0.0), min_size=1, max_size=10))
    def test_pick_k_returns_valid_k(self, scores):
        ks = list(range(1, len(scores) + 1))
        chosen = pick_k_by_bic(scores, ks, threshold=0.9)
        assert chosen in ks
