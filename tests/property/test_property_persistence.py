"""Property: a checkpoint plus journal-tail replay reconstructs a
tracker byte-identical to one that was never evicted or crashed, for
arbitrary classifier configurations, branch streams, checkpoint
positions, and batch boundaries (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ClassifierConfig, PhaseTracker
from repro.persistence import CheckpointStore, Journal, recover_state
from repro.service.snapshot import dumps, snapshot_tracker

INTERVAL_INSTRUCTIONS = 1_500
BRANCHES = 1_200

configs = st.builds(
    ClassifierConfig,
    num_counters=st.sampled_from([8, 16, 32]),
    bits_per_counter=st.sampled_from([4, 6]),
    table_entries=st.sampled_from([None, 4, 32]),
    similarity_threshold=st.sampled_from([0.0625, 0.125, 0.25]),
    min_count_threshold=st.integers(min_value=0, max_value=8),
    match_policy=st.sampled_from(["first", "most_similar"]),
    bit_selector=st.sampled_from(["static", "dynamic"]),
    perf_dev_threshold=st.sampled_from([None, 0.25, 0.5]),
)


def branch_stream(seed):
    rng = np.random.default_rng(seed)
    region = np.where(rng.random(BRANCHES) < 0.5, 0x400000, 0x900000)
    pcs = (region + rng.integers(0, 48, size=BRANCHES) * 4).tolist()
    counts = rng.integers(1, 90, size=BRANCHES).tolist()
    return pcs, counts


def batched(pcs, counts, batch_size):
    for start in range(0, len(pcs), batch_size):
        yield pcs[start:start + batch_size], counts[start:start + batch_size]


@given(
    config=configs,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    batch_size=st.sampled_from([37, 100, 256]),
    checkpoint_fraction=st.floats(min_value=0.0, max_value=1.0),
    cpi=st.sampled_from([1.0, 1.3]),
)
@settings(max_examples=20, deadline=None)
def test_checkpoint_plus_tail_replay_is_byte_identical(
    tmp_path_factory, config, seed, batch_size, checkpoint_fraction, cpi
):
    """Drive one tracker while journaling every batch (the server's
    write-ahead discipline), checkpoint at an arbitrary point, then
    recover from disk alone and compare full snapshots."""
    root = tmp_path_factory.mktemp("persist")
    pcs, counts = branch_stream(seed)
    batches = list(batched(pcs, counts, batch_size))
    checkpoint_after = int(len(batches) * checkpoint_fraction)

    checkpoints = CheckpointStore(root / "checkpoints")
    reference = PhaseTracker(
        config, interval_instructions=INTERVAL_INSTRUCTIONS
    )
    config_overrides = {
        "num_counters": config.num_counters,
        "bits_per_counter": config.bits_per_counter,
        "table_entries": config.table_entries,
        "similarity_threshold": config.similarity_threshold,
        "min_count_threshold": config.min_count_threshold,
        "match_policy": config.match_policy,
        "bit_selector": config.bit_selector,
        "perf_dev_threshold": config.perf_dev_threshold,
    }
    with Journal(root / "journal") as journal:
        journal.append({
            "kind": "open", "session": "s",
            "config": config_overrides,
            "interval_instructions": INTERVAL_INSTRUCTIONS,
            "snapshot": None,
        })
        for index, (batch_pcs, batch_counts) in enumerate(batches):
            reference.observe_batch(batch_pcs, batch_counts, cpi=cpi)
            seq = journal.append({
                "kind": "observe", "session": "s",
                "pcs": batch_pcs, "counts": batch_counts, "cpi": cpi,
            })
            if index + 1 == checkpoint_after:
                checkpoints.write("s", {
                    "seq": seq,
                    "snapshot": snapshot_tracker(reference),
                    "meta": {},
                })

    result = recover_state(root / "journal", checkpoints)
    assert result.damaged_sessions == 0
    assert result.orphaned_records == 0
    if checkpoint_after == len(batches) and checkpoint_after > 0:
        # Checkpoint covers everything: the session stays cold and its
        # checkpoint alone must reproduce the reference.
        assert list(result.cold) == ["s"]
        from repro.service.snapshot import restore_tracker

        recovered = restore_tracker(checkpoints.load("s")["snapshot"])
    else:
        assert list(result.live) == ["s"]
        recovered = result.live["s"].tracker

    assert dumps(snapshot_tracker(recovered)) == dumps(
        snapshot_tracker(reference)
    )


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    cut_bytes=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=15, deadline=None)
def test_torn_tail_recovers_a_valid_prefix(
    tmp_path_factory, seed, cut_bytes
):
    """Chopping an arbitrary number of bytes off the journal tail —
    any crash point — always yields a tracker identical to one driven
    with some prefix of the batches."""
    root = tmp_path_factory.mktemp("torn")
    pcs, counts = branch_stream(seed)
    batches = list(batched(pcs, counts, 150))

    with Journal(root / "journal") as journal:
        journal.append({
            "kind": "open", "session": "s", "config": None,
            "interval_instructions": INTERVAL_INSTRUCTIONS,
            "snapshot": None,
        })
        for batch_pcs, batch_counts in batches:
            journal.append({
                "kind": "observe", "session": "s",
                "pcs": batch_pcs, "counts": batch_counts, "cpi": 1.0,
            })
    from repro.persistence import list_segments

    segment = list_segments(root / "journal")[-1]
    with open(segment, "rb+") as handle:
        handle.truncate(max(0, segment.stat().st_size - cut_bytes))

    checkpoints = CheckpointStore(root / "checkpoints")
    result = recover_state(root / "journal", checkpoints)
    assert result.damaged_sessions == 0
    surviving = result.replayed_records - (1 if result.live else 0)

    prefix = PhaseTracker(interval_instructions=INTERVAL_INSTRUCTIONS)
    for batch_pcs, batch_counts in batches[:surviving]:
        prefix.observe_batch(batch_pcs, batch_counts, cpi=1.0)
    if result.live:
        assert dumps(snapshot_tracker(result.live["s"].tracker)) == dumps(
            snapshot_tracker(prefix)
        )
    else:
        # Even the open record was torn off: nothing to recover is a
        # valid (empty) prefix.
        assert surviving <= 0
