"""Property-based tests for predictors (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prediction.assoc_table import AssociativeTable
from repro.prediction.change_eval import evaluate_change_predictor
from repro.prediction.composite import CompositePhasePredictor
from repro.prediction.counters import ConfidenceCounter, SaturatingCounter
from repro.prediction.last_value import LastValuePredictor
from repro.prediction.length import PhaseLengthPredictor, length_class
from repro.prediction.markov import MarkovChangePredictor
from repro.prediction.perfect import PerfectMarkovPredictor
from repro.prediction.rle import RLEChangePredictor

phase_streams = st.lists(st.integers(0, 6), min_size=2, max_size=300)


class TestCounterProperties:
    @given(st.integers(1, 8), st.lists(st.booleans(), max_size=200))
    def test_counter_always_in_range(self, bits, updates):
        counter = SaturatingCounter(bits=bits)
        for up in updates:
            counter.up() if up else counter.down()
            assert 0 <= counter.value <= counter.max_value

    @given(st.lists(st.booleans(), min_size=1, max_size=100))
    def test_confidence_monotone_in_correctness(self, outcomes):
        """All-correct training is never less confident than the mixed
        stream of the same length."""
        mixed = ConfidenceCounter(bits=3)
        perfect = ConfidenceCounter(bits=3)
        for outcome in outcomes:
            mixed.record(outcome)
            perfect.record(True)
        assert perfect.value >= mixed.value


class TestAssociativeTableProperties:
    @given(
        st.lists(st.tuples(st.integers(0, 50), st.integers()), max_size=200),
        st.sampled_from([(8, 2), (32, 4), (16, 16)]),
    )
    def test_capacity_never_exceeded(self, operations, geometry):
        entries, assoc = geometry
        table = AssociativeTable(entries=entries, assoc=assoc)
        for key, payload in operations:
            table.insert(key, payload)
            assert len(table) <= entries

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=100))
    def test_last_insert_always_findable(self, keys):
        table = AssociativeTable(entries=8, assoc=2)
        for key in keys:
            table.insert(key, key * 2)
            assert table.lookup(key) == key * 2


class TestPredictorStreamProperties:
    @given(phase_streams)
    @settings(max_examples=50)
    def test_composite_accounts_every_interval(self, stream):
        stats = CompositePhasePredictor(
            RLEChangePredictor(2)
        ).run(stream)
        assert stats.total == len(stream) - 1
        assert sum(stats.counts.values()) == stats.total

    @given(phase_streams)
    @settings(max_examples=50)
    def test_change_eval_counts_every_change(self, stream):
        changes = sum(
            1 for a, b in zip(stream, stream[1:]) if a != b
        )
        stats = evaluate_change_predictor(
            stream, MarkovChangePredictor(1)
        )
        assert stats.total_changes == changes

    @given(phase_streams)
    @settings(max_examples=50)
    def test_perfect_markov_never_below_real(self, stream):
        oracle = evaluate_change_predictor(
            list(stream), PerfectMarkovPredictor(1)
        )
        real = evaluate_change_predictor(
            list(stream), MarkovChangePredictor(1, use_confidence=False)
        )
        assert oracle.accuracy >= real.accuracy - 1e-9

    @given(phase_streams)
    @settings(max_examples=50)
    def test_last_value_accuracy_equals_stability(self, stream):
        predictor = LastValuePredictor()
        for phase in stream:
            predictor.observe(phase)
        same = sum(1 for a, b in zip(stream, stream[1:]) if a == b)
        assert predictor.correct == same

    @given(phase_streams)
    @settings(max_examples=50)
    def test_history_bounded(self, stream):
        predictor = RLEChangePredictor(2)
        for phase in stream:
            predictor.observe(phase)
        assert len(predictor.completed_runs) <= predictor.history_depth


class TestLengthProperties:
    @given(st.integers(1, 10**9))
    def test_length_class_total_and_ordered(self, length):
        cls = length_class(length)
        assert 0 <= cls <= 3
        if length < 16:
            assert cls == 0
        if length >= 1024:
            assert cls == 3

    @given(phase_streams)
    @settings(max_examples=50)
    def test_length_predictor_never_crashes_and_counts(self, stream):
        predictor = PhaseLengthPredictor()
        for phase in stream:
            predictor.observe(phase)
        stats = predictor.stats
        assert stats.correct + stats.tag_misses <= (
            stats.predictions + stats.correct
        )
        assert 0.0 <= stats.misprediction_rate <= 1.0


class TestTimelineAndProfileProperties:
    @given(phase_streams)
    @settings(max_examples=40)
    def test_timeline_covers_every_interval(self, stream):
        from repro.analysis.timeline import phase_glyphs, render_timeline

        mapping = phase_glyphs(stream)
        rendered = render_timeline(stream, width=32, legend=False)
        glyph_count = sum(
            len(line.split(" ", 1)[1]) for line in rendered.splitlines()
        )
        assert glyph_count == len(stream)
        # Every phase has a glyph and transition maps to '.'.
        assert set(mapping) >= set(stream)
        if 0 in mapping:
            assert mapping[0] == "."

    @given(phase_streams)
    @settings(max_examples=40)
    def test_profiles_partition_the_trace(self, stream):
        import numpy as np

        from repro.analysis.profile import profile_phases
        from repro.core.events import (
            ClassificationResult,
            ClassificationRun,
        )
        from repro.workloads.trace import Interval, IntervalTrace

        run = ClassificationRun(
            results=[
                ClassificationResult(phase_id=i, matched=True,
                                     distance=0.0)
                for i in stream
            ],
            num_phases=len({i for i in stream if i != 0}),
            evictions=0,
        )
        trace = IntervalTrace(
            "p",
            [
                Interval(np.array([4]), np.array([100]), cpi=1.0)
                for _ in stream
            ],
        )
        profiles = profile_phases(run, trace)
        assert sum(p.intervals for p in profiles.values()) == len(stream)
        total_occupancy = sum(p.occupancy for p in profiles.values())
        assert total_occupancy == pytest.approx(1.0)
        total_runs = sum(p.runs for p in profiles.values())
        from repro.analysis.runs import extract_runs

        assert total_runs == len(extract_runs(stream))
