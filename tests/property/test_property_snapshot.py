"""Property: snapshot -> restore -> replay is indistinguishable from an
uninterrupted run, across randomized classifier configurations,
predictor setups, branch streams, and cut points (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ClassifierConfig, PhaseTracker
from repro.prediction import MarkovChangePredictor, RLEChangePredictor
from repro.service.snapshot import (
    dumps,
    loads,
    restore_tracker,
    snapshot_tracker,
)

INTERVAL_INSTRUCTIONS = 1_500
BRANCHES = 1_200

configs = st.builds(
    ClassifierConfig,
    num_counters=st.sampled_from([8, 16, 32]),
    bits_per_counter=st.sampled_from([4, 6]),
    table_entries=st.sampled_from([None, 4, 32]),
    similarity_threshold=st.sampled_from([0.0625, 0.125, 0.25]),
    min_count_threshold=st.integers(min_value=0, max_value=8),
    match_policy=st.sampled_from(["first", "most_similar"]),
    bit_selector=st.sampled_from(["static", "dynamic"]),
    perf_dev_threshold=st.sampled_from([None, 0.25, 0.5]),
)

predictors = st.sampled_from(["rle", "markov", "none"])


def build_change_predictor(kind):
    if kind == "rle":
        return RLEChangePredictor(2)
    if kind == "markov":
        return MarkovChangePredictor(1, entry_kind="top4")
    return None


def branch_stream(seed):
    rng = np.random.default_rng(seed)
    region = np.where(rng.random(BRANCHES) < 0.5, 0x400000, 0x900000)
    pcs = (region + rng.integers(0, 48, size=BRANCHES) * 4).tolist()
    counts = rng.integers(1, 90, size=BRANCHES).tolist()
    return pcs, counts


def drive(tracker, pcs, counts, cpis):
    """Per-branch drive with a varying CPI per boundary — exercises the
    adaptive-threshold path too."""
    reports = []
    for pc, count in zip(pcs, counts):
        if tracker.observe_branch(pc, count):
            cpi = cpis[len(reports) % len(cpis)]
            reports.append(tracker.complete_interval(cpi).to_dict())
    return reports


@given(
    config=configs,
    predictor_kind=predictors,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    cut_fraction=st.floats(min_value=0.05, max_value=0.95),
)
@settings(max_examples=25, deadline=None)
def test_snapshot_restore_replay_is_byte_identical(
    config, predictor_kind, seed, cut_fraction
):
    pcs, counts = branch_stream(seed)
    cpis = [1.0, 1.4, 0.8]
    cut = int(len(pcs) * cut_fraction)

    original = PhaseTracker(
        config,
        interval_instructions=INTERVAL_INSTRUCTIONS,
        change_predictor=build_change_predictor(predictor_kind),
    )
    head = drive(original, pcs[:cut], counts[:cut], cpis)

    # Through the full JSON wire form, exactly as the service ships it.
    document = loads(dumps(snapshot_tracker(original)))
    restored = restore_tracker(document)

    # Replay offset so boundary CPIs line up with the original's cycle.
    tail_cpis = cpis[len(head) % len(cpis):] + cpis[:len(head) % len(cpis)]
    tail_original = drive(original, pcs[cut:], counts[cut:], tail_cpis)
    tail_restored = drive(restored, pcs[cut:], counts[cut:], tail_cpis)

    assert tail_original == tail_restored


@given(
    config=configs,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=10, deadline=None)
def test_double_snapshot_is_stable(config, seed):
    """Snapshotting a restored tracker yields the same document —
    restore loses nothing."""
    pcs, counts = branch_stream(seed)
    tracker = PhaseTracker(
        config, interval_instructions=INTERVAL_INSTRUCTIONS
    )
    drive(tracker, pcs, counts, [1.0, 1.2])
    first = dumps(snapshot_tracker(tracker))
    second = dumps(snapshot_tracker(restore_tracker(loads(first))))
    assert first == second
