"""Property-based tests for the baselines and IO (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.metric_prediction import (
    EWMAPredictor,
    LastValueMetricPredictor,
    evaluate_metric_predictor,
)
from repro.baselines.working_set import (
    WorkingSetConfig,
    WorkingSetSignature,
)
from repro.workloads.io import load_trace, save_trace
from repro.workloads.trace import Interval, IntervalTrace

pc_lists = st.lists(
    st.integers(0, 2**24).map(lambda v: v * 4),
    min_size=1, max_size=60, unique=True,
)


def interval_from_pcs(pcs):
    pcs = np.asarray(sorted(pcs), dtype=np.int64)
    counts = np.full(pcs.shape, 10, dtype=np.int64)
    return Interval(pcs, counts, cpi=1.0)


class TestWorkingSetDistanceProperties:
    @given(pc_lists, pc_lists)
    @settings(max_examples=50)
    def test_symmetric_and_bounded(self, pcs_a, pcs_b):
        config = WorkingSetConfig()
        a = WorkingSetSignature.from_interval(
            interval_from_pcs(pcs_a), config
        )
        b = WorkingSetSignature.from_interval(
            interval_from_pcs(pcs_b), config
        )
        d = a.distance(b)
        assert 0.0 <= d <= 1.0
        assert d == pytest.approx(b.distance(a))

    @given(pc_lists)
    @settings(max_examples=50)
    def test_self_distance_zero(self, pcs):
        config = WorkingSetConfig()
        sig = WorkingSetSignature.from_interval(
            interval_from_pcs(pcs), config
        )
        assert sig.distance(sig) == 0.0

    @given(pc_lists, pc_lists)
    @settings(max_examples=50)
    def test_superset_distance_below_one(self, pcs_a, extra):
        """A signature vs itself-plus-extra-code never reaches the
        disjoint maximum."""
        config = WorkingSetConfig()
        a = WorkingSetSignature.from_interval(
            interval_from_pcs(pcs_a), config
        )
        union = WorkingSetSignature.from_interval(
            interval_from_pcs(list(set(pcs_a) | set(extra))), config
        )
        assert a.distance(union) < 1.0


class TestMetricPredictorProperties:
    @given(st.lists(st.floats(0.1, 10.0), min_size=2, max_size=100))
    @settings(max_examples=50)
    def test_mape_non_negative_and_finite(self, values):
        stats = evaluate_metric_predictor(
            values, LastValueMetricPredictor()
        )
        assert stats.mape >= 0.0
        assert np.isfinite(stats.mean_absolute_error)

    @given(st.lists(st.floats(0.5, 5.0), min_size=3, max_size=50),
           st.floats(0.1, 1.0))
    @settings(max_examples=50)
    def test_ewma_prediction_within_observed_range(self, values, alpha):
        predictor = EWMAPredictor(alpha=alpha)
        for value in values:
            predictor.observe(value)
            prediction = predictor.predict()
            assert min(values) - 1e-9 <= prediction <= max(values) + 1e-9


class TestTraceIOProperties:
    @given(
        st.lists(
            st.tuples(
                st.lists(
                    st.tuples(st.integers(0, 2**20), st.integers(0, 500)),
                    min_size=1, max_size=10,
                ),
                st.floats(0.1, 20.0),
                st.integers(-1, 3),
            ),
            min_size=1, max_size=15,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_round_trip_exact(self, raw_intervals):
        import tempfile
        from pathlib import Path

        intervals = []
        for records, cpi, region in raw_intervals:
            pcs = np.array([pc for pc, _ in records], dtype=np.int64)
            counts = np.array([c for _, c in records], dtype=np.int64)
            intervals.append(
                Interval(pcs, counts, cpi=float(cpi), region=region,
                         is_transition=region < 0)
            )
        trace = IntervalTrace("prop", intervals, interval_instructions=1)
        with tempfile.TemporaryDirectory() as tmp:
            path = save_trace(trace, Path(tmp) / "trace")
            loaded = load_trace(path)
        assert len(loaded) == len(trace)
        for original, restored in zip(trace, loaded):
            assert np.array_equal(
                original.branch_pcs, restored.branch_pcs
            )
            assert np.array_equal(
                original.instr_counts, restored.instr_counts
            )
            assert original.cpi == restored.cpi
            assert original.region == restored.region
