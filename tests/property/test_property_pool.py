"""Property: a TrackerPool of N randomly configured trackers is
state-identical — byte-equal exported snapshots and equal report
streams — to N scalar PhaseTrackers fed the same interleaved branch
streams, including a mid-stream evict-to-disk / hydrate round trip
through :mod:`repro.persistence` (hypothesis)."""

import json
import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ClassifierConfig, PhaseTracker, TrackerPool
from repro.persistence import PersistenceManager
from repro.service.session import SessionRegistry

INTERVAL_INSTRUCTIONS = 1_500
TRACKERS = 3

# Finite tables only: the pool (correctly) refuses table_entries=None.
configs = st.builds(
    ClassifierConfig,
    num_counters=st.sampled_from([8, 16]),
    bits_per_counter=st.sampled_from([4, 6]),
    table_entries=st.sampled_from([2, 4, 16]),
    similarity_threshold=st.sampled_from([0.0625, 0.125, 0.25]),
    min_count_threshold=st.integers(min_value=0, max_value=4),
    match_policy=st.sampled_from(["first", "most_similar"]),
    bit_selector=st.sampled_from(["static", "dynamic"]),
    static_low_bit=st.sampled_from([0, 2]),
    perf_dev_threshold=st.sampled_from([None, 0.25]),
)


def interleaved_stream(seed, records):
    rng = np.random.default_rng(seed)
    slots = rng.integers(0, TRACKERS, size=records)
    region = np.where(rng.random(records) < 0.5, 0x400000, 0x900000)
    pcs = region + (slots * 64 + rng.integers(0, 24, size=records)) * 4
    counts = rng.integers(0, 120, size=records)
    return slots, pcs, counts


def scalar_replay(scalars, slots, pcs, counts, cpi):
    reports = []
    for slot, pc, count in zip(slots, pcs, counts):
        for report in scalars[slot].observe_batch([pc], [count], cpi=cpi):
            reports.append((int(slot), report))
    return reports


@settings(max_examples=25, deadline=None)
@given(
    config=configs,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    rounds=st.integers(min_value=2, max_value=6),
)
def test_pool_state_identical_to_scalar_trackers(config, seed, rounds):
    scalars = [
        PhaseTracker(config, interval_instructions=INTERVAL_INSTRUCTIONS)
        for _ in range(TRACKERS)
    ]
    pool = TrackerPool(capacity=TRACKERS, config=config)
    handles = [
        pool.acquire(interval_instructions=INTERVAL_INSTRUCTIONS)
        for _ in range(TRACKERS)
    ]
    for round_index in range(rounds):
        slots, pcs, counts = interleaved_stream(
            seed + round_index, records=250
        )
        cpi = 1.0 + 0.25 * (round_index % 3)
        expected = scalar_replay(scalars, slots, pcs, counts, cpi)
        slot_ids = np.array([handles[index].slot for index in slots])
        slot_of = {handle.slot: i for i, handle in enumerate(handles)}
        got = [
            (slot_of[slot], report)
            for slot, report in pool.observe_batch(
                slot_ids, pcs, counts, cpi=cpi
            )
        ]
        assert got == expected
    for scalar, handle in zip(scalars, handles):
        assert json.dumps(scalar.export_state(), sort_keys=True) == (
            json.dumps(handle.export_state(), sort_keys=True)
        )


@settings(max_examples=10, deadline=None)
@given(
    config=configs,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_pool_survives_evict_hydrate_through_persistence(config, seed):
    """Mid-stream, every session is evicted to disk by the registry's
    idle TTL (checkpointed by the persistence tier, its pool slot
    released) and hydrated back onto a fresh pool slot on next use; the
    final states must still be byte-equal to uninterrupted scalars."""
    clock = [0.0]
    with tempfile.TemporaryDirectory() as data_dir:
        pool = TrackerPool(capacity=2, config=config)
        registry = SessionRegistry(
            max_sessions=TRACKERS + 1,
            idle_ttl=10.0,
            clock=lambda: clock[0],
            pool=pool,
        )
        manager = PersistenceManager(data_dir, clock=lambda: clock[0])
        manager.install_into(registry)

        from dataclasses import asdict

        names = [f"s{index}" for index in range(TRACKERS)]
        for name in names:
            registry.open(
                name,
                config=asdict(config),
                interval_instructions=INTERVAL_INSTRUCTIONS,
            )
        scalars = [
            PhaseTracker(config, interval_instructions=INTERVAL_INSTRUCTIONS)
            for _ in range(TRACKERS)
        ]

        def feed(round_seed, cpi):
            slots, pcs, counts = interleaved_stream(round_seed, records=200)
            scalar_replay(scalars, slots, pcs, counts, cpi)
            for index, name in enumerate(names):
                mask = slots == index
                if mask.any():
                    registry.get(name).tracker.observe_batch(
                        pcs[mask], counts[mask], cpi=cpi
                    )

        feed(seed, cpi=1.25)
        # All sessions go idle past the TTL: evicted to disk via the
        # persistence on_evict hook, pool slots released.
        clock[0] += 60.0
        assert registry.expire_idle() == names
        assert pool.active_slots == 0
        assert manager.evict_saves == TRACKERS

        # Touching the sessions hydrates them back (onto pool slots).
        feed(seed + 1, cpi=0.8)
        assert registry.sessions_hydrated == TRACKERS
        # Hydration landed the sessions back on pool slots, not scalars.
        assert pool.active_slots == TRACKERS

        for index, name in enumerate(names):
            assert json.dumps(
                scalars[index].export_state(), sort_keys=True
            ) == json.dumps(
                registry.get(name).tracker.export_state(), sort_keys=True
            )
