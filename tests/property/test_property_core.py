"""Property-based tests for core data structures (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accumulator import AccumulatorTable, hash_pc
from repro.core.bitselect import DynamicBitSelector, StaticBitSelector
from repro.core.distance import (
    manhattan_distance,
    relative_distance,
    relative_distance_matrix,
)
from repro.core.signature import Signature
from repro.core.signature_table import SignatureTable

vectors = st.lists(st.integers(0, 63), min_size=1, max_size=32)
paired_vectors = st.integers(1, 32).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, 63), min_size=n, max_size=n),
        st.lists(st.integers(0, 63), min_size=n, max_size=n),
    )
)


class TestDistanceProperties:
    @given(paired_vectors)
    def test_symmetry(self, pair):
        a, b = pair
        assert manhattan_distance(a, b) == manhattan_distance(b, a)
        assert relative_distance(a, b) == pytest.approx(
            relative_distance(b, a)
        )

    @given(vectors)
    def test_identity(self, vector):
        assert manhattan_distance(vector, vector) == 0
        assert relative_distance(vector, vector) == 0.0

    @given(paired_vectors)
    def test_relative_distance_in_unit_interval(self, pair):
        a, b = pair
        assert 0.0 <= relative_distance(a, b) <= 1.0

    @given(
        st.integers(1, 16).flatmap(
            lambda n: st.tuples(
                st.lists(
                    st.lists(st.integers(0, 63), min_size=n, max_size=n),
                    min_size=1, max_size=8,
                ),
                st.lists(st.integers(0, 63), min_size=n, max_size=n),
            )
        )
    )
    def test_matrix_form_agrees_with_scalar(self, data):
        rows, vector = data
        matrix = np.array(rows)
        batch = relative_distance_matrix(matrix, np.array(vector))
        for row, value in zip(rows, batch):
            assert value == pytest.approx(relative_distance(row, vector))


class TestAccumulatorProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 2**32 - 1), st.integers(0, 10_000)),
            min_size=1, max_size=200,
        ),
        st.sampled_from([8, 16, 32]),
    )
    def test_total_preserved_without_saturation(self, records, counters):
        table = AccumulatorTable(counters, counter_bits=62)
        pcs = np.array([pc for pc, _ in records], dtype=np.int64)
        counts = np.array([c for _, c in records], dtype=np.int64)
        table.update_batch(pcs, counts)
        assert table.counters.sum() == counts.sum()
        assert table.total_increment == counts.sum()

    @given(st.lists(st.integers(0, 2**40), min_size=1, max_size=100),
           st.sampled_from([8, 16, 64]))
    def test_hash_in_range_and_deterministic(self, pcs, counters):
        array = np.array(pcs, dtype=np.uint64)
        indices = hash_pc(array, counters)
        assert (indices >= 0).all()
        assert (indices < counters).all()
        assert np.array_equal(indices, hash_pc(array, counters))


class TestBitSelectorProperties:
    @given(
        st.lists(st.integers(0, (1 << 24) - 1), min_size=1, max_size=64),
        st.integers(0, (1 << 24) - 1),
        st.integers(4, 8),
    )
    def test_dynamic_output_in_range(self, counters, average, bits):
        selector = DynamicBitSelector(bits=bits)
        out = selector.compress(np.array(counters), average)
        assert (out >= 0).all()
        assert (out <= selector.max_value).all()

    @given(
        st.lists(st.integers(0, (1 << 24) - 1), min_size=2, max_size=64),
        st.integers(0, (1 << 24) - 1),
    )
    def test_dynamic_monotone_under_saturation(self, counters, average):
        """Compression never inverts the order of two counters."""
        selector = DynamicBitSelector(bits=6)
        ordered = np.sort(np.array(counters))
        out = selector.compress(ordered, average)
        assert (np.diff(out) >= 0).all()

    @given(
        st.lists(st.integers(0, (1 << 24) - 1), min_size=1, max_size=32),
        st.integers(0, 16),
    )
    def test_static_output_in_range(self, counters, low_bit):
        selector = StaticBitSelector(bits=8, low_bit=min(low_bit, 16))
        out = selector.compress(np.array(counters), 0)
        assert (out >= 0).all()
        assert (out <= 255).all()


class TestSignatureTableProperties:
    @given(
        st.lists(
            st.lists(st.integers(0, 63), min_size=8, max_size=8),
            min_size=1, max_size=60,
        ),
        st.integers(1, 16),
    )
    @settings(max_examples=30)
    def test_capacity_invariant(self, signature_values, capacity):
        table = SignatureTable(capacity=capacity, default_threshold=0.25)
        for values in signature_values:
            table.insert(Signature(values, bits=6))
        assert len(table) <= capacity
        assert table.evictions == max(len(signature_values) - capacity, 0)

    @given(
        st.lists(
            st.lists(st.integers(0, 63), min_size=8, max_size=8),
            min_size=2, max_size=30,
        )
    )
    @settings(max_examples=30)
    def test_best_match_respects_threshold(self, signature_values):
        table = SignatureTable(capacity=None, default_threshold=0.2)
        for values in signature_values[:-1]:
            table.insert(Signature(values, bits=6))
        probe = Signature(signature_values[-1], bits=6)
        match = table.best_match(probe)
        if match is not None:
            entry, distance = match
            assert distance <= entry.similarity_threshold + 1e-12
            assert distance == pytest.approx(
                relative_distance(entry.signature, probe)
            )


class TestClassifierStreamProperties:
    """Whole-classifier invariants over arbitrary synthetic streams."""

    @staticmethod
    def _interval_from(seed_pcs, weights):
        from repro.workloads.trace import Interval

        weights = np.asarray(weights, dtype=np.float64) + 1e-9
        counts = np.maximum(
            (weights / weights.sum() * 100_000).astype(np.int64), 0
        )
        counts[0] += 100_000 - counts.sum()
        return Interval(
            branch_pcs=np.asarray(seed_pcs, dtype=np.int64),
            instr_counts=counts,
            cpi=1.0,
        )

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),  # which code population
                st.lists(st.floats(0.1, 10.0), min_size=6, max_size=6),
            ),
            min_size=1,
            max_size=60,
        ),
        st.sampled_from([0, 2, 8]),
    )
    @settings(max_examples=25, deadline=None)
    def test_stream_invariants(self, stream, min_count):
        from repro.core import ClassifierConfig, PhaseClassifier
        from repro.core.config import TRANSITION_PHASE_ID

        populations = {
            p: np.arange(0x1000 + p * 0x10000,
                         0x1000 + p * 0x10000 + 24, 4)
            for p in range(4)
        }
        classifier = PhaseClassifier(
            ClassifierConfig(
                num_counters=16, table_entries=8,
                similarity_threshold=0.25,
                min_count_threshold=min_count,
            )
        )
        allocated = set()
        for population, weights in stream:
            result = classifier.classify_interval(
                self._interval_from(populations[population], weights)
            )
            # Phase IDs are 0 (transition) or positive.
            assert result.phase_id >= TRANSITION_PHASE_ID
            if result.new_phase_allocated:
                # Allocation is monotone and unique.
                assert result.phase_id not in allocated
                allocated.add(result.phase_id)
            if min_count == 0:
                # No transition phase without a min counter.
                assert result.phase_id != TRANSITION_PHASE_ID
        # The table never exceeds its capacity.
        assert len(classifier.table) <= 8
        assert classifier.num_phases == len(allocated)
