"""Cross-session ingest coalescing: the coalesced wire path must be
byte-identical to the per-session reference path — including pool +
persistence + mid-stream evict/hydrate churn and foreign-config
fallbacks mixed into rounds — and protocol ordering (pushes before
acks, responses in request order) must hold under interleaved
multi-connection load."""

import json
import socket

import numpy as np
import pytest

from repro.service.server import start_in_thread

BASE = 0x40000


def observe_plan(seed, observes, records=60, spread=24):
    """Deterministic per-session observe payloads: (pcs, counts, cpi)."""
    rng = np.random.default_rng(seed)
    out = []
    for index in range(observes):
        base = BASE + (0x9000 if (index // 5) % 2 else 0)
        pcs = (base + rng.integers(0, spread, size=records) * 4).tolist()
        counts = rng.integers(10, 60, size=records).tolist()
        out.append((pcs, counts, 1.0 + 0.2 * (index % 4)))
    return out


def connection_requests(session, seed, observes, config=None):
    """The full pipelined request list for one connection."""
    requests = [{
        "op": "open", "id": 1, "session": session,
        "interval_instructions": 2_000,
    }]
    if config is not None:
        requests[0]["config"] = config
    for index, (pcs, counts, cpi) in enumerate(
        observe_plan(seed, observes)
    ):
        requests.append({
            "op": "observe", "id": 2 + index, "session": session,
            "pcs": pcs, "counts": counts, "cpi": cpi,
        })
    requests.append({
        "op": "close", "id": 2 + observes, "session": session,
    })
    return requests


def drive(port, plans):
    """Pipeline each plan's requests down its own connection — all
    connections' writes land before any reads, so the server sees
    genuinely interleaved multi-connection load — then read each
    stream until every request is answered. Returns the raw response
    bytes per connection (the byte-identity unit)."""
    socks = []
    for requests in plans:
        sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        payload = b"".join(
            json.dumps(request).encode() + b"\n" for request in requests
        )
        sock.sendall(payload)
        socks.append(sock)
    streams = []
    for sock, requests in zip(socks, plans):
        reader = sock.makefile("rb")
        lines = []
        answered = 0
        while answered < len(requests):
            line = reader.readline()
            assert line, "connection closed before all responses"
            lines.append(line)
            if "id" in json.loads(line):
                answered += 1
        reader.close()
        sock.close()
        streams.append(b"".join(lines))
    return streams


def run_workload(plans, **service_kwargs):
    handle = start_in_thread(**service_kwargs)
    try:
        streams = drive(handle.port, plans)
        coalescer = handle.service._coalescer
        stats = coalescer.stats() if coalescer is not None else None
    finally:
        handle.stop()
    return streams, stats


FOREIGN_CONFIG = {"num_counters": 8, "table_entries": 16}


class TestByteIdentity:
    def compare(self, plans, extra_on=None, **kwargs):
        on_kwargs = dict(kwargs, coalesce=True, **(extra_on or {}))
        coalesced, stats = run_workload(plans, **on_kwargs)
        reference, _ = run_workload(plans, coalesce=False, **kwargs)
        assert coalesced == reference
        assert stats["requests"] == sum(
            1 for plan in plans for request in plan
            if request["op"] == "observe"
        )
        assert stats["rounds"] >= 1
        return stats

    def test_pooled_sessions_match_reference(self, tmp_path):
        plans = [
            connection_requests(f"s{index}", seed=index, observes=12)
            for index in range(6)
        ]
        # A gather window makes multi-request rounds certain, proving
        # the fused path (not single-submission rounds) is what
        # matched the reference.
        stats = self.compare(
            plans,
            extra_on={"coalesce_window": 0.05},
            max_sessions=16, pool_slots=16,
        )
        assert stats["max_round_size"] > 1

    def test_persistence_evict_hydrate_churn(self, tmp_path):
        # 8 sessions through a 3-session table: every round mixes
        # hydrations and evict-to-disk with the fused pass, including
        # sessions whose pool slot disappears mid-round. Each run gets
        # its own data directory so recovery doesn't cross runs.
        plans = [
            connection_requests(f"d{index}", seed=10 + index, observes=10)
            for index in range(8)
        ]
        coalesced, _ = run_workload(
            plans, coalesce=True,
            max_sessions=3, pool_slots=3,
            data_dir=str(tmp_path / "on"),
        )
        reference, _ = run_workload(
            plans, coalesce=False,
            max_sessions=3, pool_slots=3,
            data_dir=str(tmp_path / "off"),
        )
        assert coalesced == reference

    def test_foreign_config_fallback_mixed_into_rounds(self):
        # Odd sessions carry a non-default config, so they get scalar
        # trackers (no pool slot) and must take the per-session path
        # inside coalesced rounds — byte-identically.
        plans = [
            connection_requests(
                f"m{index}", seed=20 + index, observes=10,
                config=FOREIGN_CONFIG if index % 2 else None,
            )
            for index in range(6)
        ]
        self.compare(plans, max_sessions=8, pool_slots=8)

    def test_no_pool_still_matches(self):
        # coalesce without --pool-slots: every session falls back, the
        # scheduler is pure overhead but must stay correct.
        plans = [
            connection_requests(f"n{index}", seed=30 + index, observes=6)
            for index in range(3)
        ]
        self.compare(plans, max_sessions=4)


class TestOrdering:
    def test_pushes_precede_acks_in_request_order(self):
        plans = [
            connection_requests(f"o{index}", seed=40 + index, observes=12)
            for index in range(5)
        ]
        handle = start_in_thread(
            max_sessions=8, pool_slots=8,
            coalesce=True, coalesce_window=0.05,
        )
        try:
            streams = drive(handle.port, plans)
        finally:
            handle.stop()
        for stream, plan in zip(streams, plans):
            session = plan[0]["session"]
            op_by_id = {request["id"]: request["op"] for request in plan}
            expected_ids = [request["id"] for request in plan]
            seen_ids = []
            pushes_since_ack = 0
            for line in stream.splitlines():
                message = json.loads(line)
                if "push" in message:
                    assert message["push"] == "interval"
                    assert message["session"] == session
                    pushes_since_ack += 1
                    continue
                seen_ids.append(message["id"])
                assert message["ok"] is True
                if op_by_id[message["id"]] == "observe":
                    # An observe's pushes all precede its ack, and the
                    # ack counts exactly those pushes.
                    assert (
                        message["result"]["intervals"] == pushes_since_ack
                    )
                else:
                    # open/close acks never have stray pushes pending.
                    assert pushes_since_ack == 0
                pushes_since_ack = 0
            assert seen_ids == expected_ids

    def test_non_observe_requests_are_barriers(self):
        # A snapshot pipelined mid-stream must observe all earlier
        # ingest: its tracker state equals the uncoalesced run's.
        session = "barrier"
        plan = connection_requests(session, seed=50, observes=8)
        snapshot_request = {
            "op": "snapshot", "id": 100, "session": session,
        }
        plan = plan[:5] + [snapshot_request] + plan[5:]
        results = []
        for coalesce in (True, False):
            handle = start_in_thread(
                max_sessions=4, pool_slots=4, coalesce=coalesce,
            )
            try:
                (stream,) = drive(handle.port, [plan])
            finally:
                handle.stop()
            snapshot = next(
                json.loads(line)
                for line in stream.splitlines()
                if json.loads(line).get("id") == 100
            )
            assert snapshot["ok"] is True
            results.append(snapshot["result"])
        assert results[0] == results[1]


class TestDiagnostics:
    def test_coalesce_section_reports_scheduler_stats(self):
        plans = [connection_requests("diag", seed=60, observes=5)]
        handle = start_in_thread(
            max_sessions=4, pool_slots=4, coalesce=True,
        )
        try:
            drive(handle.port, plans)
            diagnostics = handle.service.diagnostics()
        finally:
            handle.stop()
        section = diagnostics["coalesce"]
        assert section["enabled"] is True
        assert section["requests"] == 5
        assert section["rounds"] >= 1
        assert section["pending"] == 0

    def test_disabled_service_has_no_section(self):
        handle = start_in_thread(max_sessions=4)
        try:
            assert "coalesce" not in handle.service.diagnostics()
        finally:
            handle.stop()
