"""The NDJSON wire protocol: encoding, parsing, validation, errors."""

import json

import pytest

from repro.errors import (
    ProtocolError,
    ServiceError,
    ServiceOverloadedError,
    ServiceUnavailableError,
    SessionExistsError,
    SessionNotFoundError,
    SnapshotError,
)
from repro.service import protocol


def encode_line(payload):
    return json.dumps(payload).encode() + b"\n"


class TestParseRequest:
    def test_ping_and_stats(self):
        request = protocol.parse_request(b'{"op":"ping","id":7}')
        assert isinstance(request, protocol.PingRequest)
        assert request.id == 7
        request = protocol.parse_request('{"op":"stats","id":8}')
        assert isinstance(request, protocol.StatsRequest)

    def test_open_full(self):
        request = protocol.parse_request(encode_line({
            "op": "open", "id": 1, "session": "s1",
            "config": {"num_counters": 32},
            "interval_instructions": 5000,
        }))
        assert isinstance(request, protocol.OpenRequest)
        assert request.session == "s1"
        assert request.config == {"num_counters": 32}
        assert request.interval_instructions == 5000
        assert request.snapshot is None

    def test_open_minimal_lets_server_choose_name(self):
        request = protocol.parse_request('{"op":"open","id":2}')
        assert request.session is None
        assert request.config is None

    def test_open_snapshot_excludes_config(self):
        with pytest.raises(ProtocolError):
            protocol.parse_request(encode_line({
                "op": "open", "id": 3, "snapshot": {"version": 1},
                "config": {"num_counters": 16},
            }))

    def test_observe_round_trip(self):
        request = protocol.parse_request(encode_line({
            "op": "observe", "id": 4, "session": "s1",
            "pcs": [4096, 4100], "counts": [10, 20], "cpi": 1.5,
        }))
        assert isinstance(request, protocol.ObserveRequest)
        assert request.pcs == [4096, 4100]
        assert request.counts == [10, 20]
        assert request.cpi == 1.5

    def test_observe_defaults_cpi_to_one(self):
        request = protocol.parse_request(encode_line({
            "op": "observe", "id": 5, "session": "s1",
            "pcs": [], "counts": [],
        }))
        assert request.cpi == 1.0

    @pytest.mark.parametrize("mutation", [
        {"pcs": [1, 2], "counts": [3]},          # length mismatch
        {"pcs": [1.5], "counts": [3]},           # float pc
        {"pcs": [True], "counts": [3]},          # bool is not an int
        {"pcs": [-4], "counts": [3]},            # negative pc
        {"pcs": [4], "counts": [-1]},            # negative count
        {"pcs": "xs", "counts": [3]},            # not a list
        {"pcs": [4], "counts": [3], "cpi": 0},   # non-positive cpi
        {"pcs": [4], "counts": [3], "cpi": True},
    ])
    def test_observe_validation(self, mutation):
        payload = {"op": "observe", "id": 6, "session": "s1",
                   "pcs": [4], "counts": [4]}
        payload.update(mutation)
        with pytest.raises(ProtocolError):
            protocol.parse_request(encode_line(payload))

    @pytest.mark.parametrize("line", [
        b"not json\n",
        b"[1,2,3]\n",
        b'{"op":"warp","id":1}',
        b'{"op":"ping"}',                      # missing id
        b'{"op":"ping","id":true}',            # bool id
        b'{"op":"close","id":1}',              # missing session
        b'{"op":"close","id":1,"session":""}',
        b'\xff\xfe{"op":"ping","id":1}',       # not UTF-8
    ])
    def test_malformed_lines(self, line):
        with pytest.raises(ProtocolError):
            protocol.parse_request(line)

    def test_session_ops(self):
        for op, cls in [("close", protocol.CloseRequest),
                        ("predict", protocol.PredictRequest),
                        ("snapshot", protocol.SnapshotRequest)]:
            request = protocol.parse_request(
                encode_line({"op": op, "id": 9, "session": "x"})
            )
            assert isinstance(request, cls)
            assert request.session == "x"


class TestRequestPayload:
    def test_round_trips_through_parse(self):
        requests = [
            protocol.PingRequest(id=1),
            protocol.StatsRequest(id=2),
            protocol.OpenRequest(id=3, session="a",
                                 interval_instructions=100),
            protocol.CloseRequest(id=4, session="a"),
            protocol.ObserveRequest(id=5, session="a", pcs=[8],
                                    counts=[9], cpi=2.0),
            protocol.PredictRequest(id=6, session="a"),
            protocol.SnapshotRequest(id=7, session="a"),
        ]
        for request in requests:
            line = protocol.encode(protocol.request_payload(request))
            assert protocol.parse_request(line) == request


class TestEncode:
    def test_single_compact_line(self):
        data = protocol.encode({"op": "ping", "id": 1})
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1
        assert b" " not in data

    def test_line_limit_enforced(self):
        with pytest.raises(ProtocolError):
            protocol.encode({"blob": "x" * protocol.MAX_LINE_BYTES})


class TestServerMessages:
    def test_ok_response(self):
        line = protocol.encode(protocol.ok_response(3, {"a": 1}))
        message = protocol.parse_server_message(line)
        assert message == protocol.Response(id=3, ok=True, result={"a": 1})
        assert message.raise_for_error() is message

    def test_error_response_raises_typed(self):
        line = protocol.encode(
            protocol.error_response(4, "session_not_found", "nope")
        )
        message = protocol.parse_server_message(line)
        assert not message.ok
        with pytest.raises(SessionNotFoundError, match="nope"):
            message.raise_for_error()

    def test_interval_push(self):
        line = protocol.encode(
            protocol.interval_push("s1", {"interval_index": 0})
        )
        message = protocol.parse_server_message(line)
        assert message == protocol.IntervalPush(
            session="s1", report={"interval_index": 0}
        )

    @pytest.mark.parametrize("line", [
        b'{"push":"wat","session":"s","report":{}}',
        b'{"push":"interval","session":"s"}',
        b'{"id":1}',
        b'{"id":1,"ok":false}',
    ])
    def test_malformed_server_lines(self, line):
        with pytest.raises(ProtocolError):
            protocol.parse_server_message(line)


class TestErrorCodeMapping:
    def test_bijection_for_specific_errors(self):
        for code, exc_class in protocol.ERROR_CODE_EXCEPTIONS.items():
            error = protocol.exception_for(code, "m")
            assert isinstance(error, exc_class)
            if exc_class is not ServiceError:
                assert protocol.error_code_for(error) == code

    def test_every_code_is_a_service_error(self):
        for exc_class in protocol.ERROR_CODE_EXCEPTIONS.values():
            assert issubclass(exc_class, ServiceError)

    def test_unknown_maps_to_internal(self):
        assert protocol.error_code_for(RuntimeError("x")) == "internal"
        assert type(protocol.exception_for("??", "m")) is ServiceError

    def test_distinct_codes_for_the_refusal_taxonomy(self):
        assert protocol.error_code_for(
            ServiceOverloadedError("x")) == "overloaded"
        assert protocol.error_code_for(
            ServiceUnavailableError("x")) == "shutting_down"
        assert protocol.error_code_for(
            SessionExistsError("x")) == "session_exists"
        assert protocol.error_code_for(SnapshotError("x")) == "snapshot"
