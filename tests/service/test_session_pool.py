"""Registry sessions on pool slots: checkout, fallback, recycling, and
snapshot restore through a shared TrackerPool."""

from dataclasses import asdict

import pytest

from repro.core import ClassifierConfig, TrackerPool
from repro.core.pool import PooledTracker
from repro.service.session import SessionRegistry
from repro.service.snapshot import snapshot_tracker


@pytest.fixture
def pool():
    return TrackerPool(capacity=2, config=ClassifierConfig.paper_default())


def test_default_config_session_lands_on_pool_slot(pool):
    registry = SessionRegistry(pool=pool)
    session = registry.open("a")
    assert isinstance(session.tracker, PooledTracker)
    assert pool.active_slots == 1


def test_foreign_config_falls_back_to_scalar(pool):
    registry = SessionRegistry(pool=pool)
    session = registry.open(
        "a", config=asdict(ClassifierConfig.paper_baseline())
    )
    assert not isinstance(session.tracker, PooledTracker)
    assert pool.active_slots == 0


def test_pool_exhaustion_falls_back_to_scalar():
    pool = TrackerPool(
        capacity=1,
        config=ClassifierConfig.paper_default(),
        auto_grow=False,
    )
    registry = SessionRegistry(pool=pool)
    first = registry.open("a")
    second = registry.open("b")
    assert isinstance(first.tracker, PooledTracker)
    assert not isinstance(second.tracker, PooledTracker)


def test_close_releases_the_slot(pool):
    registry = SessionRegistry(pool=pool)
    registry.open("a")
    assert pool.active_slots == 1
    registry.close("a")
    assert pool.active_slots == 0
    # The freed slot is reused by the next open.
    registry.open("b")
    assert pool.active_slots == 1


def test_lru_eviction_releases_the_slot(pool):
    registry = SessionRegistry(max_sessions=1, pool=pool)
    registry.open("a")
    registry.open("b")  # evicts "a"
    assert pool.active_slots == 1


def test_snapshot_restore_adopts_into_pool(pool):
    registry = SessionRegistry(pool=pool)
    source = registry.open("a")
    source.tracker.observe_batch([0x400, 0x404], [40, 60], cpi=1.1)
    document = snapshot_tracker(source.tracker)
    restored = registry.open("b", snapshot=document)
    assert isinstance(restored.tracker, PooledTracker)
    assert snapshot_tracker(restored.tracker) == document


def test_snapshot_restore_foreign_config_falls_back(pool):
    from repro.core import PhaseTracker

    registry = SessionRegistry(pool=pool)
    scalar = PhaseTracker(ClassifierConfig.paper_baseline())
    restored = registry.open("a", snapshot=snapshot_tracker(scalar))
    assert not isinstance(restored.tracker, PooledTracker)
    assert pool.active_slots == 0


def test_pool_sessions_are_not_scalar_recycled(pool):
    registry = SessionRegistry(pool=pool)
    registry.open("a")
    registry.close("a")
    assert registry._free_trackers == []


def test_telemetry_emits_survive_pooled_recycle(pool):
    """close/expire/evict emit session events that read tracker stats;
    with pooled trackers the read must happen before the slot is
    released (a stale handle raises)."""
    from repro.telemetry import Telemetry

    clock = [0.0]
    registry = SessionRegistry(
        max_sessions=1, idle_ttl=10.0, clock=lambda: clock[0],
        telemetry=Telemetry(), pool=pool,
    )
    registry.open("a")
    registry.close("a")              # close path
    registry.open("b")
    clock[0] += 60.0
    assert registry.expire_idle() == ["b"]  # expire path
    registry.open("c")
    registry.open("d")               # evict path (max_sessions=1)
    assert pool.active_slots == 1


def test_pooled_service_construction():
    """PhaseService(pool_slots=...) wires a pool into its registry."""
    from repro.service.server import PhaseService

    service = PhaseService(pool_slots=8)
    assert service.registry.pool is not None
    assert service.registry.pool.capacity == 8
    session = service.registry.open("a")
    assert isinstance(session.tracker, PooledTracker)
