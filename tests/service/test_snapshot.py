"""Tracker snapshot/restore: exactness, the envelope, failure modes."""

import numpy as np
import pytest

from repro.core import ClassifierConfig, PhaseTracker
from repro.errors import SnapshotError
from repro.prediction import MarkovChangePredictor
from repro.service.snapshot import (
    SNAPSHOT_VERSION,
    dumps,
    loads,
    restore_tracker,
    snapshot_tracker,
)


def two_region_stream(seed=0, n=4000):
    rng = np.random.default_rng(seed)
    region = np.where(rng.random(n) < 0.5, 0x400000, 0x900000)
    pcs = region + rng.integers(0, 64, size=n) * 4
    counts = rng.integers(1, 120, size=n)
    return pcs.tolist(), counts.tolist()


def drive(tracker, pcs, counts, cpi=1.0):
    return [r.to_dict() for r in tracker.observe_batch(pcs, counts, cpi)]


class TestRoundTrip:
    def test_restored_tracker_replays_identically(self):
        pcs, counts = two_region_stream()
        original = PhaseTracker(interval_instructions=5_000)
        drive(original, pcs[:2500], counts[:2500], cpi=1.3)

        document = loads(dumps(snapshot_tracker(original)))
        restored = restore_tracker(document)

        tail_original = drive(original, pcs[2500:], counts[2500:], cpi=0.8)
        tail_restored = drive(restored, pcs[2500:], counts[2500:], cpi=0.8)
        assert tail_original == tail_restored
        assert tail_original  # the tail actually classified intervals

    def test_mid_interval_accumulator_contents_travel(self):
        tracker = PhaseTracker(interval_instructions=10_000)
        tracker.observe_batch([4096, 4100], [700, 800], cpi=1.0)
        assert tracker.instructions_into_interval == 1500
        restored = restore_tracker(snapshot_tracker(tracker))
        assert restored.instructions_into_interval == 1500
        # Same partial interval: the next boundary classifies equally.
        pcs, counts = two_region_stream(seed=3, n=500)
        assert drive(tracker, pcs, counts) == drive(restored, pcs, counts)

    def test_interval_length_and_config_travel_in_document(self):
        config = ClassifierConfig(num_counters=32, table_entries=16)
        tracker = PhaseTracker(config, interval_instructions=1234)
        restored = restore_tracker(snapshot_tracker(tracker))
        assert restored.interval_instructions == 1234
        assert restored.classifier.config == config

    def test_markov_change_predictor_round_trips(self):
        tracker = PhaseTracker(
            interval_instructions=2_000,
            change_predictor=MarkovChangePredictor(1, entry_kind="top4"),
        )
        pcs, counts = two_region_stream(seed=5)
        drive(tracker, pcs[:2000], counts[:2000])
        restored = restore_tracker(snapshot_tracker(tracker))
        assert isinstance(
            restored.next_phase.change_predictor, MarkovChangePredictor
        )
        assert (drive(tracker, pcs[2000:], counts[2000:])
                == drive(restored, pcs[2000:], counts[2000:]))

    def test_no_change_predictor_round_trips(self):
        tracker = PhaseTracker(
            interval_instructions=2_000, change_predictor=None
        )
        pcs, counts = two_region_stream(seed=6)
        drive(tracker, pcs[:1000], counts[:1000])
        restored = restore_tracker(snapshot_tracker(tracker))
        assert restored.next_phase.change_predictor is None
        assert (drive(tracker, pcs[1000:], counts[1000:])
                == drive(restored, pcs[1000:], counts[1000:]))

    def test_document_is_json_safe(self):
        tracker = PhaseTracker(interval_instructions=2_000)
        pcs, counts = two_region_stream(seed=7, n=1500)
        drive(tracker, pcs, counts)
        text = dumps(snapshot_tracker(tracker))
        assert isinstance(text, str)
        assert loads(text)["schema_version"] == SNAPSHOT_VERSION


class TestFailureModes:
    def test_version_mismatch(self):
        document = snapshot_tracker(PhaseTracker())
        document["schema_version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(SnapshotError, match="version"):
            restore_tracker(document)

    def test_version_mismatch_is_typed(self):
        from repro.errors import SnapshotSchemaError

        document = snapshot_tracker(PhaseTracker())
        document["schema_version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(SnapshotSchemaError):
            restore_tracker(document)

    def test_legacy_version_key_still_accepted(self):
        document = snapshot_tracker(PhaseTracker())
        document["version"] = document.pop("schema_version")
        restore_tracker(document)

    @pytest.mark.parametrize("document", [
        "not a dict",
        {},
        {"version": SNAPSHOT_VERSION},
        {"version": SNAPSHOT_VERSION, "tracker": "nope"},
    ])
    def test_malformed_envelope(self, document):
        with pytest.raises(SnapshotError):
            restore_tracker(document)

    def test_unknown_change_predictor_kind(self):
        document = snapshot_tracker(PhaseTracker())
        document["tracker"]["change_predictor"]["kind"] = "quantum"
        with pytest.raises(SnapshotError, match="quantum"):
            restore_tracker(document)

    def test_corrupt_component_state(self):
        document = snapshot_tracker(PhaseTracker())
        document["tracker"]["classifier"]["accumulator"]["counters"] = [1]
        with pytest.raises(SnapshotError):
            restore_tracker(document)

    def test_loads_rejects_garbage(self):
        with pytest.raises(SnapshotError):
            loads("{broken")
        with pytest.raises(SnapshotError):
            loads("[1,2]")
