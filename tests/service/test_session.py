"""The session registry: caps, TTL, recycling, lifecycle telemetry."""

import pytest

from repro.core import ClassifierConfig, PhaseTracker
from repro.errors import (
    ConfigurationError,
    ServiceOverloadedError,
    SessionExistsError,
    SessionNotFoundError,
)
from repro.service.session import SessionRegistry
from repro.service.snapshot import snapshot_tracker
from repro.telemetry import EventLog, Telemetry, read_events


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestLifecycle:
    def test_open_get_close(self):
        registry = SessionRegistry(max_sessions=4)
        session = registry.open(name="a", interval_instructions=1000)
        assert session.name == "a"
        assert registry.get("a") is session
        assert len(registry) == 1
        closed = registry.close("a")
        assert closed is session
        assert "a" not in registry
        with pytest.raises(SessionNotFoundError):
            registry.get("a")

    def test_auto_names_are_unique(self):
        registry = SessionRegistry()
        names = {registry.open().name for _ in range(5)}
        assert len(names) == 5
        assert all(name.startswith("session-") for name in names)

    def test_duplicate_name_refused(self):
        registry = SessionRegistry()
        registry.open(name="dup")
        with pytest.raises(SessionExistsError):
            registry.open(name="dup")

    def test_config_overrides_applied(self):
        registry = SessionRegistry()
        session = registry.open(config={"num_counters": 64})
        assert session.tracker.classifier.config.num_counters == 64

    def test_bad_config_override_is_configuration_error(self):
        registry = SessionRegistry()
        with pytest.raises(ConfigurationError):
            registry.open(config={"flux_capacitance": 3})

    def test_close_all(self):
        registry = SessionRegistry()
        for _ in range(3):
            registry.open()
        assert registry.close_all() == 3
        assert len(registry) == 0


class TestCapacity:
    def test_lru_eviction_on_overflow(self):
        registry = SessionRegistry(max_sessions=2)
        registry.open(name="old")
        registry.open(name="mid")
        registry.get("old")            # refresh: now "mid" is the LRU
        registry.open(name="new")
        assert registry.names() == ["old", "new"]
        assert registry.sessions_evicted == 1

    def test_refusal_when_eviction_disabled(self):
        registry = SessionRegistry(max_sessions=1, evict_lru=False)
        registry.open(name="only")
        with pytest.raises(ServiceOverloadedError):
            registry.open(name="more")
        assert registry.names() == ["only"]

    def test_invalid_limits_rejected(self):
        with pytest.raises(ConfigurationError):
            SessionRegistry(max_sessions=0)
        with pytest.raises(ConfigurationError):
            SessionRegistry(idle_ttl=-1)


class TestIdleTTL:
    def test_idle_sessions_expire(self):
        clock = FakeClock()
        registry = SessionRegistry(idle_ttl=10, clock=clock)
        registry.open(name="stale")
        registry.open(name="busy")
        clock.advance(8)
        registry.get("busy")           # refresh "busy" only
        clock.advance(5)               # "stale" now idle 13s > 10s
        assert registry.expire_idle() == ["stale"]
        assert registry.names() == ["busy"]
        assert registry.sessions_expired == 1

    def test_open_sweeps_expired_before_counting_capacity(self):
        clock = FakeClock()
        registry = SessionRegistry(
            max_sessions=1, idle_ttl=10, evict_lru=False, clock=clock
        )
        registry.open(name="stale")
        clock.advance(11)
        registry.open(name="fresh")    # no ServiceOverloadedError
        assert registry.names() == ["fresh"]

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        registry = SessionRegistry(clock=clock)
        registry.open()
        clock.advance(1e9)
        assert registry.expire_idle() == []


class TestRecycling:
    def test_closed_tracker_is_reused_for_matching_config(self):
        registry = SessionRegistry()
        first = registry.open(name="a", interval_instructions=1000)
        tracker = first.tracker
        tracker.observe_batch([4096] * 5, [300] * 5, cpi=1.0)
        registry.close("a")
        second = registry.open(name="b", interval_instructions=2000)
        assert second.tracker is tracker               # pooled, not rebuilt
        assert second.tracker.intervals_observed == 0  # and reset
        assert second.tracker.instructions_into_interval == 0
        assert second.tracker.interval_instructions == 2000

    def test_different_config_builds_fresh_tracker(self):
        registry = SessionRegistry()
        first = registry.open(name="a", config={"num_counters": 16})
        registry.close("a")
        second = registry.open(name="b", config={"num_counters": 64})
        assert second.tracker is not first.tracker

    def test_restored_sessions_never_enter_the_pool(self):
        source = PhaseTracker(
            ClassifierConfig.paper_default(), interval_instructions=1000
        )
        registry = SessionRegistry()
        restored = registry.open(
            name="r", snapshot=snapshot_tracker(source)
        )
        assert not restored.recyclable
        tracker = restored.tracker
        registry.close("r")
        fresh = registry.open(name="f", interval_instructions=1000)
        assert fresh.tracker is not tracker


class TestTelemetry:
    def test_gauge_and_lifecycle_events(self):
        import io

        telemetry = Telemetry(events=EventLog(stream=io.StringIO()))
        clock = FakeClock()
        registry = SessionRegistry(
            max_sessions=1, idle_ttl=10, telemetry=telemetry, clock=clock
        )
        registry.open(name="a")
        registry.open(name="b")        # evicts "a"
        clock.advance(20)
        registry.expire_idle()         # expires "b"
        registry.open(name="c")
        registry.close("c")
        gauge = telemetry.metrics.get("repro_service_sessions")
        assert gauge.value == 0
        records = read_events(
            io.StringIO(telemetry.events._stream.getvalue())
        )
        kinds = [record["event"] for record in records]
        assert kinds == [
            "session_opened", "session_evicted", "session_opened",
            "session_expired", "session_opened", "session_closed",
        ]
        stats = registry.stats()
        assert stats == {"live": 0, "opened": 3, "closed": 1,
                         "evicted": 1, "expired": 1,
                         "evicted_saved": 0, "evicted_lost": 0,
                         "evicted_recycled": 2, "hydrated": 0,
                         "adopted": 0}


class TestReclamationHooks:
    """The persistence seams: ``on_evict``, ``resolver``, and
    ``name_reserved``, plus the saved/lost/recycled counter split."""

    def drive(self, session, branches=40):
        for index in range(branches):
            session.tracker.observe_branch(0x400000 + index * 4, 50)
        session.branches_ingested += branches

    def test_on_evict_runs_before_lru_drop(self):
        calls = []
        registry = SessionRegistry(
            max_sessions=1, on_evict=lambda s, r: calls.append((s.name, r))
        )
        registry.open(name="a")
        registry.open(name="b")
        assert calls == [("a", "evicted")]
        assert registry.stats()["evicted_saved"] == 1
        assert registry.stats()["evicted_lost"] == 0

    def test_on_evict_runs_before_ttl_expiry(self):
        calls = []
        clock = FakeClock()
        registry = SessionRegistry(
            max_sessions=4, idle_ttl=10, clock=clock,
            on_evict=lambda s, r: calls.append((s.name, r)),
        )
        registry.open(name="a")
        clock.advance(11)
        assert registry.expire_idle() == ["a"]
        assert calls == [("a", "expired")]
        assert registry.stats()["evicted_saved"] == 1

    def test_failing_hook_counts_state_as_lost(self):
        def explode(session, reason):
            raise RuntimeError("disk on fire")

        registry = SessionRegistry(max_sessions=1, on_evict=explode)
        session = registry.open(name="a")
        self.drive(session)
        registry.open(name="b")      # evicts "a"; the hook fails
        stats = registry.stats()
        assert stats["evicted_saved"] == 0
        assert stats["evicted_lost"] == 1

    def test_failing_hook_emits_event_and_does_not_block_eviction(self):
        import io

        def explode(session, reason):
            raise RuntimeError("disk on fire")

        telemetry = Telemetry(events=EventLog(stream=io.StringIO()))
        registry = SessionRegistry(
            max_sessions=1, on_evict=explode, telemetry=telemetry
        )
        registry.open(name="a")
        registry.open(name="b")      # eviction proceeds despite hook
        assert "a" not in registry and "b" in registry
        records = read_events(
            io.StringIO(telemetry.events._stream.getvalue())
        )
        failures = [
            r for r in records if r["event"] == "session_evict_hook_failed"
        ]
        assert len(failures) == 1
        assert "disk on fire" in failures[0]["error"]

    def test_untouched_session_counts_as_recycled_without_hook(self):
        registry = SessionRegistry(max_sessions=1)
        registry.open(name="a")      # never observed anything
        registry.open(name="b")
        stats = registry.stats()
        assert stats["evicted_recycled"] == 1
        assert stats["evicted_lost"] == 0

    def test_observed_session_counts_as_lost_without_hook(self):
        registry = SessionRegistry(max_sessions=1)
        session = registry.open(name="a")
        self.drive(session)
        registry.open(name="b")
        stats = registry.stats()
        assert stats["evicted_lost"] == 1
        assert stats["evicted_recycled"] == 0

    def test_get_miss_consults_resolver(self):
        from repro.service.session import Session

        made = []

        def resolver(name):
            if name != "phoenix":
                return None
            session = Session(name, PhaseTracker(), 0.0, recyclable=False)
            made.append(session)
            return session

        registry = SessionRegistry(max_sessions=4, resolver=resolver)
        session = registry.get("phoenix")
        assert session is made[0]
        assert "phoenix" in registry
        assert registry.stats()["hydrated"] == 1
        # Now live: a second get must not re-resolve.
        assert registry.get("phoenix") is session
        assert len(made) == 1
        with pytest.raises(SessionNotFoundError):
            registry.get("unknown")

    def test_hydration_takes_the_admission_path(self):
        from repro.service.session import Session

        registry = SessionRegistry(
            max_sessions=1,
            resolver=lambda name: Session(
                name, PhaseTracker(), 0.0, recyclable=False
            ),
        )
        registry.open(name="a")
        registry.get("phoenix")      # hydrating evicts "a"
        assert "a" not in registry and "phoenix" in registry
        assert registry.stats()["evicted"] == 1

    def test_refused_hydration_hands_the_session_back(self):
        from repro.service.session import Session

        shelf = {
            "phoenix": Session(
                "phoenix", PhaseTracker(), 0.0, recyclable=False
            )
        }
        returned = []
        registry = SessionRegistry(
            max_sessions=1, evict_lru=False,
            resolver=lambda name: shelf.pop(name, None),
            on_evict=lambda s, r: returned.append((s.name, r)),
        )
        registry.open(name="a")
        with pytest.raises(ServiceOverloadedError):
            registry.get("phoenix")
        # Resolving consumed the shelf copy; the evict hook must get
        # the session back instead of it being silently dropped.
        assert returned == [("phoenix", "hydrate_refused")]
        assert "phoenix" not in registry

    def test_close_miss_consults_resolver(self):
        from repro.service.session import Session

        registry = SessionRegistry(
            max_sessions=4,
            resolver=lambda name: Session(
                name, PhaseTracker(), 0.0, recyclable=False
            ),
        )
        closed = registry.close("phoenix")
        assert closed.name == "phoenix"
        assert registry.stats()["closed"] == 1

    def test_reserved_names_are_refused_and_skipped(self):
        registry = SessionRegistry(
            max_sessions=4,
            name_reserved=lambda name: name in {"cold", "session-1"},
        )
        with pytest.raises(SessionExistsError, match="evicted to disk"):
            registry.open(name="cold")
        # Auto-naming skips reserved names instead of colliding.
        assert registry.open().name == "session-2"

    def test_adopt_counts_separately_and_respects_cap(self):
        from repro.service.session import Session

        registry = SessionRegistry(max_sessions=1, evict_lru=False)
        registry.adopt(Session("a", PhaseTracker(), 0.0))
        assert registry.stats()["adopted"] == 1
        assert registry.stats()["opened"] == 0
        with pytest.raises(SessionExistsError):
            registry.adopt(Session("a", PhaseTracker(), 0.0))
        with pytest.raises(ServiceOverloadedError):
            registry.adopt(Session("b", PhaseTracker(), 0.0))
