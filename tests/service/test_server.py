"""The asyncio server: protocol behaviour over real sockets, admission
control, backpressure, and the graceful-drain zero-loss guarantee."""

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.core import PhaseTracker
from repro.service import PhaseServiceClient, start_in_thread
from repro.service.server import PhaseService

BASE_A, BASE_B = 0x400000, 0x900000


def branch_batches(seed, batches, batch_size=300, interval=3_000):
    rng = np.random.default_rng(seed)
    out = []
    for index in range(batches):
        base = BASE_A if (index // 4) % 2 == 0 else BASE_B
        pcs = (base + rng.integers(0, 48, size=batch_size) * 4).tolist()
        counts = rng.integers(10, 60, size=batch_size).tolist()
        out.append((pcs, counts))
    return out


class RawConnection:
    """A bare socket speaking the protocol, for tests that need to
    pipeline requests without waiting for responses."""

    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=15)
        self.reader = self.sock.makefile("rb")

    def send(self, payload):
        self.sock.sendall(json.dumps(payload).encode() + b"\n")

    def read_message(self):
        line = self.reader.readline()
        return json.loads(line) if line else None

    def read_until_eof(self):
        messages = []
        while True:
            message = self.read_message()
            if message is None:
                return messages
            messages.append(message)

    def close(self):
        self.reader.close()
        self.sock.close()


@pytest.fixture()
def service():
    handle = start_in_thread(max_sessions=8)
    yield handle
    handle.stop()


class TestRequestHandling:
    def test_ping_stats_and_session_cycle(self, service):
        with PhaseServiceClient(port=service.port) as client:
            assert client.ping()["protocol"] == 1
            name = client.open_session(interval_instructions=3_000)
            batches = branch_batches(seed=1, batches=6)
            total = 0
            for pcs, counts in batches:
                total += len(client.observe(name, pcs, counts, cpi=1.1))
            assert total > 0
            stats = client.stats()
            assert stats["live"] == 1 and stats["errors"] == 0
            summary = client.close_session(name)
            assert summary["intervals"] == total
            assert summary["branches"] == 6 * 300

    def test_service_stream_matches_local_tracker(self, service):
        batches = branch_batches(seed=2, batches=8)
        local = PhaseTracker(interval_instructions=3_000)
        with PhaseServiceClient(port=service.port) as client:
            name = client.open_session(interval_instructions=3_000)
            remote_reports, local_reports = [], []
            for pcs, counts in batches:
                remote_reports += client.observe(name, pcs, counts, cpi=1.2)
                local_reports += [
                    r.to_dict()
                    for r in local.observe_batch(pcs, counts, cpi=1.2)
                ]
        assert remote_reports == local_reports
        assert remote_reports

    def test_protocol_error_response_keeps_connection_alive(self, service):
        raw = RawConnection(service.port)
        raw.send({"op": "warp", "id": 5})
        message = raw.read_message()
        assert message["id"] == 5
        assert message["error"]["code"] == "protocol"
        raw.send({"op": "ping", "id": 6})          # still usable
        assert raw.read_message()["ok"] is True
        raw.close()

    def test_unparseable_id_gets_minus_one(self, service):
        raw = RawConnection(service.port)
        raw.send([1, 2, 3])
        message = raw.read_message()
        assert message["id"] == -1
        assert message["error"]["code"] == "protocol"
        raw.close()

    def test_unknown_session_and_duplicate_open(self, service):
        raw = RawConnection(service.port)
        raw.send({"op": "observe", "id": 1, "session": "ghost",
                  "pcs": [], "counts": []})
        assert raw.read_message()["error"]["code"] == "session_not_found"
        raw.send({"op": "open", "id": 2, "session": "dup"})
        assert raw.read_message()["ok"] is True
        raw.send({"op": "open", "id": 3, "session": "dup"})
        assert raw.read_message()["error"]["code"] == "session_exists"
        raw.close()

    def test_overloaded_when_eviction_disabled(self):
        handle = start_in_thread(max_sessions=1, evict_lru=False)
        try:
            raw = RawConnection(handle.port)
            raw.send({"op": "open", "id": 1})
            assert raw.read_message()["ok"] is True
            raw.send({"op": "open", "id": 2})
            assert raw.read_message()["error"]["code"] == "overloaded"
            raw.close()
        finally:
            handle.stop()

    def test_pushes_precede_the_observe_ack(self, service):
        raw = RawConnection(service.port)
        raw.send({"op": "open", "id": 1, "session": "s",
                  "interval_instructions": 1000})
        raw.read_message()
        raw.send({"op": "observe", "id": 2, "session": "s",
                  "pcs": [4096] * 60, "counts": [40] * 60})
        messages = [raw.read_message() for _ in range(3)]
        assert [m.get("push") for m in messages[:-1]] == ["interval"] * 2
        ack = messages[-1]
        assert ack["id"] == 2 and ack["result"]["intervals"] == 2
        raw.close()


class TestAdmissionControl:
    def test_connection_cap_closes_surplus_sockets(self):
        handle = start_in_thread(max_connections=1)
        try:
            keeper = RawConnection(handle.port)
            keeper.send({"op": "ping", "id": 1})
            assert keeper.read_message()["ok"] is True
            surplus = RawConnection(handle.port)
            # The server closes the surplus socket without a response.
            assert surplus.read_message() is None
            assert handle.service.connections_refused >= 1
            surplus.close()
            keeper.close()
        finally:
            handle.stop()


class TestBackpressure:
    def test_tiny_queue_still_processes_everything(self):
        handle = start_in_thread(queue_size=1)
        try:
            batches = branch_batches(seed=3, batches=20, batch_size=100)
            with PhaseServiceClient(port=handle.port) as client:
                name = client.open_session(interval_instructions=2_000)
                intervals = 0
                for pcs, counts in batches:
                    intervals += len(client.observe(name, pcs, counts))
                summary = client.close_session(name)
            assert summary["branches"] == 20 * 100
            assert summary["intervals"] == intervals > 0
        finally:
            handle.stop()


class TestGracefulDrain:
    def test_queued_requests_classify_and_flush_before_close(self):
        """The zero-loss/zero-duplication guarantee: pipeline many
        observe requests, shut down while they are queued, and verify
        the pushed interval stream equals a local tracker fed exactly
        the acknowledged batches — nothing lost, nothing classified
        twice. A snapshot taken post-drain via a fresh service restore
        must also continue identically."""
        handle = start_in_thread(queue_size=64)
        batches = branch_batches(seed=4, batches=30)
        raw = RawConnection(handle.port)
        raw.send({"op": "open", "id": 0, "session": "drainee",
                  "interval_instructions": 3000})
        assert raw.read_message()["ok"] is True

        # Pipeline every batch without reading responses, then shut
        # down concurrently so the drain races live queue contents.
        for index, (pcs, counts) in enumerate(batches):
            raw.send({"op": "observe", "id": index + 1, "session":
                      "drainee", "pcs": pcs, "counts": counts,
                      "cpi": 1.0})
        stopper = threading.Thread(target=handle.stop)
        stopper.start()
        messages = raw.read_until_eof()
        stopper.join()
        raw.close()

        acked, refused, pushes = set(), set(), []
        for message in messages:
            if message.get("push") == "interval":
                pushes.append(message["report"])
            elif message.get("ok"):
                acked.add(message["id"])
            else:
                refused.add(message["id"])

        # Responses are FIFO: every acknowledged batch precedes any
        # refused one, and none is both.
        assert acked and not (acked & refused)
        if refused:
            assert max(acked) < min(refused)

        # Replay exactly the acknowledged batches locally: the pushed
        # interval stream must match it one-for-one.
        local = PhaseTracker(interval_instructions=3000)
        expected = []
        for index in sorted(acked):
            pcs, counts = batches[index - 1]
            expected += [
                r.to_dict()
                for r in local.observe_batch(pcs, counts, cpi=1.0)
            ]
        assert pushes == expected

    def test_new_connections_refused_while_stopped(self):
        handle = start_in_thread()
        port = handle.port
        handle.stop()
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=2)

    def test_shutdown_is_idempotent(self):
        handle = start_in_thread()
        handle.stop()
        handle.stop()


class TestIdleSweep:
    def test_idle_sessions_are_swept_in_the_background(self):
        handle = start_in_thread(idle_ttl=0.2, sweep_interval=0.05)
        try:
            with PhaseServiceClient(port=handle.port) as client:
                client.open_session(session="sleepy")
                assert client.stats()["live"] == 1
                deadline = time.time() + 5
                while time.time() < deadline:
                    if client.stats()["expired"] == 1:
                        break
                    time.sleep(0.05)
                stats = client.stats()
                assert stats["live"] == 0 and stats["expired"] == 1
        finally:
            handle.stop()


class TestConstruction:
    def test_invalid_parameters(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            PhaseService(max_connections=0)
        with pytest.raises(ConfigurationError):
            PhaseService(queue_size=0)
