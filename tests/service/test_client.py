"""The client SDK: typed application errors vs transport failures,
retry policy, push buffering."""

import socket

import pytest

from repro.errors import (
    ConfigurationError,
    ServiceError,
    ServiceTransportError,
    SessionExistsError,
    SessionNotFoundError,
)
from repro.service import PhaseServiceClient, start_in_thread


@pytest.fixture()
def service():
    handle = start_in_thread(max_sessions=4)
    yield handle
    handle.stop()


class TestTypedApplicationErrors:
    """Server refusals surface as the matching repro.errors exception —
    and never as a transport failure (the connection stays usable)."""

    def test_session_not_found(self, service):
        with PhaseServiceClient(port=service.port) as client:
            with pytest.raises(SessionNotFoundError):
                client.observe("ghost", [4096], [10])
            assert client.ping()["protocol"] == 1   # connection survives

    def test_session_exists(self, service):
        with PhaseServiceClient(port=service.port) as client:
            client.open_session(session="dup")
            with pytest.raises(SessionExistsError):
                client.open_session(session="dup")

    def test_bad_snapshot_is_snapshot_error(self, service):
        from repro.errors import SnapshotError

        with PhaseServiceClient(port=service.port) as client:
            with pytest.raises(SnapshotError):
                client.open_session(snapshot={"version": 999})

    def test_typed_errors_are_not_transport_errors(self, service):
        with PhaseServiceClient(port=service.port) as client:
            try:
                client.close_session("ghost")
            except ServiceTransportError:  # pragma: no cover
                pytest.fail("application refusal raised as transport")
            except SessionNotFoundError as error:
                assert isinstance(error, ServiceError)
                assert not isinstance(error, ServiceTransportError)


class TestTransportFailures:
    def test_connect_refused(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        client = PhaseServiceClient(
            port=free_port, timeout=0.5, retries=0, backoff=0.01
        )
        with pytest.raises(ServiceTransportError):
            client.ping()

    def test_server_death_mid_session_is_transport_not_typed(self, service):
        client = PhaseServiceClient(
            port=service.port, timeout=2.0, retries=0
        )
        name = client.open_session(interval_instructions=1000)
        service.stop()
        with pytest.raises(ServiceTransportError):
            client.observe(name, [4096], [10])
        client.close()

    def test_mutating_requests_are_never_retried(self, service):
        client = PhaseServiceClient(
            port=service.port, timeout=2.0, retries=5, backoff=0.01
        )
        client.ping()
        service.stop()
        attempts = []
        original = client._request_once

        def counting(payload):
            attempts.append(payload["op"])
            return original(payload)

        client._request_once = counting
        with pytest.raises(ServiceTransportError):
            client.observe("s", [4096], [10])
        assert attempts == ["observe"]       # exactly one attempt
        client.close()

    def test_read_only_requests_retry_with_backoff(self, service):
        client = PhaseServiceClient(
            port=service.port, timeout=2.0, retries=2, backoff=0.01
        )
        client.ping()
        service.stop()
        attempts = []
        original = client._request_once

        def counting(payload):
            attempts.append(payload["op"])
            return original(payload)

        client._request_once = counting
        with pytest.raises(ServiceTransportError):
            client.ping()
        assert attempts == ["ping"] * 3      # 1 try + 2 retries
        client.close()

    def test_retry_recovers_after_reconnect(self, service):
        """A dropped connection with a live server: the first attempt
        fails on the dead socket, the retry reconnects and succeeds."""
        client = PhaseServiceClient(
            port=service.port, timeout=2.0, retries=2, backoff=0.01
        )
        client.ping()
        client._sock.close()                 # sever underneath the SDK
        assert client.ping()["protocol"] == 1


class TestPushBuffering:
    def test_reports_buffered_across_requests(self, service):
        with PhaseServiceClient(port=service.port) as client:
            name = client.open_session(interval_instructions=1000)
            reports = client.observe(name, [4096] * 60, [40] * 60)
            assert len(reports) == 2
            assert client.drain_reports() == []   # already drained

    def test_drain_filters_by_session(self, service):
        with PhaseServiceClient(port=service.port) as client:
            a = client.open_session(interval_instructions=1000)
            b = client.open_session(interval_instructions=1000)
            client.observe(a, [4096] * 30, [40] * 30)
            # a's reports were drained by observe; stage a mixed buffer
            # to exercise the per-session filter.
            from repro.service.protocol import IntervalPush

            client._pushes = [
                IntervalPush(session=a, report={"interval_index": 9}),
                IntervalPush(session=b, report={"interval_index": 1}),
            ]
            assert client.drain_reports(a) == [{"interval_index": 9}]
            assert client.drain_reports() == [{"interval_index": 1}]


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PhaseServiceClient(timeout=0)
        with pytest.raises(ConfigurationError):
            PhaseServiceClient(retries=-1)


class TestConnectionResetRetry:
    """A peer reset (ECONNRESET / EOF mid-read) on a *read-only* op is
    the signature of a supervised restart or dispatcher failover: the
    client grants one transparent reconnect beyond the configured
    retries — even with retries=0 — while mutating ops still fail
    fast and timeouts earn no bonus."""

    @staticmethod
    def _free_port():
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            return probe.getsockname()[1]

    def test_readonly_op_rides_a_server_restart_with_zero_retries(self):
        port = self._free_port()
        first = start_in_thread(max_sessions=4, port=port)
        client = PhaseServiceClient(
            port=port, timeout=2.0, retries=0, backoff=0.01
        )
        assert client.ping()["protocol"] == 1
        first.stop()
        second = start_in_thread(max_sessions=4, port=port)
        try:
            # retries=0, yet the reset earns one bonus reconnect.
            assert client.ping()["protocol"] == 1
        finally:
            client.close()
            second.stop()

    def test_reset_errors_are_tagged(self):
        """A peer that accepts and then slams the connection shut is a
        reset; a mutating op surfaces it immediately (no bonus), with
        ``connection_reset`` set for callers who want to know."""
        import threading

        with socket.socket() as listener:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)

            def slam_first_connection():
                conn, _ = listener.accept()
                conn.recv(65536)
                conn.close()

            thread = threading.Thread(
                target=slam_first_connection, daemon=True
            )
            thread.start()
            client = PhaseServiceClient(
                port=listener.getsockname()[1], timeout=2.0, retries=0
            )
            with pytest.raises(ServiceTransportError) as excinfo:
                client.observe("any", [4096], [10])
            assert excinfo.value.connection_reset is True
            client.close()
            thread.join(2.0)

    def test_refused_connect_is_not_a_reset(self):
        client = PhaseServiceClient(
            port=self._free_port(), timeout=0.5, retries=0
        )
        with pytest.raises(ServiceTransportError) as excinfo:
            client.ping()
        assert excinfo.value.connection_reset is False

    def test_mutating_op_gets_no_bonus_reconnect(self):
        port = self._free_port()
        first = start_in_thread(max_sessions=4, port=port)
        client = PhaseServiceClient(
            port=port, timeout=2.0, retries=0, backoff=0.01
        )
        name = client.open_session(interval_instructions=1000)
        first.stop()
        second = start_in_thread(max_sessions=4, port=port)
        try:
            with pytest.raises(ServiceTransportError):
                client.observe(name, [4096], [10])
        finally:
            client.close()
            second.stop()

    def test_timeout_is_not_a_reset(self):
        """A silent server (connection up, no response) is a timeout —
        the request may still be executing, so no reset tag and no
        bonus replay."""
        with socket.socket() as listener:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)               # accept queue, never reads
            client = PhaseServiceClient(
                port=listener.getsockname()[1], timeout=0.3, retries=0
            )
            with pytest.raises(ServiceTransportError) as excinfo:
                client.ping()
            assert excinfo.value.connection_reset is False
            client.close()
