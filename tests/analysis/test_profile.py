"""Tests for per-phase profiling."""

import numpy as np
import pytest

from repro.analysis.profile import (
    format_profile_table,
    profile_phases,
    top_phases,
)
from repro.core.events import ClassificationResult, ClassificationRun
from repro.errors import TraceError
from repro.workloads.trace import Interval, IntervalTrace


def run_for(ids):
    return ClassificationRun(
        results=[
            ClassificationResult(phase_id=i, matched=True, distance=0.0)
            for i in ids
        ],
        num_phases=len({i for i in ids if i != 0}),
        evictions=0,
    )


def trace_for(cpis, instructions=1000):
    return IntervalTrace(
        "t",
        [
            Interval(np.array([4]), np.array([instructions]), cpi=c)
            for c in cpis
        ],
    )


class TestProfilePhases:
    def test_basic_aggregates(self):
        run = run_for([1, 1, 2, 1])
        trace = trace_for([1.0, 3.0, 5.0, 2.0])
        profiles = profile_phases(run, trace)
        p1 = profiles[1]
        assert p1.intervals == 3
        assert p1.occupancy == pytest.approx(0.75)
        assert p1.cpi_mean == pytest.approx(2.0)
        assert p1.runs == 2
        assert p1.mean_run_length == pytest.approx(1.5)
        assert p1.longest_run == 2
        assert p1.first_interval == 0
        assert p1.last_interval == 3
        assert p1.instructions == 3000
        assert p1.recurrent

    def test_single_run_not_recurrent(self):
        profiles = profile_phases(
            run_for([1, 1, 1]), trace_for([1.0, 1.0, 1.0])
        )
        assert not profiles[1].recurrent

    def test_transition_profile_flagged(self):
        profiles = profile_phases(
            run_for([0, 1]), trace_for([1.0, 1.0])
        )
        assert profiles[0].is_transition
        assert not profiles[1].is_transition

    def test_cov_computed(self):
        profiles = profile_phases(
            run_for([1, 1]), trace_for([1.0, 3.0])
        )
        assert profiles[1].cpi_cov == pytest.approx(0.5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            profile_phases(run_for([1]), trace_for([1.0, 2.0]))

    def test_real_benchmark_profiles(self, small_trace, classified_small):
        profiles = profile_phases(classified_small, small_trace)
        assert sum(p.occupancy for p in profiles.values()) == (
            pytest.approx(1.0)
        )
        assert sum(p.intervals for p in profiles.values()) == len(
            small_trace
        )


class TestTopPhases:
    def test_ordered_by_occupancy(self):
        profiles = profile_phases(
            run_for([1, 2, 2, 2, 0]), trace_for([1.0] * 5)
        )
        top = top_phases(profiles, count=2)
        assert [p.phase_id for p in top] == [2, 1]

    def test_transition_excluded_by_default(self):
        profiles = profile_phases(
            run_for([0, 0, 0, 1]), trace_for([1.0] * 4)
        )
        top = top_phases(profiles)
        assert all(not p.is_transition for p in top)

    def test_count_respected(self):
        profiles = profile_phases(
            run_for([1, 2, 3, 4, 5]), trace_for([1.0] * 5)
        )
        assert len(top_phases(profiles, count=3)) == 3


class TestFormatting:
    def test_table_contains_phases(self):
        profiles = profile_phases(
            run_for([0, 1, 1, 2]), trace_for([1.0, 2.0, 2.1, 3.0])
        )
        table = format_profile_table(profiles)
        assert "trans" in table
        assert "occup" in table
        lines = table.splitlines()
        assert len(lines) == 2 + 3  # header + rule + three phases
