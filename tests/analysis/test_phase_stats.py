"""Unit tests for stable/transition length statistics."""

import pytest

from repro.analysis.phase_stats import phase_length_summary


class TestPhaseLengthSummary:
    def test_stable_and_transition_separated(self):
        # stable runs: [1]*10, [2]*6; transition runs: [0]*2, [0]*2.
        stream = [1] * 10 + [0] * 2 + [2] * 6 + [0] * 2 + [1] * 4
        summary = phase_length_summary(stream)
        assert summary.stable_count == 3
        assert summary.transition_count == 2
        assert summary.stable_mean == pytest.approx((10 + 6 + 4) / 3)
        assert summary.transition_mean == pytest.approx(2.0)

    def test_stable_dominates(self):
        stream = [1] * 20 + [0] + [2] * 20
        summary = phase_length_summary(stream)
        assert summary.stable_dominates

    def test_no_transitions(self):
        summary = phase_length_summary([1] * 5 + [2] * 5)
        assert summary.transition_count == 0
        assert summary.transition_mean == 0.0

    def test_all_transition(self):
        summary = phase_length_summary([0] * 5)
        assert summary.stable_count == 0
        assert summary.transition_count == 1
        assert not summary.stable_dominates

    def test_std_deviation(self):
        stream = [1] * 2 + [0] + [2] * 6
        summary = phase_length_summary(stream)
        assert summary.stable_std == pytest.approx(2.0)  # std of (2, 6)
