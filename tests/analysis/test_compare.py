"""Tests for classification comparison."""

import numpy as np
import pytest

from repro.analysis.compare import compare_labelings, compare_runs
from repro.core import ClassifierConfig, PhaseClassifier
from repro.core.events import ClassificationResult, ClassificationRun
from repro.errors import TraceError
from repro.workloads.trace import Interval, IntervalTrace


def run_for(ids):
    return ClassificationRun(
        results=[
            ClassificationResult(phase_id=i, matched=True, distance=0.0)
            for i in ids
        ],
        num_phases=len({i for i in ids if i != 0}),
        evictions=0,
    )


def trace_for(cpis):
    return IntervalTrace(
        "t",
        [Interval(np.array([4]), np.array([100]), cpi=c) for c in cpis],
    )


class TestCompareRuns:
    def test_identical_runs_tie(self):
        trace = trace_for([1.0, 2.0, 1.0, 2.0])
        run = run_for([1, 2, 1, 2])
        comparison = compare_runs(run, run_for([1, 2, 1, 2]), trace)
        assert comparison.cov_winner is None
        assert comparison.more_frugal is None
        assert comparison.agreement_ari == pytest.approx(1.0)

    def test_better_split_wins_cov(self):
        trace = trace_for([1.0, 1.0, 5.0, 5.0])
        split = run_for([1, 1, 2, 2])
        merged = run_for([1, 1, 1, 1])
        comparison = compare_runs(split, merged, trace,
                                  name_a="split", name_b="merged")
        assert comparison.cov_winner == "split"
        assert comparison.more_frugal == "merged"

    def test_transition_occupancy_reported(self):
        trace = trace_for([1.0, 1.0, 1.0, 1.0])
        comparison = compare_runs(
            run_for([0, 1, 1, 1]), run_for([1, 1, 1, 1]), trace
        )
        assert comparison.transition_a == pytest.approx(0.25)
        assert comparison.transition_b == 0.0

    def test_mismatched_lengths_rejected(self):
        trace = trace_for([1.0, 1.0])
        with pytest.raises(TraceError):
            compare_runs(run_for([1]), run_for([1, 1]), trace)

    def test_summary_mentions_names(self):
        trace = trace_for([1.0, 2.0])
        comparison = compare_runs(
            run_for([1, 2]), run_for([1, 1]), trace,
            name_a="ours", name_b="baseline",
        )
        text = comparison.summary()
        assert "ours" in text and "baseline" in text
        assert "ARI" in text

    def test_real_configs_comparable(self, small_trace):
        ours = PhaseClassifier(
            ClassifierConfig.paper_default()
        ).classify_trace(small_trace)
        baseline = PhaseClassifier(
            ClassifierConfig.paper_baseline()
        ).classify_trace(small_trace)
        comparison = compare_runs(
            ours, baseline, small_trace, "paper", "prior work"
        )
        # Both classify the same program: labels must correlate.
        assert comparison.agreement_ari > 0.2


class TestCompareLabelings:
    def test_shorthand(self):
        assert compare_labelings([1, 1, 2], [5, 5, 9]) == pytest.approx(1.0)
