"""Unit tests for prediction statistics aggregation."""

import pytest

from repro.analysis.prediction_stats import (
    AccuracyCoverage,
    aggregate_change,
    aggregate_next_phase,
    operating_point,
)
from repro.errors import PredictionError
from repro.prediction.change_eval import ChangePredictionStats
from repro.prediction.composite import NextPhaseStats


def next_stats(**counts):
    stats = NextPhaseStats()
    for category, count in counts.items():
        stats.counts[category] = count
    return stats


class TestAggregation:
    def test_next_phase_sums(self):
        a = next_stats(correct_table=1, correct_lv_conf=2)
        b = next_stats(correct_table=3, incorrect_lv_conf=1)
        total = aggregate_next_phase([a, b])
        assert total.counts["correct_table"] == 4
        assert total.counts["correct_lv_conf"] == 2
        assert total.total == 7

    def test_change_sums(self):
        a = ChangePredictionStats()
        a.record("conf_correct")
        b = ChangePredictionStats()
        b.record("tag_miss")
        total = aggregate_change([a, b])
        assert total.total_changes == 2

    def test_empty_rejected(self):
        with pytest.raises(PredictionError):
            aggregate_next_phase([])
        with pytest.raises(PredictionError):
            aggregate_change([])


class TestOperatingPoint:
    def test_from_stats(self):
        stats = next_stats(correct_lv_conf=8, incorrect_lv_conf=2,
                           correct_lv_unconf=5)
        point = operating_point(stats)
        assert point.accuracy == pytest.approx(0.8)
        assert point.coverage == pytest.approx(10 / 15)

    def test_dominance(self):
        better = AccuracyCoverage(accuracy=0.9, coverage=0.8)
        worse = AccuracyCoverage(accuracy=0.8, coverage=0.8)
        assert better.dominates(worse)
        assert not worse.dominates(better)
        assert not better.dominates(better)  # equal: no strict gain
