"""Tests for ASCII phase timelines."""

import pytest

from repro.analysis.timeline import (
    phase_glyphs,
    render_timeline,
    run_summary_line,
)
from repro.errors import TraceError


class TestPhaseGlyphs:
    def test_transition_is_dot(self):
        mapping = phase_glyphs([0, 1, 2])
        assert mapping[0] == "."

    def test_first_appearance_order(self):
        mapping = phase_glyphs([5, 3, 5, 9])
        assert mapping[5] == "A"
        assert mapping[3] == "B"
        assert mapping[9] == "C"

    def test_overflow_shares_glyph(self):
        stream = list(range(1, 80))
        mapping = phase_glyphs(stream)
        overflow = [g for g in mapping.values() if g == "?"]
        assert overflow  # some phases exceeded the alphabet

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            phase_glyphs([])


class TestRenderTimeline:
    def test_basic_rendering(self):
        out = render_timeline([1, 1, 0, 2, 2], width=10)
        assert "AA.BB" in out
        assert "legend:" in out
        assert "transition" in out

    def test_wrapping(self):
        out = render_timeline([1] * 100, width=40, legend=False)
        lines = out.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("0000 ")
        assert lines[1].startswith("0040 ")

    def test_legend_counts(self):
        out = render_timeline([1, 1, 1, 2], width=16)
        assert "A=phase 1 (3, 75%)" in out

    def test_legend_truncation(self):
        stream = list(range(1, 30))
        out = render_timeline(stream, max_legend_entries=3)
        assert "..." in out

    def test_no_legend_option(self):
        out = render_timeline([1, 2], legend=False)
        assert "legend" not in out

    def test_width_validation(self):
        with pytest.raises(TraceError):
            render_timeline([1], width=4)

    def test_real_classification_renders(self, classified_small):
        out = render_timeline(classified_small.phase_ids)
        assert out.count("\n") >= 1


class TestRunSummary:
    def test_basic(self):
        line = run_summary_line([1, 1, 1, 0, 0, 2])
        assert line == "Ax3 -> .x2 -> Bx1"

    def test_truncation(self):
        stream = []
        for phase in range(1, 40):
            stream.extend([phase] * 2)
        line = run_summary_line(stream, max_runs=5)
        assert "(+34 runs)" in line
