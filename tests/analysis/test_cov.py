"""Unit tests for the CoV-of-CPI metrics."""

import numpy as np
import pytest

from repro.analysis.cov import cov_of, per_phase_cov, weighted_cov
from repro.core.events import ClassificationResult, ClassificationRun
from repro.errors import TraceError
from repro.workloads.trace import Interval, IntervalTrace


def run_for(ids):
    return ClassificationRun(
        results=[
            ClassificationResult(phase_id=i, matched=True, distance=0.0)
            for i in ids
        ],
        num_phases=len({i for i in ids if i != 0}),
        evictions=0,
    )


def trace_for(cpis):
    return IntervalTrace(
        name="t",
        intervals=[
            Interval(
                branch_pcs=np.array([4]),
                instr_counts=np.array([100]),
                cpi=c,
            )
            for c in cpis
        ],
    )


class TestCovOf:
    def test_constant_values_zero(self):
        assert cov_of(np.array([2.0, 2.0, 2.0])) == 0.0

    def test_known_value(self):
        values = np.array([1.0, 3.0])
        assert cov_of(values) == pytest.approx(1.0 / 2.0)

    def test_single_value_zero(self):
        assert cov_of(np.array([5.0])) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            cov_of(np.array([]))

    def test_zero_mean_rejected(self):
        with pytest.raises(TraceError):
            cov_of(np.array([0.0, 0.0]))


class TestPerPhaseCov:
    def test_groups_by_phase(self):
        run = run_for([1, 1, 2, 2])
        trace = trace_for([1.0, 3.0, 2.0, 2.0])
        covs = per_phase_cov(run, trace)
        assert covs[1] == pytest.approx(0.5)
        assert covs[2] == 0.0

    def test_transition_excluded_by_default(self):
        run = run_for([0, 1, 1])
        trace = trace_for([9.0, 1.0, 1.0])
        covs = per_phase_cov(run, trace)
        assert 0 not in covs

    def test_transition_included_on_request(self):
        run = run_for([0, 0, 1])
        trace = trace_for([1.0, 3.0, 1.0])
        covs = per_phase_cov(run, trace, include_transition=True)
        assert covs[0] == pytest.approx(0.5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            per_phase_cov(run_for([1, 1]), trace_for([1.0]))


class TestWeightedCov:
    def test_weights_by_interval_share(self):
        # Phase 1: 3 intervals CoV x; phase 2: 1 interval CoV 0.
        run = run_for([1, 1, 1, 2])
        trace = trace_for([1.0, 2.0, 3.0, 5.0])
        phase1_cov = cov_of(np.array([1.0, 2.0, 3.0]))
        expected = 0.75 * phase1_cov + 0.25 * 0.0
        assert weighted_cov(run, trace) == pytest.approx(expected)

    def test_transition_excluded_from_weights(self):
        run = run_for([0, 0, 1, 1])
        trace = trace_for([10.0, 90.0, 1.0, 1.0])
        # Only phase 1 counts, and its CoV is zero.
        assert weighted_cov(run, trace) == 0.0

    def test_all_transition_returns_zero(self):
        run = run_for([0, 0])
        trace = trace_for([1.0, 2.0])
        assert weighted_cov(run, trace) == 0.0

    def test_perfect_classification_beats_merged(self):
        # Two behaviours with different CPI: classifying them apart
        # yields lower weighted CoV than lumping them together.
        cpis = [1.0, 1.1, 1.0, 3.0, 3.1, 3.0]
        split = weighted_cov(run_for([1, 1, 1, 2, 2, 2]), trace_for(cpis))
        merged = weighted_cov(run_for([1, 1, 1, 1, 1, 1]), trace_for(cpis))
        assert split < merged
