"""Tests for labeling-agreement metrics."""

import numpy as np
import pytest

from repro.analysis.agreement import (
    adjusted_rand_index,
    contingency_table,
    purity,
    region_agreement,
)
from repro.errors import TraceError


class TestContingency:
    def test_basic_table(self):
        table = contingency_table([1, 1, 2, 2], [0, 0, 0, 1])
        assert table.tolist() == [[2, 0], [1, 1]]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(TraceError):
            contingency_table([1, 2], [1])

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            contingency_table([], [])


class TestPurity:
    def test_identical_partitions(self):
        assert purity([1, 1, 2, 2], [5, 5, 9, 9]) == 1.0

    def test_relabeling_invariant(self):
        a = [1, 1, 2, 2, 3]
        b = [30, 30, 10, 10, 20]
        assert purity(a, b) == 1.0

    def test_half_mixed(self):
        # Cluster 1 = {A, A}, cluster 2 = {A, B}: purity 3/4.
        assert purity([1, 1, 2, 2], [0, 0, 0, 1]) == pytest.approx(0.75)

    def test_single_cluster_purity_is_majority_share(self):
        assert purity([1] * 4, [0, 0, 0, 1]) == pytest.approx(0.75)


class TestARI:
    def test_identical_is_one(self):
        labels = [1, 1, 2, 3, 3, 3]
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_permuted_labels_still_one(self):
        assert adjusted_rand_index(
            [1, 1, 2, 2], [7, 7, 3, 3]
        ) == pytest.approx(1.0)

    def test_random_relabeling_near_zero(self):
        rng = np.random.default_rng(0)
        reference = rng.integers(0, 4, size=2000)
        shuffled = rng.permutation(reference)
        assert abs(adjusted_rand_index(shuffled, reference)) < 0.05

    def test_partial_agreement_between_zero_and_one(self):
        a = [1, 1, 1, 2, 2, 2]
        b = [1, 1, 2, 2, 2, 2]
        score = adjusted_rand_index(a, b)
        assert 0.0 < score < 1.0

    def test_degenerate_single_clusters(self):
        assert adjusted_rand_index([1, 1, 1], [2, 2, 2]) == 1.0

    def test_symmetry(self):
        a = [1, 1, 2, 2, 3, 3]
        b = [1, 2, 2, 3, 3, 3]
        assert adjusted_rand_index(a, b) == pytest.approx(
            adjusted_rand_index(b, a)
        )


class TestRegionAgreement:
    def test_transitions_excluded(self):
        phase_ids = [0, 1, 1, 2, 2, 0]
        regions = [-1, 0, 0, 1, 1, -1]
        result = region_agreement(phase_ids, regions)
        assert result["purity"] == 1.0
        assert result["ari"] == pytest.approx(1.0)
        assert result["intervals"] == 4

    def test_all_transition_rejected(self):
        with pytest.raises(TraceError):
            region_agreement([0, 0], [-1, -1])

    def test_keep_transitions_option(self):
        result = region_agreement(
            [0, 1], [-1, 0], ignore_transitions=False
        )
        assert result["intervals"] == 2

    def test_real_classification_agrees_with_ground_truth(
        self, small_trace, classified_small
    ):
        result = region_agreement(
            classified_small.phase_ids, small_trace.regions
        )
        # The classifier never sees region labels, yet must recover
        # most of the structure.
        assert result["purity"] > 0.7
        assert result["ari"] > 0.4
