"""Unit tests for plain-text table rendering."""

import pytest

from repro.analysis.tables import format_value, render_table


class TestFormatValue:
    def test_percent(self):
        assert format_value(0.254, percent=True) == "25.4"

    def test_int(self):
        assert format_value(42) == "42"

    def test_float_digits(self):
        assert format_value(3.14159, digits=2) == "3.14"

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            format_value(True)


class TestRenderTable:
    def test_rows_and_average(self):
        out = render_table(
            "My Table",
            ["a", "b"],
            {"x": [1.0, 3.0], "y": [2.0, 4.0]},
        )
        assert "My Table" in out
        lines = out.splitlines()
        assert lines[-1].split() == ["avg", "2.0", "3.0"]

    def test_no_average_row(self):
        out = render_table(
            "T", ["a"], {"x": [1.0]}, average_row=False
        )
        assert "avg" not in out

    def test_percent_scaling(self):
        out = render_table("T", ["a"], {"x": [0.5]}, percent=True)
        assert "50.0" in out

    def test_columns_aligned(self):
        out = render_table(
            "T", ["short", "a-much-longer-label"],
            {"value": [1.0, 2.0]},
        )
        lines = [l for l in out.splitlines()[1:] if l.strip()]
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines padded to the same width

    def test_mismatched_column_length_rejected(self):
        with pytest.raises(ValueError):
            render_table("T", ["a", "b"], {"x": [1.0]})

    def test_integer_column_renders_without_decimals(self):
        out = render_table("T", ["a"], {"n": [7]}, average_row=False)
        assert " 7" in out and "7.0" not in out
