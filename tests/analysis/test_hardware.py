"""Tests for the hardware storage-cost model."""

import pytest

from repro.analysis.hardware import (
    HardwareBudget,
    classifier_budget,
    full_architecture_budget,
    predictor_budget,
)
from repro.core.config import ClassifierConfig
from repro.errors import ConfigurationError


class TestClassifierBudget:
    def test_paper_default_fits_in_a_few_hundred_bytes(self):
        budget = classifier_budget(ClassifierConfig.paper_default())
        assert 100 < budget.total_bytes < 2048

    def test_accumulator_bits_exact(self):
        budget = classifier_budget(ClassifierConfig(num_counters=16))
        assert budget.accumulator_bits == 16 * 24

    def test_adaptive_costs_more(self):
        plain = classifier_budget(
            ClassifierConfig(perf_dev_threshold=None)
        )
        adaptive = classifier_budget(
            ClassifierConfig(perf_dev_threshold=0.25)
        )
        assert adaptive.total_bits > plain.total_bits

    def test_more_counters_cost_more(self):
        small = classifier_budget(ClassifierConfig(num_counters=16))
        large = classifier_budget(ClassifierConfig(num_counters=64))
        assert large.total_bits > small.total_bits

    def test_infinite_table_rejected(self):
        with pytest.raises(ConfigurationError):
            classifier_budget(ClassifierConfig(table_entries=None))


class TestPredictorBudget:
    def test_32_entry_table_small(self):
        budget = predictor_budget(entries=32)
        assert budget.total_bytes < 512

    def test_top4_variant_costs_more(self):
        single = predictor_budget(outcomes_per_entry=1)
        top4 = predictor_budget(outcomes_per_entry=4)
        assert top4.total_bits > single.total_bits

    def test_length_predictor_extra(self):
        plain = predictor_budget()
        length = predictor_budget(length_predictor=True)
        assert length.total_bits > plain.total_bits

    @pytest.mark.parametrize("kwargs", [
        {"entries": 0},
        {"rle_depth": -1},
        {"outcomes_per_entry": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            predictor_budget(**kwargs)


class TestFullBudget:
    def test_sum_of_parts(self):
        config = ClassifierConfig.paper_default()
        full = full_architecture_budget(config)
        classifier = classifier_budget(config)
        assert full.accumulator_bits == classifier.accumulator_bits
        assert full.signature_table_bits == classifier.signature_table_bits
        assert full.change_table_bits > 0

    def test_whole_architecture_under_2kb(self):
        """The headline implementability claim: everything fits in a
        couple of kilobytes of SRAM."""
        budget = full_architecture_budget(ClassifierConfig.paper_default())
        assert budget.total_bytes < 2048

    def test_without_length_predictor_cheaper(self):
        config = ClassifierConfig.paper_default()
        with_length = full_architecture_budget(config)
        without = full_architecture_budget(
            config, with_length_predictor=False
        )
        assert without.total_bits < with_length.total_bits
