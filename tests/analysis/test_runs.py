"""Unit tests for run extraction and histograms."""

import pytest

from repro.analysis.runs import (
    PhaseRun,
    extract_runs,
    run_length_histogram,
    runs_by_phase,
)
from repro.errors import TraceError


class TestExtractRuns:
    def test_single_run(self):
        runs = extract_runs([1, 1, 1])
        assert len(runs) == 1
        assert runs[0] == PhaseRun(phase_id=1, start=0, length=3)

    def test_multiple_runs(self):
        runs = extract_runs([1, 1, 2, 0, 0, 0, 1])
        assert [(r.phase_id, r.start, r.length) for r in runs] == [
            (1, 0, 2), (2, 2, 1), (0, 3, 3), (1, 6, 1),
        ]

    def test_lengths_sum_to_stream_length(self):
        stream = [1, 2, 2, 3, 3, 3, 1, 1]
        assert sum(r.length for r in extract_runs(stream)) == len(stream)

    def test_is_transition_flag(self):
        runs = extract_runs([0, 1])
        assert runs[0].is_transition
        assert not runs[1].is_transition

    def test_end_property(self):
        run = PhaseRun(phase_id=1, start=3, length=4)
        assert run.end == 7

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            extract_runs([])


class TestHistogram:
    def test_paper_classes(self):
        runs = [
            PhaseRun(1, 0, 5),       # class 0
            PhaseRun(2, 5, 16),      # class 1
            PhaseRun(3, 21, 500),    # class 2
            PhaseRun(4, 521, 2000),  # class 3
            PhaseRun(5, 2521, 1),    # class 0
        ]
        histogram = run_length_histogram(runs, (1, 16, 128, 1024))
        assert histogram.tolist() == [2, 1, 1, 1]

    def test_boundaries_inclusive(self):
        runs = [PhaseRun(1, 0, 15), PhaseRun(2, 15, 16)]
        histogram = run_length_histogram(runs, (1, 16))
        assert histogram.tolist() == [1, 1]

    def test_invalid_bounds(self):
        with pytest.raises(TraceError):
            run_length_histogram([], (16, 1))
        with pytest.raises(TraceError):
            run_length_histogram([], (0, 16))
        with pytest.raises(TraceError):
            run_length_histogram([], ())


class TestGrouping:
    def test_runs_by_phase(self):
        runs = extract_runs([1, 2, 1, 1])
        grouped = runs_by_phase(runs)
        assert len(grouped[1]) == 2
        assert len(grouped[2]) == 1
