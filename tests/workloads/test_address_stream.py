"""Unit tests for the synthetic memory reference generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulator.cache import Cache, CacheConfig
from repro.workloads import address_stream


class TestStrided:
    def test_addresses_within_working_set(self, rng):
        stream = address_stream.strided(rng, 100, base=0x1000,
                                        working_set_bytes=512)
        assert stream.min() >= 0x1000
        assert stream.max() < 0x1000 + 512

    def test_consecutive_addresses_differ_by_stride(self, rng):
        stream = address_stream.strided(rng, 10, 0, 10_000, stride=8)
        deltas = np.diff(stream)
        # All deltas are +8 except possibly one wrap-around.
        assert np.sum(deltas != 8) <= 1

    def test_invalid_stride(self, rng):
        with pytest.raises(ConfigurationError):
            address_stream.strided(rng, 10, 0, 100, stride=0)


class TestRandom:
    def test_bounds(self, rng):
        stream = address_stream.random_in_working_set(
            rng, 1000, base=0x2000, working_set_bytes=4096
        )
        assert stream.min() >= 0x2000
        assert stream.max() < 0x2000 + 4096

    def test_spread_covers_working_set(self, rng):
        stream = address_stream.random_in_working_set(
            rng, 5000, base=0, working_set_bytes=4096
        )
        assert len(np.unique(stream // 1024)) == 4  # all quarters touched


class TestPointerChase:
    def test_visits_distinct_nodes(self, rng):
        stream = address_stream.pointer_chase(
            rng, 500, base=0, working_set_bytes=64 * 1024, node_bytes=32
        )
        # A permutation walk revisits a node only after a full cycle.
        assert len(np.unique(stream)) > 400

    def test_no_spatial_locality(self, rng):
        stream = address_stream.pointer_chase(
            rng, 1000, base=0, working_set_bytes=1024 * 1024
        )
        deltas = np.abs(np.diff(stream))
        assert np.median(deltas) > 1024  # jumps are large

    def test_cache_hostility_vs_strided(self, rng):
        # The defining property: pointer chase misses far more than a
        # strided walk over the same working set.
        ws = 256 * 1024
        cache_a = Cache(CacheConfig(16 * 1024, 4, 32))
        cache_b = Cache(CacheConfig(16 * 1024, 4, 32))
        chase = address_stream.pointer_chase(rng, 3000, 0, ws)
        walk = address_stream.strided(rng, 3000, 0, ws)
        miss_chase = cache_a.access_many(chase) / 3000
        miss_walk = cache_b.access_many(walk) / 3000
        assert miss_chase > miss_walk + 0.3

    def test_invalid_node_bytes(self, rng):
        with pytest.raises(ConfigurationError):
            address_stream.pointer_chase(rng, 10, 0, 100, node_bytes=0)


class TestMixed:
    def test_length_preserved(self, rng):
        stream = address_stream.mixed(rng, 999, 0, 64 * 1024)
        assert stream.shape == (999,)

    def test_weights_validation(self, rng):
        with pytest.raises(ConfigurationError):
            address_stream.mixed(rng, 10, 0, 1024, weights=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            address_stream.mixed(rng, 10, 0, 1024, weights=(0.0, 0.0, 0.0))
        with pytest.raises(ConfigurationError):
            address_stream.mixed(rng, 10, 0, 1024, weights=(-1.0, 1.0, 1.0))


class TestDispatch:
    @pytest.mark.parametrize("pattern", address_stream.PATTERNS)
    def test_all_patterns_generate(self, rng, pattern):
        stream = address_stream.generate(pattern, rng, 128, 0, 8192)
        assert stream.shape == (128,)
        assert stream.dtype == np.int64

    def test_unknown_pattern_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            address_stream.generate("zigzag", rng, 10, 0, 1024)

    def test_invalid_count(self, rng):
        with pytest.raises(ConfigurationError):
            address_stream.strided(rng, -1, 0, 1024)

    def test_invalid_working_set(self, rng):
        with pytest.raises(ConfigurationError):
            address_stream.strided(rng, 10, 0, 0)

    def test_determinism_under_seed(self):
        a = address_stream.generate(
            "mixed", np.random.default_rng(5), 200, 0, 8192
        )
        b = address_stream.generate(
            "mixed", np.random.default_rng(5), 200, 0, 8192
        )
        assert np.array_equal(a, b)
