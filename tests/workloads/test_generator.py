"""Unit tests for the workload generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.basic_block import CodeRegion
from repro.workloads.generator import TransitionConfig, WorkloadGenerator
from repro.workloads.phase_script import PhaseScript, Segment


def make_generator(rng_seed=0, segments=None, transitions=None,
                   interval_instructions=1_000_000):
    rng = np.random.default_rng(42)
    regions = [
        CodeRegion("a", rng, num_blocks=8, code_base=0x100000,
                   working_set_bytes=8 * 1024),
        CodeRegion("b", rng, num_blocks=8, code_base=0x200000,
                   working_set_bytes=512 * 1024, pattern="random",
                   base_ipc=1.2),
    ]
    script = PhaseScript(segments or [Segment(0, 10), Segment(1, 10),
                                      Segment(0, 10)])
    return WorkloadGenerator(
        "test", regions, script, seed=rng_seed,
        interval_instructions=interval_instructions,
        calibration_events=1024,
        transitions=transitions or TransitionConfig(probability=1.0),
    )


class TestTransitionConfig:
    @pytest.mark.parametrize("kwargs", [
        {"min_length": 0},
        {"min_length": 3, "max_length": 2},
        {"unique_fraction": 1.0},
        {"unique_blocks": 0},
        {"cpi_scale_low": 0.0},
        {"cpi_scale_low": 2.0, "cpi_scale_high": 1.0},
        {"cpi_sigma": -0.1},
        {"probability": 1.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            TransitionConfig(**kwargs)


class TestGeneratorConstruction:
    def test_script_region_bounds_checked(self):
        rng = np.random.default_rng(0)
        region = CodeRegion("only", rng, num_blocks=8)
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(
                "bad", [region], PhaseScript([Segment(1, 5)])
            )

    def test_empty_regions_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadGenerator("bad", [], PhaseScript([Segment(0, 5)]))


class TestGeneration:
    def test_stable_intervals_carry_region_labels(self):
        trace = make_generator().generate()
        stable = [iv for iv in trace if not iv.is_transition]
        assert {iv.region for iv in stable} == {0, 1}

    def test_transitions_inserted_between_regions(self):
        trace = make_generator().generate()
        transitions = [iv for iv in trace if iv.is_transition]
        assert transitions, "expected transition intervals"
        assert all(iv.region == -1 for iv in transitions)

    def test_no_transitions_when_probability_zero(self):
        generator = make_generator(
            transitions=TransitionConfig(probability=0.0)
        )
        trace = generator.generate()
        assert not any(iv.is_transition for iv in trace)

    def test_interval_lengths_exact(self):
        trace = make_generator(interval_instructions=500_000).generate()
        for interval in trace:
            assert interval.instructions == 500_000

    def test_stable_count_matches_script(self):
        trace = make_generator().generate()
        stable = sum(1 for iv in trace if not iv.is_transition)
        assert stable == 30

    def test_cpi_reflects_region_difference(self):
        generator = make_generator()
        trace = generator.generate()
        cals = generator.calibrations()
        cpis_a = [iv.cpi for iv in trace if iv.region == 0]
        cpis_b = [iv.cpi for iv in trace if iv.region == 1]
        assert abs(np.mean(cpis_a) - cals[0].cpi) / cals[0].cpi < 0.3
        assert abs(np.mean(cpis_b) - cals[1].cpi) / cals[1].cpi < 0.3

    def test_transition_records_include_unique_pcs(self):
        generator = make_generator()
        trace = generator.generate()
        region_pcs = set()
        for region in generator.regions:
            region_pcs |= set(region.block_pcs.tolist())
        for interval in trace:
            if interval.is_transition:
                unique = set(interval.branch_pcs.tolist()) - region_pcs
                assert unique, "transition must contain one-off blocks"

    def test_determinism(self):
        a = make_generator(rng_seed=7).generate()
        b = make_generator(rng_seed=7).generate()
        assert len(a) == len(b)
        assert np.allclose(a.cpis, b.cpis)
        for iv_a, iv_b in zip(a, b):
            assert np.array_equal(iv_a.branch_pcs, iv_b.branch_pcs)

    def test_seed_changes_trace(self):
        a = make_generator(rng_seed=1).generate()
        b = make_generator(rng_seed=2).generate()
        assert not np.allclose(a.cpis[: len(b)], b.cpis[: len(a)])

    def test_calibrations_cached(self):
        generator = make_generator()
        assert generator.calibrations() is generator.calibrations()

    def test_metadata(self):
        generator = make_generator()
        trace = generator.generate()
        assert trace.metadata["num_regions"] == 2
        assert len(trace.metadata["region_cpis"]) == 2
