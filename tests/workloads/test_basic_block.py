"""Unit tests for basic blocks, sub-modes and code regions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.basic_block import (
    BasicBlock,
    CodeRegion,
    SubMode,
    make_submodes,
)


class TestBasicBlock:
    def test_valid(self):
        block = BasicBlock(pc=0x400, weight=0.5)
        assert block.pc == 0x400

    def test_negative_pc_rejected(self):
        with pytest.raises(ConfigurationError):
            BasicBlock(pc=-1, weight=0.5)

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            BasicBlock(pc=0, weight=-0.5)


class TestSubMode:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SubMode(weight_multipliers=(-1.0,), cpi_scale=1.0)
        with pytest.raises(ConfigurationError):
            SubMode(weight_multipliers=(1.0,), cpi_scale=0.0)
        with pytest.raises(ConfigurationError):
            SubMode(weight_multipliers=(1.0,), probability=1.5)


class TestCodeRegionConstruction:
    def test_block_pcs_distinct_and_in_segment(self, rng):
        region = CodeRegion("r", rng, num_blocks=32, code_base=0x8000,
                            code_bytes=8192)
        assert len(set(region.block_pcs.tolist())) == 32
        assert region.block_pcs.min() >= 0x8000
        assert region.block_pcs.max() < 0x8000 + 8192

    def test_weights_sum_to_one(self, rng):
        region = CodeRegion("r", rng, num_blocks=16)
        assert region.block_weights.sum() == pytest.approx(1.0)

    def test_blocks_property(self, tiny_region):
        blocks = tiny_region.blocks
        assert len(blocks) == 8
        assert sum(b.weight for b in blocks) == pytest.approx(1.0)

    @pytest.mark.parametrize("kwargs", [
        {"num_blocks": 1},
        {"weight_concentration": 0.0},
        {"cpi_sigma": -0.1},
        {"pattern": "bogus"},
        {"hot_fraction": 1.0},
        {"code_bytes": 4},
    ])
    def test_invalid_construction(self, rng, kwargs):
        params = dict(num_blocks=8, code_bytes=4096)
        params.update(kwargs)
        with pytest.raises(ConfigurationError):
            CodeRegion("bad", rng, **params)

    def test_mismatched_submode_length_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            CodeRegion(
                "bad", rng, num_blocks=8,
                submodes=[SubMode(weight_multipliers=(1.0,) * 4)],
            )


class TestSampling:
    def test_interval_sums_exactly(self, tiny_region, rng):
        pcs, counts, _ = tiny_region.sample_interval_records(
            rng, 10_000_000
        )
        assert counts.sum() == 10_000_000
        assert pcs.shape == counts.shape

    def test_pcs_are_region_blocks(self, tiny_region, rng):
        pcs, _, _ = tiny_region.sample_interval_records(rng, 1_000_000)
        assert set(pcs.tolist()) <= set(tiny_region.block_pcs.tolist())

    def test_submode_index_returned(self, tiny_region, rng):
        _, _, submode = tiny_region.sample_interval_records(rng, 1000)
        assert submode == 0  # single default sub-mode

    def test_explicit_submode_respected(self, rng):
        region = CodeRegion("r", rng, num_blocks=8)
        region.set_submodes(
            make_submodes(rng, 8, cpi_scales=(1.0, 2.0), intensity=0.5)
        )
        _, _, submode = region.sample_interval_records(
            rng, 1000, submode_index=1
        )
        assert submode == 1

    def test_invalid_interval_length(self, tiny_region, rng):
        with pytest.raises(ConfigurationError):
            tiny_region.sample_interval_records(rng, 0)

    def test_invalid_draws(self, tiny_region, rng):
        with pytest.raises(ConfigurationError):
            tiny_region.sample_interval_records(rng, 1000, draws=0)

    def test_more_draws_less_jitter(self, rng):
        region = CodeRegion("r", rng, num_blocks=16)

        def spread(draws):
            samples = []
            for _ in range(20):
                pcs, counts, _ = region.sample_interval_records(
                    rng, 1_000_000, draws=draws, submode_index=0
                )
                full = dict(zip(pcs.tolist(), counts.tolist()))
                samples.append(
                    [full.get(int(pc), 0) for pc in region.block_pcs]
                )
            return np.array(samples, dtype=float).std(axis=0).sum()

        assert spread(8000) < spread(200)


class TestSubmodes:
    def test_make_submodes_shapes(self, rng):
        modes = make_submodes(rng, 10, cpi_scales=(1.0, 1.5), intensity=0.3)
        assert len(modes) == 2
        assert all(len(m.weight_multipliers) == 10 for m in modes)
        assert modes[1].cpi_scale == 1.5

    def test_make_submodes_validation(self, rng):
        with pytest.raises(ConfigurationError):
            make_submodes(rng, 10, cpi_scales=())
        with pytest.raises(ConfigurationError):
            make_submodes(rng, 10, cpi_scales=(1.0,), intensity=1.0)

    def test_set_submodes_probability_override(self, rng):
        region = CodeRegion("r", rng, num_blocks=8)
        region.set_submodes(
            make_submodes(rng, 8, cpi_scales=(1.0, 2.0)),
            probabilities=[1.0, 0.0],
        )
        picks = {region.pick_submode(rng) for _ in range(50)}
        assert picks == {0}

    def test_set_submodes_validation(self, rng):
        region = CodeRegion("r", rng, num_blocks=8)
        with pytest.raises(ConfigurationError):
            region.set_submodes([])
        with pytest.raises(ConfigurationError):
            region.set_submodes(
                make_submodes(rng, 8, cpi_scales=(1.0,)),
                probabilities=[0.5, 0.5],
            )

    def test_submode_weights_normalized(self, rng):
        region = CodeRegion("r", rng, num_blocks=8)
        region.set_submodes(
            make_submodes(rng, 8, cpi_scales=(1.0, 2.0), intensity=0.5)
        )
        for index in range(2):
            assert region.submode_weights(index).sum() == pytest.approx(1.0)


class TestSibling:
    def test_sibling_shares_pcs_differs_in_weights(self, rng):
        base = CodeRegion("base", rng, num_blocks=16)
        sibling = CodeRegion.sibling(base, rng, "sib", weight_jitter=0.5)
        assert np.array_equal(base.block_pcs, sibling.block_pcs)
        assert not np.allclose(base.block_weights, sibling.block_weights)
        assert sibling.block_weights.sum() == pytest.approx(1.0)

    def test_cpi_scale_hint_changes_base_ipc(self, rng):
        base = CodeRegion("base", rng, num_blocks=16, base_ipc=2.0)
        sibling = CodeRegion.sibling(
            base, rng, "sib", cpi_scale_hint=2.0
        )
        assert sibling.base_ipc == pytest.approx(1.0)

    def test_overrides_forwarded(self, rng):
        base = CodeRegion("base", rng, num_blocks=16)
        sibling = CodeRegion.sibling(
            base, rng, "sib", working_set_bytes=1 << 20
        )
        assert sibling.working_set_bytes == 1 << 20

    def test_negative_jitter_rejected(self, rng):
        base = CodeRegion("base", rng, num_blocks=16)
        with pytest.raises(ConfigurationError):
            CodeRegion.sibling(base, rng, "sib", weight_jitter=-1.0)


class TestSampledStream:
    def test_stream_counts(self, tiny_region, rng):
        stream = tiny_region.sampled_stream(rng, events=512)
        assert stream.num_data_refs == 512
        assert stream.num_branches == 512
        assert stream.num_fetches > 0

    def test_invalid_events(self, tiny_region, rng):
        with pytest.raises(ConfigurationError):
            tiny_region.sampled_stream(rng, events=0)

    def test_hot_fraction_shrinks_data_footprint(self, rng):
        hot = CodeRegion("hot", rng, num_blocks=8, hot_fraction=0.95,
                         working_set_bytes=1 << 20, pattern="random")
        cold = CodeRegion("cold", rng, num_blocks=8, hot_fraction=0.0,
                          working_set_bytes=1 << 20, pattern="random")
        hot_stream = hot.sampled_stream(rng, events=2000)
        cold_stream = cold.sampled_stream(rng, events=2000)
        hot_unique = len(np.unique(hot_stream.data_addresses // 4096))
        cold_unique = len(np.unique(cold_stream.data_addresses // 4096))
        assert hot_unique < cold_unique
