"""Unit tests for phase scripts and pattern builders."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.phase_script import (
    PhaseScript,
    Segment,
    alternating_pattern,
    hierarchical_pattern,
    irregular_pattern,
    stable_pattern,
)

PATTERNS = (
    lambda rng, n, total: stable_pattern(rng, n, total, 20, 60),
    lambda rng, n, total: hierarchical_pattern(rng, n, total, 4, 12),
    lambda rng, n, total: irregular_pattern(rng, n, total, 2, 8),
    lambda rng, n, total: alternating_pattern(rng, n, total, 5, 15),
)


class TestSegment:
    def test_negative_region_rejected(self):
        with pytest.raises(ConfigurationError):
            Segment(region=-1, length=5)

    def test_zero_length_rejected(self):
        with pytest.raises(ConfigurationError):
            Segment(region=0, length=0)


class TestPhaseScript:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            PhaseScript([])

    def test_totals(self):
        script = PhaseScript([Segment(0, 5), Segment(1, 3)])
        assert script.total_intervals == 8
        assert script.num_segments == 2
        assert script.regions_used() == [0, 1]

    def test_coalesced_merges_adjacent_same_region(self):
        script = PhaseScript(
            [Segment(0, 5), Segment(0, 3), Segment(1, 2), Segment(0, 1)]
        )
        merged = script.coalesced()
        assert [(s.region, s.length) for s in merged.segments] == [
            (0, 8), (1, 2), (0, 1),
        ]

    def test_coalesced_never_has_adjacent_duplicates(self, rng):
        for build in PATTERNS:
            script = build(rng, 4, 300)
            regions = [s.region for s in script.segments]
            assert all(a != b for a, b in zip(regions, regions[1:]))


class TestPatternBuilders:
    @pytest.mark.parametrize("build", PATTERNS)
    def test_total_intervals_exact(self, rng, build):
        script = build(rng, 4, 500)
        assert script.total_intervals == 500

    @pytest.mark.parametrize("build", PATTERNS)
    def test_regions_within_bounds(self, rng, build):
        script = build(rng, 3, 300)
        assert max(script.regions_used()) < 3

    @pytest.mark.parametrize("build", PATTERNS)
    def test_invalid_args(self, rng, build):
        with pytest.raises(ConfigurationError):
            build(rng, 0, 100)
        with pytest.raises(ConfigurationError):
            build(rng, 3, 0)

    def test_stable_has_few_long_segments(self, rng):
        script = stable_pattern(rng, 3, 1000, min_length=100,
                                max_length=300)
        assert script.num_segments <= 12

    def test_irregular_has_many_short_segments(self, rng):
        script = irregular_pattern(rng, 8, 1000, min_length=2, max_length=8)
        assert script.num_segments >= 100

    def test_alternating_constant_period(self, rng):
        script = alternating_pattern(rng, 4, 400, period_min=10,
                                     period_max=10)
        lengths = {s.length for s in script.segments[:-1]}
        assert lengths == {10}

    def test_hierarchical_lengths_are_characteristic(self, rng):
        script = hierarchical_pattern(
            rng, 4, 2000, inner_min=5, inner_max=30, length_jitter=0.0
        )
        by_region = {}
        for segment in script.segments[:-1]:
            by_region.setdefault(segment.region, set()).add(segment.length)
        # With zero jitter every visit reuses the characteristic length.
        assert all(len(lengths) == 1 for lengths in by_region.values())

    def test_irregular_revisit_bias_validation(self, rng):
        with pytest.raises(ConfigurationError):
            irregular_pattern(rng, 4, 100, revisit_bias=2.0)

    def test_length_jitter_validation(self, rng):
        with pytest.raises(ConfigurationError):
            stable_pattern(rng, 3, 100, length_jitter=-0.1)
        with pytest.raises(ConfigurationError):
            hierarchical_pattern(rng, 3, 100, length_jitter=1.1)

    def test_hierarchical_outer_cycle_validation(self, rng):
        with pytest.raises(ConfigurationError):
            hierarchical_pattern(rng, 3, 100, outer_cycle=0)

    def test_determinism(self):
        a = irregular_pattern(np.random.default_rng(9), 5, 400)
        b = irregular_pattern(np.random.default_rng(9), 5, 400)
        assert [(s.region, s.length) for s in a.segments] == [
            (s.region, s.length) for s in b.segments
        ]


class TestParseScript:
    def test_basic(self):
        from repro.workloads.phase_script import parse_script

        script = parse_script("a:20 b:35 a:20 c:8")
        assert [(s.region, s.length) for s in script.segments] == [
            (0, 20), (1, 35), (0, 20), (2, 8),
        ]

    def test_adjacent_same_region_coalesced(self):
        from repro.workloads.phase_script import parse_script

        script = parse_script("x:5 x:5 y:3")
        assert [(s.region, s.length) for s in script.segments] == [
            (0, 10), (1, 3),
        ]

    @pytest.mark.parametrize("bad", ["", "a", "a:", ":5", "a:x", "a:0"])
    def test_malformed_rejected(self, bad):
        from repro.workloads.phase_script import parse_script

        with pytest.raises(ConfigurationError):
            parse_script(bad)

    def test_round_trips_through_generator(self, rng):
        from repro.workloads.basic_block import CodeRegion
        from repro.workloads.generator import WorkloadGenerator
        from repro.workloads.phase_script import parse_script

        script = parse_script("hot:10 cold:10")
        regions = [
            CodeRegion("hot", rng, num_blocks=8, code_base=0x100000),
            CodeRegion("cold", rng, num_blocks=8, code_base=0x200000),
        ]
        trace = WorkloadGenerator(
            "parsed", regions, script, seed=1, calibration_events=512
        ).generate()
        stable = sum(1 for iv in trace if not iv.is_transition)
        assert stable == 20
