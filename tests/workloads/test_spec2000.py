"""Tests for the eleven synthetic SPEC 2000 benchmark models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.spec2000 import (
    BENCHMARK_NAMES,
    benchmark,
    build_benchmark,
    spec,
)


class TestRegistry:
    def test_eleven_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 11

    def test_paper_names_present(self):
        for name in ("ammp", "bzip2/g", "bzip2/p", "galgel", "gcc/1",
                     "gcc/s", "gzip/g", "gzip/p", "mcf", "perl/d",
                     "perl/s"):
            assert name in BENCHMARK_NAMES

    def test_spec_lookup(self):
        descriptor = spec("mcf")
        assert descriptor.name == "mcf"
        assert descriptor.nominal_intervals > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            spec("sphinx")
        with pytest.raises(ConfigurationError):
            build_benchmark("sphinx")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            build_benchmark("mcf", scale=0.0)


class TestBuilders:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_every_benchmark_builds(self, name):
        generator = build_benchmark(name, scale=0.05)
        assert generator.regions
        assert generator.script.total_intervals >= 20

    def test_scale_controls_length(self):
        small = build_benchmark("gcc/1", scale=0.1)
        large = build_benchmark("gcc/1", scale=0.3)
        assert (
            small.script.total_intervals < large.script.total_intervals
        )

    def test_mcf_has_submodes(self):
        generator = build_benchmark("mcf", scale=0.05)
        assert len(generator.regions[0].submodes) == 2

    def test_galgel_has_sibling_regions(self):
        generator = build_benchmark("galgel", scale=0.05)
        solver, sibling = generator.regions[0], generator.regions[1]
        assert np.array_equal(solver.block_pcs, sibling.block_pcs)

    def test_region_code_segments_disjoint_for_gcc(self):
        generator = build_benchmark("gcc/1", scale=0.05)
        all_pcs = [set(r.block_pcs.tolist()) for r in generator.regions]
        for i in range(len(all_pcs)):
            for j in range(i + 1, len(all_pcs)):
                assert not (all_pcs[i] & all_pcs[j])


class TestGeneratedTraces:
    def test_trace_has_transitions_and_stable(self):
        trace = benchmark("bzip2/g", scale=0.1)
        mask = trace.transition_mask
        assert mask.any()
        assert (~mask).any()

    def test_determinism_across_calls(self):
        a = benchmark("gzip/p", scale=0.1)
        b = benchmark("gzip/p", scale=0.1)
        assert np.allclose(a.cpis, b.cpis)

    def test_seed_override_changes_structure(self):
        a = benchmark("gzip/p", scale=0.1)
        b = benchmark("gzip/p", scale=0.1, seed=999)
        different_length = len(a) != len(b)
        different_cpi = (
            not different_length
            and not np.allclose(a.cpis, b.cpis)
        )
        assert different_length or different_cpi

    def test_mcf_is_slowest_benchmark(self):
        mcf = benchmark("mcf", scale=0.05)
        gzip = benchmark("gzip/g", scale=0.05)
        # Pointer-chasing with 4 MB working sets must dominate CPI.
        assert max(mcf.metadata["region_cpis"]) > max(
            gzip.metadata["region_cpis"]
        )

    def test_region_cpis_positive_and_sane(self):
        for name in ("ammp", "gcc/s", "mcf"):
            cpis = benchmark(name, scale=0.05).metadata["region_cpis"]
            assert all(0.2 < cpi < 20 for cpi in cpis)


class TestAllBenchmarks:
    def test_generates_all_eleven(self):
        from repro.workloads.spec2000 import all_benchmarks

        traces = all_benchmarks(scale=0.05)
        assert set(traces) == set(BENCHMARK_NAMES)
        assert all(len(trace) >= 20 for trace in traces.values())
