"""Characterization tests: microbenchmarks vs the machine model.

Each microbenchmark stresses exactly one structure; its calibration
against the Table 1 machine must show the expected signature. These
are end-to-end checks of the whole substrate (address streams, branch
streams, caches, predictors, TLB, core model) with known answers.
"""

import numpy as np
import pytest

from repro.simulator import Machine
from repro.workloads.microbench import (
    ALL_MICROBENCHMARKS,
    branchy,
    icache_heavy,
    pointer_chase,
    streaming,
)


@pytest.fixture(scope="module")
def calibrations():
    machine = Machine()
    rng = np.random.default_rng(11)
    return {
        name: machine.calibrate(
            factory(np.random.default_rng(17)).sampled_stream(
                rng, events=4096
            )
        )
        for name, factory in ALL_MICROBENCHMARKS.items()
    }


class TestCharacterization:
    def test_stream_is_fastest(self, calibrations):
        stream_cpi = calibrations["stream"].cpi
        assert all(
            stream_cpi <= cal.cpi
            for name, cal in calibrations.items()
            if name != "stream"
        )

    def test_chase_is_slowest(self, calibrations):
        chase_cpi = calibrations["chase"].cpi
        assert all(
            chase_cpi >= cal.cpi
            for name, cal in calibrations.items()
            if name != "chase"
        )

    def test_chase_dominated_by_memory(self, calibrations):
        chase = calibrations["chase"]
        assert chase.dl1_miss_ratio > 0.3
        assert chase.l2_miss_ratio > 0.3

    def test_branchy_worst_predictor_accuracy(self, calibrations):
        branchy_ratio = calibrations["branchy"].branch_mispredict_ratio
        assert branchy_ratio > 0.2
        assert all(
            branchy_ratio >= cal.branch_mispredict_ratio
            for name, cal in calibrations.items()
            if name != "branchy"
        )

    def test_icache_heavy_worst_fetch(self, calibrations):
        icache_ratio = calibrations["icache"].il1_miss_ratio
        assert all(
            icache_ratio >= cal.il1_miss_ratio
            for name, cal in calibrations.items()
            if name != "icache"
        )

    def test_stream_near_ideal(self, calibrations):
        stream = calibrations["stream"]
        assert stream.dl1_miss_ratio < 0.05
        assert stream.cpi < 1.0


class TestAsWorkloads:
    def test_microbenchmarks_classify_distinctly(self):
        """A program alternating between two microbenchmarks must
        classify into (at least) two phases."""
        from repro.core import ClassifierConfig, PhaseClassifier
        from repro.workloads import PhaseScript, Segment, WorkloadGenerator

        rng = np.random.default_rng(5)
        regions = [streaming(rng), pointer_chase(rng)]
        script = PhaseScript(
            [Segment(0, 15), Segment(1, 15), Segment(0, 15)]
        )
        trace = WorkloadGenerator(
            "ubench-mix", regions, script, seed=2,
            calibration_events=1024,
        ).generate()
        run = PhaseClassifier(
            ClassifierConfig(min_count_threshold=0)
        ).classify_trace(trace)
        assert run.num_phases >= 2
