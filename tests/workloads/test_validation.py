"""Tests for the workload separability diagnostic."""

import numpy as np
import pytest

from repro.core import ClassifierConfig
from repro.errors import ConfigurationError
from repro.workloads.basic_block import CodeRegion
from repro.workloads.spec2000 import build_benchmark
from repro.workloads.validation import check_separability


def make_regions(rng, n=3, disjoint=True):
    regions = []
    for index in range(n):
        base = 0x100000 * (index + 1) if disjoint else 0x100000
        regions.append(
            CodeRegion(f"r{index}", rng, num_blocks=24, code_base=base)
        )
    return regions


class TestCheckSeparability:
    def test_disjoint_regions_classifiable(self, rng):
        report = check_separability(make_regions(rng))
        assert report.classifiable
        assert report.min_separation > report.threshold
        assert report.max_jitter < report.threshold

    def test_within_jitter_small(self, rng):
        report = check_separability(make_regions(rng, n=1))
        assert report.max_jitter < 0.1
        assert report.cross_separation == {}
        assert report.min_separation == float("inf")

    def test_sibling_regions_flagged_ambiguous(self, rng):
        base = CodeRegion("base", rng, num_blocks=32)
        # A barely-jittered sibling sits inside the guard band.
        sibling = CodeRegion.sibling(base, rng, "sib", weight_jitter=0.15)
        report = check_separability([base, sibling])
        assert (0, 1) in report.ambiguous_pairs() or not report.classifiable

    def test_summary_text(self, rng):
        report = check_separability(make_regions(rng, n=2))
        text = report.summary()
        assert "classifiable" in text
        assert "jitter" in text

    def test_validation_errors(self, rng):
        with pytest.raises(ConfigurationError):
            check_separability([])
        with pytest.raises(ConfigurationError):
            check_separability(make_regions(rng), samples_per_region=1)

    def test_threshold_follows_config(self, rng):
        config = ClassifierConfig(similarity_threshold=0.125)
        report = check_separability(make_regions(rng), config=config)
        assert report.threshold == 0.125

    def test_deterministic(self, rng):
        regions = make_regions(rng)
        a = check_separability(regions, seed=5)
        b = check_separability(regions, seed=5)
        assert a.within_jitter == b.within_jitter
        assert a.cross_separation == b.cross_separation


class TestShippedModels:
    @pytest.mark.parametrize("name", ["ammp", "bzip2/g", "mcf", "gcc/1"])
    def test_shipped_benchmarks_classifiable(self, name):
        generator = build_benchmark(name, scale=0.05)
        report = check_separability(
            generator.regions,
            config=ClassifierConfig(similarity_threshold=0.25),
            samples_per_region=6,
        )
        # Within-region jitter must sit inside the threshold for every
        # shipped model (separation may be deliberately ambiguous for
        # sub-moded regions, so only jitter is asserted universally).
        assert report.max_jitter < 0.25

    def test_galgel_deliberately_ambiguous(self):
        generator = build_benchmark("galgel", scale=0.05)
        report = check_separability(
            generator.regions,
            config=ClassifierConfig(similarity_threshold=0.25),
            samples_per_region=6,
        )
        # The sibling solver variants are the designed-in hard case:
        # their separations hug the threshold region (within 3x).
        assert report.min_separation < 0.75
