"""Per-benchmark structural assertions for the SPEC 2000 models.

Each synthetic benchmark's documented character (DESIGN.md §2, the
spec2000 module docstring) is pinned down so refactors cannot silently
change a workload's personality.
"""

import numpy as np
import pytest

from repro.workloads.phase_script import PhaseScript
from repro.workloads.spec2000 import BENCHMARK_NAMES, build_benchmark

SCALE = 0.05


@pytest.fixture(scope="module")
def generators():
    return {name: build_benchmark(name, scale=SCALE)
            for name in BENCHMARK_NAMES}


class TestRegionCounts:
    @pytest.mark.parametrize("name,expected", [
        ("ammp", 3), ("bzip2/g", 5), ("bzip2/p", 5), ("galgel", 4),
        ("gcc/1", 12), ("gcc/s", 14), ("gzip/g", 3), ("gzip/p", 4),
        ("mcf", 3), ("perl/d", 4), ("perl/s", 6),
    ])
    def test_region_count(self, generators, name, expected):
        assert len(generators[name].regions) == expected


class TestPersonalities:
    def test_mcf_is_pointer_bound(self, generators):
        patterns = [r.pattern for r in generators["mcf"].regions]
        assert patterns.count("pointer") >= 2
        assert max(
            r.working_set_bytes for r in generators["mcf"].regions
        ) >= 2 << 20

    def test_gcc_has_large_code_footprint(self, generators):
        for name in ("gcc/1", "gcc/s"):
            assert all(
                r.code_bytes >= 64 * 1024
                for r in generators[name].regions
            )

    def test_submode_benchmarks(self, generators):
        """mcf and perl/s carry CPI sub-modes (the Fig. 6 mechanism);
        the stable benchmarks do not."""
        assert len(generators["mcf"].regions[0].submodes) == 2
        perl_s_modes = [
            len(r.submodes) for r in generators["perl/s"].regions
        ]
        assert perl_s_modes.count(2) == 2
        for name in ("ammp", "gzip/g", "perl/d"):
            assert all(
                len(r.submodes) == 1
                for r in generators[name].regions
            )

    def test_galgel_siblings_share_blocks(self, generators):
        regions = generators["galgel"].regions
        assert np.array_equal(regions[0].block_pcs, regions[1].block_pcs)
        assert np.array_equal(regions[0].block_pcs, regions[2].block_pcs)
        assert not np.array_equal(
            regions[0].block_pcs, regions[3].block_pcs
        )


class TestScripts:
    def test_stable_benchmarks_have_few_segments(self, generators):
        # At scale, ammp/gzip-g/perl-d stay in single-digit segments.
        for name in ("ammp", "gzip/g", "perl/d"):
            script: PhaseScript = generators[name].script
            assert script.num_segments <= max(
                6, script.total_intervals // 40
            )

    def test_gcc_benchmarks_have_many_segments(self, generators):
        for name in ("gcc/1", "gcc/s"):
            script = generators[name].script
            # Average segment length in the irregular range.
            assert script.total_intervals / script.num_segments < 12

    def test_transition_configs_differ(self, generators):
        # gcc transitions more (higher unique fraction) than ammp.
        gcc = generators["gcc/s"].transitions
        ammp = generators["ammp"].transitions
        assert gcc.unique_fraction >= ammp.unique_fraction

    def test_all_scripts_reference_valid_regions(self, generators):
        for name, generator in generators.items():
            used = generator.script.regions_used()
            assert max(used) < len(generator.regions), name
