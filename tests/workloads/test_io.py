"""Tests for trace serialization."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.workloads.io import load_trace, save_trace
from repro.workloads.trace import Interval, IntervalTrace


def small_synthetic_trace():
    intervals = [
        Interval(
            branch_pcs=np.array([4, 8, 12]),
            instr_counts=np.array([10, 20, 70]),
            cpi=1.5,
            region=0,
        ),
        Interval(
            branch_pcs=np.array([100]),
            instr_counts=np.array([100]),
            cpi=2.5,
            region=-1,
            is_transition=True,
        ),
    ]
    return IntervalTrace(
        "synthetic", intervals, interval_instructions=100,
        metadata={"seed": 7, "region_cpis": [1.5, 2.5]},
    )


class TestRoundTrip:
    def test_exact_round_trip(self, tmp_path):
        trace = small_synthetic_trace()
        path = save_trace(trace, tmp_path / "trace")
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.interval_instructions == trace.interval_instructions
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert np.array_equal(a.branch_pcs, b.branch_pcs)
            assert np.array_equal(a.instr_counts, b.instr_counts)
            assert a.cpi == b.cpi
            assert a.region == b.region
            assert a.is_transition == b.is_transition

    def test_metadata_preserved(self, tmp_path):
        path = save_trace(small_synthetic_trace(), tmp_path / "t")
        loaded = load_trace(path)
        assert loaded.metadata["seed"] == 7

    def test_npz_suffix_appended(self, tmp_path):
        path = save_trace(small_synthetic_trace(), tmp_path / "bare")
        assert path.suffix == ".npz"

    def test_real_benchmark_round_trip(self, tmp_path, small_trace):
        path = save_trace(small_trace, tmp_path / "bench")
        loaded = load_trace(path)
        assert np.allclose(loaded.cpis, small_trace.cpis)
        assert np.array_equal(loaded.regions, small_trace.regions)

    def test_classification_identical_after_reload(self, tmp_path,
                                                   small_trace):
        from repro.core import ClassifierConfig, PhaseClassifier

        path = save_trace(small_trace, tmp_path / "bench")
        loaded = load_trace(path)
        a = PhaseClassifier(
            ClassifierConfig.paper_default()
        ).classify_trace(small_trace)
        b = PhaseClassifier(
            ClassifierConfig.paper_default()
        ).classify_trace(loaded)
        assert np.array_equal(a.phase_ids, b.phase_ids)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "absent.npz")

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(TraceError):
            load_trace(path)
