"""Unit tests for the synthetic branch outcome generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads import branch_stream


class TestLoopBranch:
    def test_taken_rate_matches_trip_count(self, rng):
        outcomes = branch_stream.loop_branch_outcomes(rng, 1600, trip_count=16)
        assert outcomes.mean() == pytest.approx(15 / 16, abs=0.01)

    def test_periodic_structure(self, rng):
        outcomes = branch_stream.loop_branch_outcomes(rng, 64, trip_count=8)
        not_taken = np.nonzero(~outcomes)[0]
        assert np.all(np.diff(not_taken) == 8)

    def test_trip_count_validation(self, rng):
        with pytest.raises(ConfigurationError):
            branch_stream.loop_branch_outcomes(rng, 10, trip_count=1)

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            branch_stream.loop_branch_outcomes(rng, -1, trip_count=4)


class TestBiased:
    def test_bias_respected(self, rng):
        outcomes = branch_stream.biased_outcomes(rng, 10_000, 0.7)
        assert outcomes.mean() == pytest.approx(0.7, abs=0.03)

    @pytest.mark.parametrize("p", [-0.1, 1.1])
    def test_probability_range(self, rng, p):
        with pytest.raises(ConfigurationError):
            branch_stream.biased_outcomes(rng, 10, p)

    def test_extremes(self, rng):
        assert branch_stream.biased_outcomes(rng, 100, 1.0).all()
        assert not branch_stream.biased_outcomes(rng, 100, 0.0).any()


class TestRegionSample:
    def setup_method(self):
        self.pcs = np.arange(0x400, 0x400 + 40 * 4, 4, dtype=np.int64)
        self.weights = np.ones(40)

    def test_shapes(self, rng):
        pcs, taken = branch_stream.region_branch_sample(
            rng, self.pcs, self.weights, count=500,
            loop_fraction=0.5, data_bias=0.6,
        )
        assert pcs.shape == (500,)
        assert taken.shape == (500,)

    def test_pcs_drawn_from_population(self, rng):
        pcs, _ = branch_stream.region_branch_sample(
            rng, self.pcs, self.weights, count=500,
            loop_fraction=0.5, data_bias=0.6,
        )
        assert set(pcs.tolist()) <= set(self.pcs.tolist())

    def test_weights_shift_distribution(self, rng):
        skewed = np.zeros(40)
        skewed[0] = 1.0
        pcs, _ = branch_stream.region_branch_sample(
            rng, self.pcs, skewed, count=200,
            loop_fraction=0.5, data_bias=0.6,
        )
        assert np.all(pcs == self.pcs[0])

    def test_loop_fraction_one_highly_taken(self, rng):
        _, taken = branch_stream.region_branch_sample(
            rng, self.pcs, self.weights, count=2000,
            loop_fraction=1.0, data_bias=0.0, trip_count=16,
        )
        assert taken.mean() > 0.9

    def test_loop_fraction_zero_follows_bias(self, rng):
        _, taken = branch_stream.region_branch_sample(
            rng, self.pcs, self.weights, count=5000,
            loop_fraction=0.0, data_bias=0.3,
        )
        assert taken.mean() == pytest.approx(0.3, abs=0.05)

    def test_empty_population_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            branch_stream.region_branch_sample(
                rng, np.array([], dtype=np.int64), np.array([]),
                count=10, loop_fraction=0.5, data_bias=0.5,
            )

    def test_mismatched_arrays_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            branch_stream.region_branch_sample(
                rng, self.pcs, self.weights[:-1], count=10,
                loop_fraction=0.5, data_bias=0.5,
            )

    def test_zero_weights_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            branch_stream.region_branch_sample(
                rng, self.pcs, np.zeros(40), count=10,
                loop_fraction=0.5, data_bias=0.5,
            )

    def test_loop_fraction_validation(self, rng):
        with pytest.raises(ConfigurationError):
            branch_stream.region_branch_sample(
                rng, self.pcs, self.weights, count=10,
                loop_fraction=1.5, data_bias=0.5,
            )
