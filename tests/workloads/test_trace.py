"""Unit tests for interval traces."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.workloads.trace import (
    DEFAULT_INTERVAL_INSTRUCTIONS,
    Interval,
    IntervalTrace,
    concatenate_traces,
)


def make_interval(cpi=1.0, n=4, region=0, transition=False):
    return Interval(
        branch_pcs=np.arange(n, dtype=np.int64) * 4,
        instr_counts=np.full(n, 100, dtype=np.int64),
        cpi=cpi,
        region=region,
        is_transition=transition,
    )


class TestInterval:
    def test_instructions_total(self):
        assert make_interval(n=5).instructions == 500

    def test_num_records(self):
        assert make_interval(n=7).num_records == 7

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(TraceError):
            Interval(
                branch_pcs=np.array([1, 2]),
                instr_counts=np.array([1]),
                cpi=1.0,
            )

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            Interval(
                branch_pcs=np.array([], dtype=np.int64),
                instr_counts=np.array([], dtype=np.int64),
                cpi=1.0,
            )

    def test_negative_counts_rejected(self):
        with pytest.raises(TraceError):
            Interval(
                branch_pcs=np.array([4]),
                instr_counts=np.array([-1]),
                cpi=1.0,
            )

    @pytest.mark.parametrize("cpi", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_cpi_rejected(self, cpi):
        with pytest.raises(TraceError):
            make_interval(cpi=cpi)

    def test_two_dimensional_rejected(self):
        with pytest.raises(TraceError):
            Interval(
                branch_pcs=np.zeros((2, 2), dtype=np.int64),
                instr_counts=np.zeros((2, 2), dtype=np.int64),
                cpi=1.0,
            )


class TestIntervalTrace:
    def make_trace(self, cpis=(1.0, 2.0, 3.0)):
        return IntervalTrace(
            name="t",
            intervals=[make_interval(cpi=c) for c in cpis],
        )

    def test_len_iter_getitem(self):
        trace = self.make_trace()
        assert len(trace) == 3
        assert trace[1].cpi == 2.0
        assert [iv.cpi for iv in trace] == [1.0, 2.0, 3.0]

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            IntervalTrace(name="e", intervals=[])

    def test_default_granularity(self):
        assert self.make_trace().interval_instructions == (
            DEFAULT_INTERVAL_INSTRUCTIONS
        )

    def test_cpis_array(self):
        assert np.allclose(self.make_trace().cpis, [1.0, 2.0, 3.0])

    def test_regions_and_transition_mask(self):
        trace = IntervalTrace(
            name="t",
            intervals=[
                make_interval(region=0),
                make_interval(region=-1, transition=True),
            ],
        )
        assert trace.regions.tolist() == [0, -1]
        assert trace.transition_mask.tolist() == [False, True]

    def test_whole_program_cov(self):
        trace = self.make_trace(cpis=(1.0, 1.0, 1.0))
        assert trace.whole_program_cov() == 0.0
        varied = self.make_trace(cpis=(1.0, 3.0))
        assert varied.whole_program_cov() == pytest.approx(0.5)

    def test_slice(self):
        trace = self.make_trace()
        sub = trace.slice(1)
        assert len(sub) == 2
        assert sub[0].cpi == 2.0

    def test_empty_slice_rejected(self):
        with pytest.raises(TraceError):
            self.make_trace().slice(3)

    def test_total_instructions(self):
        assert self.make_trace().total_instructions == 3 * 400


class TestConcatenate:
    def test_concatenates(self):
        a = IntervalTrace("a", [make_interval(cpi=1.0)])
        b = IntervalTrace("b", [make_interval(cpi=2.0)])
        merged = concatenate_traces("ab", [a, b])
        assert len(merged) == 2
        assert merged.name == "ab"

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            concatenate_traces("x", [])

    def test_rejects_mixed_granularity(self):
        a = IntervalTrace("a", [make_interval()], interval_instructions=100)
        b = IntervalTrace("b", [make_interval()], interval_instructions=200)
        with pytest.raises(TraceError):
            concatenate_traces("x", [a, b])
