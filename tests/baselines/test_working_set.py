"""Tests for the working-set signature phase detector."""

import numpy as np
import pytest

from repro.baselines.working_set import (
    WorkingSetClassifier,
    WorkingSetConfig,
    WorkingSetSignature,
)
from repro.errors import ConfigurationError
from repro.workloads.trace import Interval, IntervalTrace


def interval_for(pcs, instructions=1000):
    pcs = np.asarray(pcs, dtype=np.int64)
    counts = np.full(pcs.shape, instructions // max(len(pcs), 1),
                     dtype=np.int64)
    counts[0] += instructions - counts.sum()
    return Interval(pcs, counts, cpi=1.0)


PCS_A = np.arange(0x1000, 0x1000 + 64 * 32, 32)
PCS_B = np.arange(0x90000, 0x90000 + 64 * 32, 32)


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"signature_bits": 1000},
        {"signature_bits": 0},
        {"granularity_bytes": 33},
        {"threshold": 0.0},
        {"threshold": 1.5},
        {"table_entries": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            WorkingSetConfig(**kwargs)


class TestSignature:
    def test_identical_intervals_zero_distance(self):
        config = WorkingSetConfig()
        a = WorkingSetSignature.from_interval(interval_for(PCS_A), config)
        b = WorkingSetSignature.from_interval(interval_for(PCS_A), config)
        assert a.distance(b) == 0.0

    def test_disjoint_code_distance_near_one(self):
        config = WorkingSetConfig()
        a = WorkingSetSignature.from_interval(interval_for(PCS_A), config)
        b = WorkingSetSignature.from_interval(interval_for(PCS_B), config)
        assert a.distance(b) > 0.8

    def test_distance_symmetric_and_bounded(self):
        config = WorkingSetConfig()
        a = WorkingSetSignature.from_interval(interval_for(PCS_A), config)
        b = WorkingSetSignature.from_interval(
            interval_for(np.concatenate([PCS_A[:32], PCS_B[:32]])), config
        )
        assert a.distance(b) == b.distance(a)
        assert 0.0 < a.distance(b) < 1.0

    def test_membership_only_weights_ignored(self):
        """The defining difference from accumulator signatures: the
        execution mix does not matter, only membership."""
        config = WorkingSetConfig()
        light = interval_for(PCS_A)
        heavy = Interval(
            PCS_A,
            np.linspace(1, 1000, len(PCS_A)).astype(np.int64),
            cpi=1.0,
        )
        a = WorkingSetSignature.from_interval(light, config)
        b = WorkingSetSignature.from_interval(heavy, config)
        assert a.distance(b) == 0.0

    def test_population(self):
        config = WorkingSetConfig(signature_bits=1024)
        sig = WorkingSetSignature.from_interval(interval_for(PCS_A), config)
        assert 0 < sig.population <= 64

    def test_granularity_merges_nearby_pcs(self):
        config = WorkingSetConfig(granularity_bytes=4096)
        # All PCS_A fall in one or two 4K units.
        sig = WorkingSetSignature.from_interval(interval_for(PCS_A), config)
        assert sig.population <= 2


class TestClassifier:
    def test_same_code_same_phase(self):
        classifier = WorkingSetClassifier()
        first = classifier.classify_interval(interval_for(PCS_A))
        second = classifier.classify_interval(interval_for(PCS_A))
        assert second.matched
        assert second.phase_id == first.phase_id

    def test_different_code_new_phase(self):
        classifier = WorkingSetClassifier()
        a = classifier.classify_interval(interval_for(PCS_A))
        b = classifier.classify_interval(interval_for(PCS_B))
        assert b.phase_id != a.phase_id

    def test_trace_driver(self):
        intervals = [interval_for(PCS_A) for _ in range(3)]
        intervals += [interval_for(PCS_B) for _ in range(3)]
        run = WorkingSetClassifier().classify_trace(
            IntervalTrace("t", intervals)
        )
        assert run.num_phases == 2
        assert len(run) == 6

    def test_lru_eviction(self):
        config = WorkingSetConfig(table_entries=1)
        classifier = WorkingSetClassifier(config)
        classifier.classify_interval(interval_for(PCS_A))
        classifier.classify_interval(interval_for(PCS_B))
        again = classifier.classify_interval(interval_for(PCS_A))
        assert not again.matched
        assert classifier.evictions == 2
