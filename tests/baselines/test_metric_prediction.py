"""Tests for the Duesterwald-style metric predictors."""

import numpy as np
import pytest

from repro.baselines.metric_prediction import (
    EWMAPredictor,
    HistoryTablePredictor,
    LastValueMetricPredictor,
    PhaseBasedMetricPredictor,
    evaluate_metric_predictor,
)
from repro.errors import ConfigurationError, PredictionError


class TestLastValue:
    def test_predicts_latest(self):
        predictor = LastValueMetricPredictor()
        assert predictor.predict() is None
        predictor.observe(2.0)
        assert predictor.predict() == 2.0
        predictor.observe(3.0)
        assert predictor.predict() == 3.0


class TestEWMA:
    def test_alpha_one_is_last_value(self):
        predictor = EWMAPredictor(alpha=1.0)
        predictor.observe(1.0)
        predictor.observe(5.0)
        assert predictor.predict() == 5.0

    def test_smoothing(self):
        predictor = EWMAPredictor(alpha=0.5)
        predictor.observe(1.0)
        predictor.observe(3.0)
        assert predictor.predict() == pytest.approx(2.0)

    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            EWMAPredictor(alpha=0.0)


class TestHistoryTable:
    def test_learns_periodic_values(self):
        predictor = HistoryTablePredictor(history=2)
        pattern = [1.0, 1.0, 4.0] * 8
        predictions = []
        for value in pattern:
            predictions.append(predictor.predict())
            predictor.observe(value)
        # After one lap, the pattern (1, 1) -> 4 is learned.
        late = [
            (p, actual)
            for p, actual in zip(predictions[6:], pattern[6:])
            if actual == 4.0 and p is not None
        ]
        assert late
        assert all(p == pytest.approx(4.0) for p, _ in late)

    def test_miss_falls_back_to_last_value(self):
        predictor = HistoryTablePredictor(history=2)
        predictor.observe(1.0)
        assert predictor.predict() == 1.0

    def test_table_capacity_bounded(self):
        predictor = HistoryTablePredictor(history=1, entries=4)
        for value in np.linspace(1, 100, 50):
            predictor.observe(float(value))
        assert len(predictor._table) <= 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HistoryTablePredictor(history=0)
        with pytest.raises(ConfigurationError):
            HistoryTablePredictor(bucket_percent=0)
        with pytest.raises(ConfigurationError):
            HistoryTablePredictor(entries=0)


class TestPhaseBased:
    def test_predicts_phase_running_mean(self):
        predictor = PhaseBasedMetricPredictor()
        predictor.observe(1, 2.0)
        predictor.observe(1, 4.0)
        assert predictor.predict() == pytest.approx(3.0)

    def test_per_phase_isolation(self):
        predictor = PhaseBasedMetricPredictor()
        predictor.observe(1, 1.0)
        predictor.observe(2, 10.0)
        assert predictor.predict() == pytest.approx(10.0)
        predictor.observe(1, 1.0)
        assert predictor.predict() == pytest.approx(1.0)


class TestEvaluation:
    def test_perfectly_stable_stream_zero_error(self):
        stats = evaluate_metric_predictor(
            [2.0] * 20, LastValueMetricPredictor()
        )
        assert stats.mape == 0.0
        assert stats.mean_absolute_error == 0.0

    def test_phase_based_beats_last_value_on_alternation(self):
        # Two phases with distinct CPIs alternating predictably by
        # phase ID: the phase-based predictor nails both levels once
        # trained; last-value is wrong at every boundary.
        values = []
        phases = []
        for _ in range(30):
            values += [1.0] * 3 + [5.0] * 3
            phases += [1] * 3 + [2] * 3
        # Shift phases by one: the phase stream is what the *next*
        # interval is, mirroring prediction through a phase predictor.
        lv = evaluate_metric_predictor(values, LastValueMetricPredictor())
        pb = evaluate_metric_predictor(
            values, PhaseBasedMetricPredictor(), phase_ids=phases
        )
        assert pb.mape <= lv.mape

    def test_too_short_stream_rejected(self):
        with pytest.raises(PredictionError):
            evaluate_metric_predictor([1.0], LastValueMetricPredictor())

    def test_phase_ids_required_for_phase_based(self):
        with pytest.raises(PredictionError):
            evaluate_metric_predictor(
                [1.0, 2.0], PhaseBasedMetricPredictor()
            )

    def test_within_10_fraction_populated(self):
        stats = evaluate_metric_predictor(
            [1.0, 1.0, 1.05, 2.0], LastValueMetricPredictor()
        )
        assert stats.accuracy_within_10_percent == pytest.approx(2 / 3)
