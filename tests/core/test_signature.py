"""Unit tests for the Signature value object."""

import numpy as np
import pytest

from repro.core.signature import Signature
from repro.errors import ConfigurationError


class TestConstruction:
    def test_from_list(self):
        sig = Signature([1, 2, 3], bits=6)
        assert sig.dimensions == 3
        assert sig.total == 6

    def test_from_array(self):
        sig = Signature(np.array([5, 0, 63]), bits=6)
        assert sig.total == 68

    def test_values_read_only(self):
        sig = Signature([1, 2], bits=4)
        with pytest.raises(ValueError):
            sig.values[0] = 9

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Signature([], bits=6)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            Signature([64], bits=6)
        with pytest.raises(ConfigurationError):
            Signature([-1], bits=6)

    def test_invalid_bits(self):
        with pytest.raises(ConfigurationError):
            Signature([0], bits=0)


class TestValueSemantics:
    def test_equality(self):
        assert Signature([1, 2], bits=6) == Signature([1, 2], bits=6)
        assert Signature([1, 2], bits=6) != Signature([2, 1], bits=6)

    def test_different_bits_not_equal(self):
        assert Signature([1, 2], bits=6) != Signature([1, 2], bits=8)

    def test_hashable(self):
        a = Signature([1, 2, 3], bits=6)
        b = Signature([1, 2, 3], bits=6)
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_not_equal_to_other_types(self):
        assert Signature([1], bits=6) != [1]
