"""PhaseTracker instrumentation and listener isolation."""

import io

import numpy as np
import pytest

from repro.core import ClassifierConfig, PhaseTracker
from repro.telemetry import EventLog, Telemetry, read_events


def drive_tracker(tracker, branches=8192, seed=0, interval_cpi=1.0):
    """Replay a synthetic branch stream; returns completed reports."""
    rng = np.random.default_rng(seed)
    pcs = (0x400000 + rng.integers(0, 64, size=branches) * 4).astype(int)
    counts = rng.integers(50, 150, size=branches).astype(int)
    reports = []
    for pc, count in zip(pcs, counts):
        if tracker.observe_branch(int(pc), int(count)):
            reports.append(tracker.complete_interval(cpi=interval_cpi))
    return reports


@pytest.fixture
def telemetry():
    return Telemetry(events=EventLog(stream=io.StringIO()))


def events_of(telemetry):
    return read_events(io.StringIO(telemetry.events._stream.getvalue()))


class TestTrackerMetrics:
    def test_counters_consistent_with_reports(self, telemetry):
        tracker = PhaseTracker(
            ClassifierConfig.paper_default(),
            interval_instructions=50_000,
            telemetry=telemetry,
        )
        reports = drive_tracker(tracker)
        metrics = telemetry.metrics
        intervals = metrics.get("repro_tracker_intervals_total").value
        assert intervals == len(reports) > 0
        hits = metrics.get("repro_signature_table_hits_total").value
        misses = metrics.get("repro_signature_table_misses_total").value
        assert hits + misses == intervals
        assert metrics.get("repro_tracker_branches_total").value > 0
        assert (
            metrics.get("repro_tracker_transition_intervals_total").value
            == sum(r.is_transition for r in reports)
        )
        assert (
            metrics.get("repro_tracker_phase_changes_total").value
            == sum(r.phase_changed for r in reports)
        )
        occupancy = metrics.get("repro_signature_table_occupancy").value
        assert occupancy == len(tracker.classifier.table)

    def test_prediction_accuracy_counters(self, telemetry):
        tracker = PhaseTracker(
            ClassifierConfig.paper_default(),
            interval_instructions=50_000,
            telemetry=telemetry,
        )
        reports = drive_tracker(tracker)
        metrics = telemetry.metrics
        total = metrics.get("repro_next_phase_predictions_total").value
        correct = metrics.get("repro_next_phase_correct_total").value
        confident = metrics.get("repro_next_phase_confident_total").value
        # One prediction scored per boundary after the first.
        assert total == len(reports) - 1
        assert 0 <= correct <= total
        assert (
            metrics.get(
                "repro_next_phase_confident_correct_total"
            ).value <= confident <= total
        )

    def test_stage_spans_nested_under_interval(self, telemetry):
        tracker = PhaseTracker(
            interval_instructions=50_000, telemetry=telemetry
        )
        drive_tracker(tracker, branches=4096)
        timings = telemetry.span_timings()
        for path in (
            "interval", "interval/signature", "interval/match",
            "interval/predict",
        ):
            assert timings[path].count == tracker.intervals_observed

    def test_branch_ingest_histogram_populated(self, telemetry):
        tracker = PhaseTracker(
            interval_instructions=50_000, telemetry=telemetry
        )
        drive_tracker(tracker)
        histogram = telemetry.metrics.get("repro_branch_ingest_seconds")
        # First interval has no observe window; the rest do.
        assert histogram.count == tracker.intervals_observed - 1
        assert histogram.mean < 1e-3  # microseconds, not milliseconds

    def test_bare_tracker_matches_instrumented_results(self, telemetry):
        bare = PhaseTracker(interval_instructions=50_000)
        instrumented = PhaseTracker(
            interval_instructions=50_000, telemetry=telemetry
        )
        bare_reports = drive_tracker(bare)
        instr_reports = drive_tracker(instrumented)
        assert bare_reports == instr_reports


class TestTrackerEvents:
    def test_one_interval_event_per_boundary(self, telemetry):
        tracker = PhaseTracker(
            interval_instructions=50_000, telemetry=telemetry
        )
        reports = drive_tracker(tracker)
        records = events_of(telemetry)
        assert records[0]["event"] == "tracker_start"
        assert records[0]["interval_instructions"] == 50_000
        intervals = [r for r in records if r["event"] == "interval"]
        assert len(intervals) == len(reports)
        for record, report in zip(intervals, reports):
            # Interval events carry the report's wire form verbatim.
            for key, value in report.to_dict().items():
                assert record[key] == value
        assert all("table_occupancy" in r for r in intervals)
        assert all("threshold_halvings" in r for r in intervals)


class TestListenerIsolation:
    def test_raising_listener_does_not_abort_interval(self, telemetry):
        tracker = PhaseTracker(
            interval_instructions=50_000, telemetry=telemetry
        )
        seen = []

        def bad(report):
            raise RuntimeError("listener exploded")

        tracker.add_phase_change_listener(bad)
        tracker.add_phase_change_listener(seen.append)
        reports = drive_tracker(tracker)
        changes = sum(r.phase_changed for r in reports)
        assert changes > 0
        # The second listener still saw every change and tracking
        # continued past the failures.
        assert len(seen) == changes
        assert tracker.intervals_observed == len(reports)
        errors = telemetry.metrics.get(
            "repro_tracker_listener_errors_total"
        ).value
        assert errors == changes
        error_events = [
            r for r in events_of(telemetry)
            if r["event"] == "listener_error"
        ]
        assert len(error_events) == changes
        assert "listener exploded" in error_events[0]["error"]

    def test_raising_listener_without_telemetry(self):
        """Regression: isolation must not depend on telemetry."""
        tracker = PhaseTracker(interval_instructions=50_000)
        seen = []

        def bad(report):
            raise ValueError("no hub attached")

        tracker.add_phase_change_listener(bad)
        tracker.add_phase_change_listener(seen.append)
        reports = drive_tracker(tracker)
        assert sum(r.phase_changed for r in reports) == len(seen) > 0
