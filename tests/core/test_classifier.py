"""Unit tests for the online phase classifier.

Synthetic intervals are built from explicit PC populations so each
mechanism (matching, min counters, transition phase, eviction, adaptive
thresholds) can be exercised deterministically.
"""

import numpy as np
import pytest

from repro.core import (
    ClassifierConfig,
    PhaseClassifier,
    TRANSITION_PHASE_ID,
)
from repro.workloads.trace import Interval, IntervalTrace


def interval_for(pcs, weights, cpi=1.0, instructions=1_000_000):
    """Build an interval whose signature is determined by (pcs, weights)."""
    weights = np.asarray(weights, dtype=np.float64)
    counts = np.floor(
        weights / weights.sum() * instructions
    ).astype(np.int64)
    counts[0] += instructions - counts.sum()
    return Interval(
        branch_pcs=np.asarray(pcs, dtype=np.int64),
        instr_counts=counts,
        cpi=cpi,
    )


# Two disjoint code populations (distinct phases).
PCS_A = np.arange(0x1000, 0x1000 + 12 * 4, 4)
PCS_B = np.arange(0x9000, 0x9000 + 12 * 4, 4)
WEIGHTS = np.linspace(1.0, 3.0, 12)


def interval_a(cpi=1.0, jitter=0.0, seed=0):
    rng = np.random.default_rng(seed)
    w = WEIGHTS * (1 + jitter * rng.standard_normal(12)).clip(0.2)
    return interval_for(PCS_A, w, cpi=cpi)


def interval_b(cpi=2.0):
    return interval_for(PCS_B, WEIGHTS, cpi=cpi)


def config(**kwargs):
    defaults = dict(
        num_counters=16,
        table_entries=32,
        similarity_threshold=0.25,
        min_count_threshold=0,
    )
    defaults.update(kwargs)
    return ClassifierConfig(**defaults)


class TestBasicClassification:
    def test_first_interval_gets_new_phase(self):
        classifier = PhaseClassifier(config())
        result = classifier.classify_interval(interval_a())
        assert result.phase_id == 1
        assert not result.matched
        assert result.new_phase_allocated

    def test_repeated_interval_same_phase(self):
        classifier = PhaseClassifier(config())
        first = classifier.classify_interval(interval_a(seed=1, jitter=0.05))
        second = classifier.classify_interval(interval_a(seed=2, jitter=0.05))
        assert second.matched
        assert second.phase_id == first.phase_id

    def test_different_code_different_phase(self):
        classifier = PhaseClassifier(config())
        a = classifier.classify_interval(interval_a())
        b = classifier.classify_interval(interval_b())
        assert b.phase_id != a.phase_id
        assert not b.matched

    def test_phase_ids_start_after_transition_id(self):
        classifier = PhaseClassifier(config())
        result = classifier.classify_interval(interval_a())
        assert result.phase_id > TRANSITION_PHASE_ID

    def test_num_phases_counts_allocations(self):
        classifier = PhaseClassifier(config())
        classifier.classify_interval(interval_a())
        classifier.classify_interval(interval_b())
        classifier.classify_interval(interval_a(seed=3, jitter=0.02))
        assert classifier.num_phases == 2


class TestTransitionPhase:
    def test_min_count_gates_phase_allocation(self):
        classifier = PhaseClassifier(config(min_count_threshold=3))
        results = [
            classifier.classify_interval(interval_a(seed=s, jitter=0.02))
            for s in range(5)
        ]
        # First 3 classifications go to the transition phase.
        assert [r.phase_id for r in results[:3]] == [0, 0, 0]
        # The 4th crosses the threshold (counter 4 > 3).
        assert results[3].phase_id == 1
        assert results[3].new_phase_allocated
        assert results[4].phase_id == 1

    def test_zero_min_count_allocates_immediately(self):
        classifier = PhaseClassifier(config(min_count_threshold=0))
        assert classifier.classify_interval(interval_a()).phase_id == 1

    def test_rare_behaviour_stays_in_transition(self):
        classifier = PhaseClassifier(config(min_count_threshold=8))
        result = classifier.classify_interval(interval_b())
        assert result.is_transition
        assert classifier.num_phases == 0

    def test_min_counter_survives_interleaving(self):
        classifier = PhaseClassifier(config(min_count_threshold=2))
        classifier.classify_interval(interval_a(seed=1, jitter=0.02))
        classifier.classify_interval(interval_b())
        classifier.classify_interval(interval_a(seed=2, jitter=0.02))
        result = classifier.classify_interval(
            interval_a(seed=3, jitter=0.02)
        )
        assert result.phase_id != TRANSITION_PHASE_ID


class TestEviction:
    def test_eviction_loses_phase_and_reallocates(self):
        classifier = PhaseClassifier(config(table_entries=1))
        first = classifier.classify_interval(interval_a())
        classifier.classify_interval(interval_b())      # evicts A
        again = classifier.classify_interval(interval_a())
        assert not again.matched                         # entry was lost
        assert again.phase_id != first.phase_id          # fresh phase ID
        assert classifier.table.evictions == 2

    def test_infinite_table_never_evicts(self):
        classifier = PhaseClassifier(config(table_entries=None))
        rng = np.random.default_rng(0)
        for shift in range(50):
            pcs = PCS_A + shift * 0x100000
            weights = rng.dirichlet(np.full(12, 0.4)) + 1e-9
            classifier.classify_interval(interval_for(pcs, weights))
        assert classifier.table.evictions == 0
        # Nearly every distinct code population gets its own entry (a
        # couple may alias through the 16-bucket hash).
        assert len(classifier.table) >= 45


class TestMatchPolicy:
    def test_most_similar_beats_first(self):
        """Two entries with disjoint code, a probe mixing both but
        leaning to the second: under our normalization the probe sits
        at distance 0.55 from entry one and 0.45 from entry two, so at
        threshold 0.6 both are eligible. 'first' picks table order
        (entry one); 'most_similar' picks entry two."""
        weights_one = np.where(np.arange(12) < 6, 1.0, 0.0) + 1e-9
        weights_two = np.where(np.arange(12) >= 6, 1.0, 0.0) + 1e-9
        probe_weights = 0.45 * weights_one + 0.55 * weights_two

        def run(policy):
            classifier = PhaseClassifier(
                config(similarity_threshold=0.6, match_policy=policy)
            )
            one = classifier.classify_interval(
                interval_for(PCS_A, weights_one)
            )
            two = classifier.classify_interval(
                interval_for(PCS_A, weights_two)
            )
            probe = classifier.classify_interval(
                interval_for(PCS_A, probe_weights)
            )
            return one.phase_id, two.phase_id, probe.phase_id

        one_id, two_id, probe_first = run("first")
        assert one_id != two_id  # mutual distance ~1.0 > 0.6
        assert probe_first == one_id
        _, two_id_ms, probe_similar = run("most_similar")
        assert probe_similar == two_id_ms


class TestSignatureReplacement:
    def test_matched_entry_tracks_drift(self):
        # Slow drift: each interval within threshold of the previous,
        # but far from the first. Replacement-on-match keeps matching.
        classifier = PhaseClassifier(config(similarity_threshold=0.25))
        ids = set()
        for step in range(10):
            drift = np.linspace(1.0, 1.0 + 0.15 * step, 12)
            result = classifier.classify_interval(
                interval_for(PCS_A, WEIGHTS * drift)
            )
            ids.add(result.phase_id)
        assert len(ids) == 1  # one phase despite large total drift


class TestAdaptiveThresholds:
    def test_large_cpi_deviation_halves_threshold(self):
        classifier = PhaseClassifier(
            config(perf_dev_threshold=0.25, min_count_threshold=0)
        )
        classifier.classify_interval(interval_a(cpi=1.0, seed=1,
                                                jitter=0.02))
        classifier.classify_interval(interval_a(cpi=1.0, seed=2,
                                                jitter=0.02))
        result = classifier.classify_interval(
            interval_a(cpi=2.0, seed=3, jitter=0.02)
        )
        assert result.threshold_tightened
        entry = classifier.table.entries[0]
        assert entry.similarity_threshold == pytest.approx(0.125)
        assert entry.cpi_count == 0  # stats cleared

    def test_small_deviation_updates_average(self):
        classifier = PhaseClassifier(
            config(perf_dev_threshold=0.25, min_count_threshold=0)
        )
        classifier.classify_interval(interval_a(cpi=1.0, seed=1,
                                                jitter=0.02))
        result = classifier.classify_interval(
            interval_a(cpi=1.1, seed=2, jitter=0.02)
        )
        assert not result.threshold_tightened
        entry = classifier.table.entries[0]
        assert entry.cpi_count == 2

    def test_transition_intervals_skip_feedback(self):
        classifier = PhaseClassifier(
            config(perf_dev_threshold=0.25, min_count_threshold=5)
        )
        for s, cpi in enumerate((1.0, 9.0, 1.0)):
            result = classifier.classify_interval(
                interval_a(cpi=cpi, seed=s, jitter=0.02)
            )
            assert result.is_transition
            assert not result.threshold_tightened

    def test_adaptive_disabled_never_tightens(self):
        classifier = PhaseClassifier(config(perf_dev_threshold=None))
        classifier.classify_interval(interval_a(cpi=1.0, seed=1))
        result = classifier.classify_interval(
            interval_a(cpi=50.0, seed=2, jitter=0.02)
        )
        assert not result.threshold_tightened

    def test_notify_reconfiguration_flushes_cpi(self):
        classifier = PhaseClassifier(config(perf_dev_threshold=0.25))
        classifier.classify_interval(interval_a(cpi=1.0))
        classifier.notify_reconfiguration()
        assert all(
            entry.cpi_count == 0 for entry in classifier.table.entries
        )

    def test_tightened_threshold_splits_phase(self):
        # After tightening, a moderately different signature no longer
        # matches and becomes a new phase: the splitting mechanism.
        classifier = PhaseClassifier(
            config(perf_dev_threshold=0.2, min_count_threshold=0,
                   similarity_threshold=0.25)
        )
        base = WEIGHTS
        variant = WEIGHTS * np.where(np.arange(12) % 2 == 0, 1.45, 0.6)
        classifier.classify_interval(interval_for(PCS_A, base, cpi=1.0))
        classifier.classify_interval(interval_for(PCS_A, base, cpi=1.0))
        # Same phase (base-variant distance ~0.22 < 25%), deviant CPI
        # -> tighten; the match also replaces the stored signature with
        # the variant's.
        mid = classifier.classify_interval(
            interval_for(PCS_A, variant, cpi=2.0)
        )
        assert mid.matched
        assert mid.threshold_tightened
        # Returning to the base behaviour no longer matches the entry
        # (distance ~0.22 > tightened 12.5%): the phase splits.
        after = classifier.classify_interval(
            interval_for(PCS_A, base, cpi=1.0)
        )
        assert not after.matched
        assert after.phase_id != mid.phase_id


class TestTraceDriver:
    def test_classify_trace_covers_all_intervals(self):
        intervals = [interval_a(seed=s, jitter=0.02) for s in range(5)]
        intervals.append(interval_b())
        trace = IntervalTrace("t", intervals)
        run = PhaseClassifier(config()).classify_trace(trace)
        assert len(run) == 6
        assert run.num_phases == 2

    def test_static_bit_selector_config_used(self):
        classifier = PhaseClassifier(
            config(bit_selector="static", bits_per_counter=8,
                   static_low_bit=14)
        )
        from repro.core.bitselect import StaticBitSelector

        assert isinstance(classifier.bit_selector, StaticBitSelector)
        assert classifier.bit_selector.low_bit == 14

    def test_signature_dimensions_match_config(self):
        classifier = PhaseClassifier(config(num_counters=32))
        signature = classifier.signature_for(interval_a())
        assert signature.dimensions == 32
