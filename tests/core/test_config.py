"""Unit tests for ClassifierConfig validation and presets."""

import pytest

from repro.core.config import TRANSITION_PHASE_ID, ClassifierConfig
from repro.errors import ConfigurationError


class TestDefaults:
    def test_transition_phase_id_is_zero(self):
        assert TRANSITION_PHASE_ID == 0

    def test_default_matches_paper_section_5_1(self):
        config = ClassifierConfig()
        assert config.num_counters == 16
        assert config.bits_per_counter == 6
        assert config.table_entries == 32
        assert config.similarity_threshold == 0.25
        assert config.min_count_threshold == 8

    def test_paper_default_preset(self):
        config = ClassifierConfig.paper_default()
        assert config.perf_dev_threshold == 0.25
        assert config.adaptive

    def test_paper_baseline_preset(self):
        config = ClassifierConfig.paper_baseline()
        assert config.num_counters == 32
        assert config.similarity_threshold == 0.125
        assert config.min_count_threshold == 0
        assert config.match_policy == "first"
        assert not config.adaptive

    def test_adaptive_flag(self):
        assert not ClassifierConfig(perf_dev_threshold=None).adaptive
        assert ClassifierConfig(perf_dev_threshold=0.5).adaptive


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"num_counters": 12},
        {"num_counters": 0},
        {"bits_per_counter": 0},
        {"bits_per_counter": 25},
        {"table_entries": 0},
        {"similarity_threshold": 0.0},
        {"similarity_threshold": 1.5},
        {"min_count_threshold": -1},
        {"match_policy": "random"},
        {"bit_selector": "fancy"},
        {"static_low_bit": 24},
        {"static_low_bit": 20, "bits_per_counter": 8},
        {"perf_dev_threshold": 0.0},
        {"perf_dev_threshold": 11.0},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ClassifierConfig(**kwargs)

    def test_none_table_entries_is_infinite(self):
        config = ClassifierConfig(table_entries=None)
        assert config.table_entries is None

    def test_static_window_within_width_accepted(self):
        config = ClassifierConfig(
            bit_selector="static", static_low_bit=14, bits_per_counter=8
        )
        assert config.static_low_bit == 14
