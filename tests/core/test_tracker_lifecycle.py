"""PhaseTracker lifecycle hooks: reset(), observe_batch(), and the
TrackerReport wire form — the contracts the service subsystem builds on."""

import numpy as np
import pytest

from repro.core import ClassifierConfig, PhaseTracker
from repro.core.online import TrackerReport
from repro.errors import PredictionError


def two_region_stream(seed=0, n=5000):
    rng = np.random.default_rng(seed)
    region = np.where(rng.random(n) < 0.5, 0x400000, 0x900000)
    pcs = (region + rng.integers(0, 64, size=n) * 4).tolist()
    counts = rng.integers(1, 120, size=n).tolist()
    return pcs, counts


def drive_per_branch(tracker, pcs, counts, cpi=1.0):
    reports = []
    for pc, count in zip(pcs, counts):
        if tracker.observe_branch(pc, count):
            reports.append(tracker.complete_interval(cpi))
    return reports


class TestReset:
    def test_reset_tracker_reproduces_fresh_classification_stream(self):
        """The session-pool recycling contract: after reset() the
        tracker's classification and prediction stream is identical to
        a newly constructed tracker's over the same branches."""
        pcs, counts = two_region_stream()
        recycled = PhaseTracker(interval_instructions=4_000)
        # Pollute every piece of state with a different stream first.
        other_pcs, other_counts = two_region_stream(seed=99)
        drive_per_branch(recycled, other_pcs, other_counts, cpi=2.5)
        recycled.reset()

        fresh = PhaseTracker(interval_instructions=4_000)
        reports_recycled = drive_per_branch(recycled, pcs, counts)
        reports_fresh = drive_per_branch(fresh, pcs, counts)
        assert ([r.to_dict() for r in reports_recycled]
                == [r.to_dict() for r in reports_fresh])
        assert reports_recycled            # streams actually classified

    def test_reset_clears_bookkeeping_and_listeners(self):
        tracker = PhaseTracker(interval_instructions=1_000)
        tracker.add_phase_change_listener(lambda report: None)
        tracker.observe_branch(4096, 700)
        tracker.reset()
        assert tracker.intervals_observed == 0
        assert tracker.current_phase is None
        assert tracker.instructions_into_interval == 0
        assert tracker._listeners == []

    def test_reset_clears_a_pending_boundary(self):
        tracker = PhaseTracker(interval_instructions=100)
        assert tracker.observe_branch(4096, 200)   # boundary pending
        tracker.reset()
        tracker.observe_branch(4096, 50)           # must not raise


class TestObserveBatch:
    def test_equivalent_to_per_branch_loop(self):
        pcs, counts = two_region_stream(seed=1)
        batched = PhaseTracker(interval_instructions=4_000)
        looped = PhaseTracker(interval_instructions=4_000)
        reports_batched = []
        for start in range(0, len(pcs), 777):   # deliberately odd strides
            reports_batched += batched.observe_batch(
                pcs[start:start + 777], counts[start:start + 777], cpi=1.0
            )
        reports_looped = drive_per_branch(looped, pcs, counts, cpi=1.0)
        assert ([r.to_dict() for r in reports_batched]
                == [r.to_dict() for r in reports_looped])
        assert batched.instructions_into_interval \
            == looped.instructions_into_interval

    def test_single_batch_crossing_many_boundaries(self):
        tracker = PhaseTracker(interval_instructions=100)
        reports = tracker.observe_batch([4096] * 10, [60] * 10)
        # 600 instructions over 100-instruction intervals: the crossing
        # branch is attributed entirely to the completing interval.
        assert len(reports) == 5
        assert tracker.instructions_into_interval == 0

    def test_empty_batch_is_a_no_op(self):
        tracker = PhaseTracker()
        assert tracker.observe_batch([], []) == []

    def test_rejects_mismatched_arrays(self):
        tracker = PhaseTracker()
        with pytest.raises(PredictionError):
            tracker.observe_batch([1, 2], [3])

    def test_rejects_negative_counts(self):
        tracker = PhaseTracker()
        with pytest.raises(ValueError):
            tracker.observe_batch([4096], [-1])

    def test_rejects_pending_boundary(self):
        tracker = PhaseTracker(interval_instructions=100)
        assert tracker.observe_branch(4096, 200)
        with pytest.raises(PredictionError):
            tracker.observe_batch([4096], [10])


class TestReportWireForm:
    def test_to_dict_from_dict_round_trip(self):
        tracker = PhaseTracker(interval_instructions=500)
        report = tracker.observe_batch([4096] * 20, [40] * 20)[0]
        payload = report.to_dict()
        assert payload["interval_index"] == 0
        assert isinstance(payload["phase_id"], int)
        assert TrackerReport.from_dict(payload) == report

    def test_to_dict_is_json_safe(self):
        import json

        tracker = PhaseTracker(interval_instructions=500)
        report = tracker.observe_batch([4096] * 20, [40] * 20)[0]
        decoded = json.loads(json.dumps(report.to_dict()))
        assert TrackerReport.from_dict(decoded) == report
