"""Edge-case and interaction tests for the classifier.

Complements ``test_classifier.py`` with cross-mechanism interactions:
adaptive thresholds with the transition phase, repeated tightening,
eviction during warm-up, and reconfiguration notifications mid-run.
"""

import numpy as np
import pytest

from repro.core import ClassifierConfig, PhaseClassifier, TRANSITION_PHASE_ID
from repro.workloads.trace import Interval

PCS_A = np.arange(0x1000, 0x1000 + 12 * 4, 4)
PCS_B = np.arange(0x9000, 0x9000 + 12 * 4, 4)
PCS_C = np.arange(0x5000, 0x5000 + 12 * 4, 4)
WEIGHTS = np.linspace(1.0, 3.0, 12)


def interval_for(pcs, weights=WEIGHTS, cpi=1.0, seed=None, jitter=0.0):
    weights = np.asarray(weights, dtype=np.float64)
    if seed is not None and jitter:
        rng = np.random.default_rng(seed)
        weights = weights * (1 + jitter * rng.standard_normal(12)).clip(0.2)
    counts = np.floor(weights / weights.sum() * 1_000_000).astype(np.int64)
    counts[0] += 1_000_000 - counts.sum()
    return Interval(np.asarray(pcs, dtype=np.int64), counts, cpi=cpi)


def config(**kwargs):
    defaults = dict(num_counters=16, table_entries=32,
                    similarity_threshold=0.25, min_count_threshold=0)
    defaults.update(kwargs)
    return ClassifierConfig(**defaults)


class TestAdaptiveTransitionInteraction:
    def test_cpi_stats_not_collected_during_warmup(self):
        """Transition-phase intervals never feed the adaptive loop, so
        wild CPI during warm-up cannot poison the phase average."""
        classifier = PhaseClassifier(
            config(min_count_threshold=3, perf_dev_threshold=0.25)
        )
        for seed, cpi in enumerate((1.0, 99.0, 0.01)):
            classifier.classify_interval(
                interval_for(PCS_A, cpi=cpi, seed=seed, jitter=0.02)
            )
        entry = classifier.table.entries[0]
        assert entry.cpi_count == 0  # still in transition

        # First stable interval seeds the average cleanly.
        result = classifier.classify_interval(
            interval_for(PCS_A, cpi=2.0, seed=9, jitter=0.02)
        )
        assert not result.is_transition
        assert not result.threshold_tightened
        assert entry.cpi_mean == pytest.approx(2.0)

    def test_repeated_tightening_halves_each_time(self):
        classifier = PhaseClassifier(
            config(perf_dev_threshold=0.1)
        )
        cpis = [1.0, 1.0, 2.0, 2.0, 4.0]
        for seed, cpi in enumerate(cpis):
            classifier.classify_interval(
                interval_for(PCS_A, cpi=cpi, seed=seed, jitter=0.01)
            )
        entry = classifier.table.entries[0]
        # Two tightenings: 0.25 -> 0.125 -> 0.0625.
        assert entry.similarity_threshold == pytest.approx(0.0625)

    def test_notify_reconfiguration_prevents_false_tightening(self):
        classifier = PhaseClassifier(config(perf_dev_threshold=0.25))
        classifier.classify_interval(
            interval_for(PCS_A, cpi=1.0, seed=1, jitter=0.02)
        )
        classifier.classify_interval(
            interval_for(PCS_A, cpi=1.0, seed=2, jitter=0.02)
        )
        # A hardware reconfiguration changes CPI globally; without the
        # flush this would look like a 100% deviation.
        classifier.notify_reconfiguration()
        result = classifier.classify_interval(
            interval_for(PCS_A, cpi=2.0, seed=3, jitter=0.02)
        )
        assert not result.threshold_tightened


class TestEvictionInteractions:
    def test_warmup_progress_lost_on_eviction(self):
        classifier = PhaseClassifier(
            config(table_entries=1, min_count_threshold=2)
        )
        classifier.classify_interval(interval_for(PCS_A, seed=1,
                                                  jitter=0.02))
        classifier.classify_interval(interval_for(PCS_A, seed=2,
                                                  jitter=0.02))
        # One more A would become stable, but B evicts the entry first.
        classifier.classify_interval(interval_for(PCS_B))
        result = classifier.classify_interval(
            interval_for(PCS_A, seed=3, jitter=0.02)
        )
        assert result.is_transition  # min counter restarted

    def test_stable_phase_id_not_reused_after_eviction(self):
        classifier = PhaseClassifier(config(table_entries=1))
        first = classifier.classify_interval(interval_for(PCS_A))
        classifier.classify_interval(interval_for(PCS_B))
        second = classifier.classify_interval(interval_for(PCS_C))
        assert len({first.phase_id, second.phase_id}) == 2

    def test_lru_protects_recently_used_entries(self):
        classifier = PhaseClassifier(config(table_entries=2))
        a = classifier.classify_interval(interval_for(PCS_A))
        classifier.classify_interval(interval_for(PCS_B))
        # Touch A again, making B the LRU victim for C.
        classifier.classify_interval(interval_for(PCS_A))
        classifier.classify_interval(interval_for(PCS_C))
        again = classifier.classify_interval(interval_for(PCS_A))
        assert again.matched
        assert again.phase_id == a.phase_id


class TestSignatureEdgeCases:
    def test_single_record_interval(self):
        classifier = PhaseClassifier(config())
        interval = Interval(
            branch_pcs=np.array([0x1000]),
            instr_counts=np.array([1_000_000]),
            cpi=1.0,
        )
        result = classifier.classify_interval(interval)
        assert result.phase_id == 1

    def test_tiny_interval_classifies(self):
        classifier = PhaseClassifier(config())
        interval = Interval(
            branch_pcs=np.array([0x1000, 0x1004]),
            instr_counts=np.array([3, 5]),
            cpi=1.0,
        )
        result = classifier.classify_interval(interval)
        assert result.phase_id >= 0

    def test_zero_weight_records_allowed(self):
        classifier = PhaseClassifier(config())
        interval = Interval(
            branch_pcs=np.array([0x1000, 0x1004]),
            instr_counts=np.array([1_000_000, 0]),
            cpi=1.0,
        )
        assert classifier.classify_interval(interval).phase_id == 1

    def test_identical_signature_always_rematches(self):
        classifier = PhaseClassifier(
            config(similarity_threshold=0.01)  # extremely strict
        )
        first = classifier.classify_interval(interval_for(PCS_A))
        for _ in range(5):
            result = classifier.classify_interval(interval_for(PCS_A))
            assert result.matched
            assert result.phase_id == first.phase_id
            assert result.distance == 0.0
