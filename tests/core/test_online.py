"""Tests for the streaming PhaseTracker."""

import numpy as np
import pytest

from repro.core import ClassifierConfig, PhaseClassifier, PhaseTracker
from repro.errors import PredictionError


def drive_interval(tracker, pcs, weights, cpi, interval=100_000):
    """Feed branches until the tracker reports a boundary, then close."""
    weights = np.asarray(weights, dtype=np.float64)
    weights = weights / weights.sum()
    rng = np.random.default_rng(len(pcs))
    while True:
        index = int(rng.choice(len(pcs), p=weights))
        boundary = tracker.observe_branch(int(pcs[index]), 500)
        if boundary:
            return tracker.complete_interval(cpi)


PCS_A = np.arange(0x1000, 0x1000 + 12 * 4, 4)
PCS_B = np.arange(0x9000, 0x9000 + 12 * 4, 4)
WEIGHTS = np.linspace(1.0, 3.0, 12)


def make_tracker(min_count=0, interval=100_000):
    config = ClassifierConfig(
        num_counters=16, table_entries=32,
        similarity_threshold=0.25, min_count_threshold=min_count,
    )
    return PhaseTracker(config, interval_instructions=interval)


class TestBoundaries:
    def test_boundary_detected_at_interval_length(self):
        tracker = make_tracker(interval=1000)
        assert tracker.observe_branch(0x1000, 400) is False
        assert tracker.observe_branch(0x1004, 400) is False
        assert tracker.observe_branch(0x1008, 400) is True

    def test_observe_after_boundary_rejected(self):
        tracker = make_tracker(interval=100)
        tracker.observe_branch(0x1000, 200)
        with pytest.raises(PredictionError):
            tracker.observe_branch(0x1004, 10)

    def test_complete_without_content_rejected(self):
        with pytest.raises(PredictionError):
            make_tracker().complete_interval(1.0)

    def test_interval_counter_advances(self):
        tracker = make_tracker(interval=100)
        for _ in range(3):
            tracker.observe_branch(0x1000, 100)
            tracker.complete_interval(1.0)
        assert tracker.intervals_observed == 3

    def test_instructions_reset_after_completion(self):
        tracker = make_tracker(interval=100)
        tracker.observe_branch(0x1000, 150)
        tracker.complete_interval(1.0)
        assert tracker.instructions_into_interval == 0

    def test_invalid_interval_length(self):
        with pytest.raises(PredictionError):
            PhaseTracker(interval_instructions=0)


class TestClassificationThroughTracker:
    def test_same_code_same_phase(self):
        tracker = make_tracker()
        first = drive_interval(tracker, PCS_A, WEIGHTS, cpi=1.0)
        second = drive_interval(tracker, PCS_A, WEIGHTS, cpi=1.0)
        assert second.phase_id == first.phase_id
        assert not second.phase_changed

    def test_different_code_changes_phase(self):
        tracker = make_tracker()
        drive_interval(tracker, PCS_A, WEIGHTS, cpi=1.0)
        report = drive_interval(tracker, PCS_B, WEIGHTS, cpi=2.0)
        assert report.phase_changed

    def test_matches_trace_driven_classifier(self):
        """The tracker must classify identically to classify_trace when
        fed the same records."""
        from repro.workloads import benchmark

        trace = benchmark("gzip/p", scale=0.08)
        config = ClassifierConfig.paper_default()
        expected = PhaseClassifier(config).classify_trace(trace)

        tracker = PhaseTracker(
            config, interval_instructions=trace.interval_instructions
        )
        got = []
        for interval in trace:
            for pc, count in zip(interval.branch_pcs,
                                 interval.instr_counts):
                tracker.observe_branch(int(pc), int(count))
            # Force the boundary even if rounding left us short.
            report = tracker.complete_interval(interval.cpi)
            got.append(report.phase_id)
        assert got == expected.phase_ids.tolist()

    def test_min_count_produces_transitions(self):
        tracker = make_tracker(min_count=3)
        reports = [
            drive_interval(tracker, PCS_A, WEIGHTS, cpi=1.0)
            for _ in range(5)
        ]
        assert [r.is_transition for r in reports[:3]] == [True] * 3
        assert not reports[4].is_transition


class TestListenersAndPredictions:
    def test_listener_fires_on_change_only(self):
        tracker = make_tracker()
        events = []
        tracker.add_phase_change_listener(events.append)
        drive_interval(tracker, PCS_A, WEIGHTS, cpi=1.0)
        drive_interval(tracker, PCS_A, WEIGHTS, cpi=1.0)
        assert events == []
        drive_interval(tracker, PCS_B, WEIGHTS, cpi=2.0)
        assert len(events) == 1
        assert events[0].phase_changed

    def test_prediction_present_after_first_interval(self):
        tracker = make_tracker()
        report = drive_interval(tracker, PCS_A, WEIGHTS, cpi=1.0)
        assert report.predicted_next_phase == report.phase_id

    def test_current_phase_tracks_latest(self):
        tracker = make_tracker()
        report = drive_interval(tracker, PCS_A, WEIGHTS, cpi=1.0)
        assert tracker.current_phase == report.phase_id

    def test_pure_last_value_tracker(self):
        tracker = PhaseTracker(
            ClassifierConfig.paper_default(),
            interval_instructions=100_000,
            change_predictor=None,
        )
        report = drive_interval(tracker, PCS_A, WEIGHTS, cpi=1.0)
        assert report.predicted_next_phase == report.phase_id


class TestTrackerLongRun:
    def test_length_class_prediction_surfaces_in_reports(self):
        """After the RLE-2 length table warms up on a periodic stream,
        reports carry a predicted length class for the entered phase."""
        tracker = make_tracker(interval=100)

        def run_phase(pcs, intervals):
            reports = []
            for _ in range(intervals):
                tracker.observe_branch(int(pcs[0]), 60)
                tracker.observe_branch(int(pcs[1]), 60)
                reports.append(tracker.complete_interval(1.0))
            return reports

        # Strict period: A x3, B x2, repeated.
        predicted = []
        for _ in range(8):
            run_phase(PCS_A, 3)
            reports = run_phase(PCS_B, 2)
            predicted.extend(
                r.predicted_length_class for r in reports
            )
        # Late in the run the predictor has seen the pattern.
        assert any(p is not None for p in predicted[-6:])

    def test_custom_change_predictor_accepted(self):
        from repro.prediction import MarkovChangePredictor

        tracker = PhaseTracker(
            ClassifierConfig.paper_default(),
            interval_instructions=100,
            change_predictor=MarkovChangePredictor(1),
        )
        tracker.observe_branch(0x1000, 100)
        report = tracker.complete_interval(1.0)
        assert report.interval_index == 0

    def test_reports_index_monotone(self):
        tracker = make_tracker(interval=100)
        indices = []
        for _ in range(5):
            tracker.observe_branch(0x1000, 100)
            indices.append(tracker.complete_interval(1.0).interval_index)
        assert indices == list(range(5))
