"""Unit tests for Manhattan distance and relative similarity."""

import numpy as np
import pytest

from repro.core.distance import (
    manhattan_distance,
    max_normalizer,
    relative_distance,
    relative_distance_matrix,
    sum_normalizer,
)
from repro.core.signature import Signature


class TestManhattan:
    def test_identical_is_zero(self):
        assert manhattan_distance([1, 2, 3], [1, 2, 3]) == 0

    def test_known_value(self):
        assert manhattan_distance([0, 5, 2], [3, 1, 2]) == 7

    def test_symmetric(self):
        a, b = [1, 9, 4], [6, 2, 3]
        assert manhattan_distance(a, b) == manhattan_distance(b, a)

    def test_triangle_inequality(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            a, b, c = rng.integers(0, 64, size=(3, 16))
            assert manhattan_distance(a, c) <= (
                manhattan_distance(a, b) + manhattan_distance(b, c)
            )

    def test_accepts_signatures(self):
        a = Signature([1, 2], bits=6)
        b = Signature([3, 0], bits=6)
        assert manhattan_distance(a, b) == 4

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            manhattan_distance([1, 2], [1, 2, 3])


class TestRelativeDistance:
    def test_identical_zero(self):
        assert relative_distance([5, 5], [5, 5]) == 0.0

    def test_disjoint_support_is_one(self):
        assert relative_distance([10, 0], [0, 10]) == pytest.approx(1.0)

    def test_both_zero_vectors(self):
        assert relative_distance([0, 0], [0, 0]) == 0.0

    def test_range_bounded(self):
        rng = np.random.default_rng(1)
        for _ in range(100):
            a, b = rng.integers(0, 64, size=(2, 8))
            d = relative_distance(a, b)
            assert 0.0 <= d <= 1.0

    def test_max_normalizer_looser_or_equal(self):
        # 2*max(ta, tb) >= ta + tb, so the max normalizer never reports
        # a larger relative distance than the sum normalizer.
        a, b = [10, 2, 0], [3, 3, 3]
        assert relative_distance(a, b, max_normalizer) <= relative_distance(
            a, b, sum_normalizer
        )
        same = [4, 4, 4]
        assert relative_distance(a, same, max_normalizer) <= 1.0

    def test_threshold_semantics_example(self):
        # A signature 12.5% different: distance 4 against totals 16+16.
        a = np.array([8, 8, 0, 0])
        b = np.array([8, 6, 2, 0])
        assert relative_distance(a, b) == pytest.approx(4 / 32)


class TestMatrixForm:
    def test_matches_scalar_form(self):
        rng = np.random.default_rng(2)
        matrix = rng.integers(0, 64, size=(10, 16))
        vector = rng.integers(0, 64, size=16)
        batch = relative_distance_matrix(matrix, vector)
        scalar = [relative_distance(row, vector) for row in matrix]
        assert np.allclose(batch, scalar)

    def test_matches_scalar_form_max_normalizer(self):
        rng = np.random.default_rng(3)
        matrix = rng.integers(0, 64, size=(5, 8))
        vector = rng.integers(0, 64, size=8)
        batch = relative_distance_matrix(matrix, vector, max_normalizer)
        scalar = [
            relative_distance(row, vector, max_normalizer)
            for row in matrix
        ]
        assert np.allclose(batch, scalar)

    def test_custom_normalizer_python_path(self):
        def fixed(total_a, total_b):
            return 100.0

        matrix = np.array([[1, 0], [0, 1]])
        vector = np.array([1, 0])
        out = relative_distance_matrix(matrix, vector, fixed)
        assert np.allclose(out, [0.0, 0.02])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            relative_distance_matrix(
                np.zeros((3, 4)), np.zeros(5)
            )
