"""Unit tests for classification result records."""

import numpy as np
import pytest

from repro.core.events import ClassificationResult, ClassificationRun
from repro.errors import TraceError


def result(phase_id, matched=True):
    return ClassificationResult(
        phase_id=phase_id, matched=matched, distance=0.1
    )


def run_for(ids):
    return ClassificationRun(
        results=[result(i) for i in ids],
        num_phases=len({i for i in ids if i != 0}),
        evictions=0,
    )


class TestClassificationResult:
    def test_is_transition(self):
        assert result(0).is_transition
        assert not result(3).is_transition


class TestClassificationRun:
    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            ClassificationRun(results=[], num_phases=0, evictions=0)

    def test_phase_ids_order(self):
        run = run_for([1, 1, 0, 2])
        assert run.phase_ids.tolist() == [1, 1, 0, 2]

    def test_transition_fraction(self):
        run = run_for([0, 1, 0, 1])
        assert run.transition_fraction == 0.5

    def test_distinct_phases_excludes_transition(self):
        run = run_for([0, 1, 2, 2, 0])
        assert run.distinct_phases_observed == 2

    def test_phase_interval_indices(self):
        run = run_for([1, 2, 1])
        groups = run.phase_interval_indices()
        assert groups[1].tolist() == [0, 2]
        assert groups[2].tolist() == [1]

    def test_phase_change_mask(self):
        run = run_for([1, 1, 2, 2, 1])
        assert run.phase_change_mask().tolist() == [
            False, False, True, False, True,
        ]

    def test_phase_change_fraction(self):
        run = run_for([1, 2, 2, 3])
        assert run.phase_change_fraction == pytest.approx(2 / 3)

    def test_single_interval_change_fraction_zero(self):
        assert run_for([1]).phase_change_fraction == 0.0

    def test_len(self):
        assert len(run_for([1, 2, 3])) == 3
