"""Unit tests for static and dynamic bit selection."""

import numpy as np
import pytest

from repro.core.bitselect import DynamicBitSelector, StaticBitSelector
from repro.errors import ConfigurationError


class TestStaticBitSelector:
    def test_paper_window_bits_14_to_21(self):
        selector = StaticBitSelector(bits=8, low_bit=14)
        assert selector.shift_for(0) == 14
        # A value with known bits in the window.
        value = 0b1010_1010 << 14
        out = selector.compress(np.array([value]), 0)
        assert out[0] == 0b1010_1010

    def test_saturation_above_window(self):
        selector = StaticBitSelector(bits=4, low_bit=4)
        # Bit 8 set: above the window [4, 8) -> saturate to 0b1111.
        out = selector.compress(np.array([1 << 8]), 0)
        assert out[0] == 0b1111

    def test_bits_below_window_dropped(self):
        selector = StaticBitSelector(bits=4, low_bit=4)
        out = selector.compress(np.array([0b1111]), 0)
        assert out[0] == 0

    def test_window_exceeding_width_rejected(self):
        with pytest.raises(ConfigurationError):
            StaticBitSelector(bits=12, low_bit=14)

    def test_invalid_low_bit(self):
        with pytest.raises(ConfigurationError):
            StaticBitSelector(bits=4, low_bit=-1)


class TestDynamicBitSelector:
    def test_two_guard_bits_above_average(self):
        selector = DynamicBitSelector(bits=6)
        # average = 1000 -> bit_length 10 -> window top 12, shift 6.
        assert selector.shift_for(1000) == 6

    def test_shift_floors_at_zero(self):
        selector = DynamicBitSelector(bits=6)
        assert selector.shift_for(0) == 0
        assert selector.shift_for(3) == 0

    def test_average_value_representable(self):
        selector = DynamicBitSelector(bits=6)
        average = 625_000  # 10M instructions / 16 counters
        shift = selector.shift_for(average)
        compressed = selector.compress(np.array([average]), average)
        assert 0 < compressed[0] <= selector.max_value
        # The average must not saturate: 4x headroom by design.
        assert compressed[0] < selector.max_value

    def test_value_above_window_saturates(self):
        selector = DynamicBitSelector(bits=6)
        average = 1 << 12  # bit_length 13 -> window top at bit 15
        out = selector.compress(np.array([1 << 15]), average)
        assert out[0] == selector.max_value

    def test_four_times_average_representable(self):
        # The two guard bits exist precisely so values a few times the
        # average remain representable without saturating.
        selector = DynamicBitSelector(bits=6)
        average = 1 << 12
        out = selector.compress(np.array([average * 4]), average)
        assert 0 < out[0] <= selector.max_value

    def test_twice_average_not_saturated(self):
        selector = DynamicBitSelector(bits=6)
        average = 1 << 12
        out = selector.compress(np.array([average * 2]), average)
        assert out[0] < selector.max_value

    def test_values_out_of_range_saturate_to_all_ones(self):
        selector = DynamicBitSelector(bits=6)
        out = selector.compress(np.array([1 << 23]), 100)
        assert out[0] == selector.max_value

    def test_negative_average_rejected(self):
        with pytest.raises(ValueError):
            DynamicBitSelector(bits=6).shift_for(-1)

    def test_negative_counter_rejected(self):
        with pytest.raises(ValueError):
            DynamicBitSelector(bits=6).compress(np.array([-1]), 10)

    def test_invalid_bits(self):
        with pytest.raises(ConfigurationError):
            DynamicBitSelector(bits=0)
        with pytest.raises(ConfigurationError):
            DynamicBitSelector(bits=30)

    def test_relative_order_preserved_under_compression(self):
        selector = DynamicBitSelector(bits=6)
        average = 10_000
        counters = np.array([0, 2_000, 8_000, 10_000, 20_000, 39_000])
        out = selector.compress(counters, average)
        assert np.all(np.diff(out) >= 0)

    def test_proportionality_within_window(self):
        # Compression is a right shift: ratios are roughly preserved.
        selector = DynamicBitSelector(bits=8)
        average = 1 << 16
        a, b = 1 << 16, 1 << 15
        out = selector.compress(np.array([a, b]), average)
        assert out[0] == 2 * out[1]
