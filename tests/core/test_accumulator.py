"""Unit tests for the accumulator table and PC hashing."""

import numpy as np
import pytest

from repro.core.accumulator import AccumulatorTable, hash_pc
from repro.errors import ConfigurationError


class TestHashPC:
    def test_indices_within_range(self):
        pcs = np.arange(0, 40000, 4)
        indices = hash_pc(pcs, 16)
        assert indices.min() >= 0
        assert indices.max() < 16

    def test_deterministic(self):
        pcs = np.array([0x400, 0x404, 0x1000])
        assert np.array_equal(hash_pc(pcs, 32), hash_pc(pcs, 32))

    def test_spreads_sequential_pcs(self):
        # Sequential word-aligned PCs should hit many buckets, not one.
        pcs = np.arange(0x400, 0x400 + 64 * 4, 4)
        assert len(np.unique(hash_pc(pcs, 16))) >= 8

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            hash_pc(np.array([0]), 12)


class TestAccumulatorTable:
    def test_initial_state(self):
        table = AccumulatorTable(16)
        assert table.counters.sum() == 0
        assert table.total_increment == 0
        assert table.average_counter_value == 0

    def test_single_update(self):
        table = AccumulatorTable(16)
        table.update(0x400, 100)
        assert table.counters.sum() == 100
        assert table.total_increment == 100

    def test_batch_equals_sequential(self):
        pcs = np.arange(0x400, 0x400 + 200 * 4, 4)
        counts = np.arange(1, 201, dtype=np.int64)
        sequential = AccumulatorTable(16)
        for pc, count in zip(pcs, counts):
            sequential.update(int(pc), int(count))
        batched = AccumulatorTable(16)
        batched.update_batch(pcs, counts)
        assert np.array_equal(sequential.counters, batched.counters)
        assert sequential.total_increment == batched.total_increment

    def test_average_counter_value(self):
        table = AccumulatorTable(16)
        table.update_batch(
            np.arange(0, 64 * 4, 4), np.full(64, 1000, dtype=np.int64)
        )
        assert table.average_counter_value == 64000 // 16

    def test_saturation_at_counter_width(self):
        table = AccumulatorTable(2, counter_bits=8)
        for _ in range(10):
            table.update(0x400, 100)
        assert table.counters.max() <= 255

    def test_24bit_never_overflows_10m_interval(self):
        table = AccumulatorTable(16)
        table.update_batch(
            np.arange(0, 1000 * 4, 4),
            np.full(1000, 10_000, dtype=np.int64),
        )
        assert table.counters.sum() == 10_000_000  # no saturation

    def test_clear(self):
        table = AccumulatorTable(8)
        table.update(0, 50)
        table.clear()
        assert table.counters.sum() == 0
        assert table.total_increment == 0

    def test_negative_instructions_rejected(self):
        with pytest.raises(ValueError):
            AccumulatorTable(8).update(0, -1)
        with pytest.raises(ValueError):
            AccumulatorTable(8).update_batch(
                np.array([0]), np.array([-1])
            )

    def test_mismatched_batch_rejected(self):
        with pytest.raises(ValueError):
            AccumulatorTable(8).update_batch(
                np.array([0, 4]), np.array([1])
            )

    @pytest.mark.parametrize("n", [0, 3, 12])
    def test_non_power_of_two_rejected(self, n):
        with pytest.raises(ConfigurationError):
            AccumulatorTable(n)

    def test_invalid_counter_bits(self):
        with pytest.raises(ConfigurationError):
            AccumulatorTable(8, counter_bits=0)

    def test_same_bucket_accumulates(self):
        table = AccumulatorTable(8)
        table.update(0x400, 10)
        table.update(0x400, 20)
        assert table.counters.max() == 30

    def test_batch_is_exact_above_float64_mantissa(self):
        # A float64 bincount would round 2^53 + 1 + 1 down to 2^53; the
        # batch path must match the hardware-faithful integer updates
        # exactly, bit for bit, even at these magnitudes.
        pcs = np.array([0x400, 0x400, 0x400], dtype=np.int64)
        counts = np.array([2**53, 1, 1], dtype=np.int64)

        batched = AccumulatorTable(8, counter_bits=62)
        batched.update_batch(pcs, counts)
        sequential = AccumulatorTable(8, counter_bits=62)
        for pc, count in zip(pcs, counts):
            sequential.update(int(pc), int(count))

        assert np.array_equal(batched.counters, sequential.counters)
        assert batched.counters.max() == 2**53 + 2
        assert batched.total_increment == sequential.total_increment

    def test_batch_exactness_boundary(self):
        # Just under the 2^53 fast-path cutoff the float64 bincount is
        # provably exact; verify both paths agree around the boundary.
        for total in (2**53 - 2, 2**53):
            counts = np.array([total - 1, 1], dtype=np.int64)
            pcs = np.array([0x400, 0x400], dtype=np.int64)
            batched = AccumulatorTable(8, counter_bits=62)
            batched.update_batch(pcs, counts)
            assert batched.counters.max() == total
