"""TrackerPool: the structure-of-arrays core must be indistinguishable
from the scalar PhaseTracker oracle — identical reports, byte-identical
snapshots — across configurations, plus its own slot-lifecycle rules."""

import json

import numpy as np
import pytest

from repro.core import (
    ClassifierConfig,
    ClassifierPool,
    PhaseClassifier,
    PhaseTracker,
    TrackerPool,
    classify_traces_batched,
)
from repro.core.distance import max_normalizer, sum_normalizer
from repro.errors import (
    ConfigurationError,
    PoolError,
    PredictionError,
)
from repro.workloads.trace import Interval, IntervalTrace

INTERVAL = 5_000

CONFIGS = [
    ClassifierConfig.paper_default(),
    ClassifierConfig.paper_baseline(),
    ClassifierConfig(
        num_counters=8,
        bits_per_counter=4,
        table_entries=4,
        similarity_threshold=0.25,
        min_count_threshold=1,
        match_policy="first",
        bit_selector="static",
        static_low_bit=2,
        perf_dev_threshold=0.5,
    ),
]


def interleaved_stream(seed, trackers, records):
    rng = np.random.default_rng(seed)
    slots = rng.integers(0, trackers, size=records)
    pcs = (slots * 256 + rng.integers(0, 12, size=records)) * 4 + 0x4000
    counts = rng.integers(0, 400, size=records)
    return slots, pcs, counts


def drive_both(config, trackers=6, rounds=25, records=300, seed=0):
    """Feed identical interleaved streams to scalar oracles and one
    pool; returns (scalars, handles, scalar_reports, pool_reports)."""
    scalars = [
        PhaseTracker(config, interval_instructions=INTERVAL)
        for _ in range(trackers)
    ]
    pool = TrackerPool(capacity=2, config=config)  # exercises growth
    handles = [
        pool.acquire(interval_instructions=INTERVAL)
        for _ in range(trackers)
    ]
    scalar_reports, pool_reports = [], []
    for round_index in range(rounds):
        slots, pcs, counts = interleaved_stream(
            seed * 1000 + round_index, trackers, records
        )
        cpi = 1.0 + 0.2 * (round_index % 4)
        for slot, pc, count in zip(slots, pcs, counts):
            for report in scalars[slot].observe_batch([pc], [count], cpi=cpi):
                scalar_reports.append((int(slot), report))
        slot_ids = np.array([handles[index].slot for index in slots])
        slot_of = {handles[index].slot: index for index in range(trackers)}
        pool_reports.extend(
            (slot_of[slot], report)
            for slot, report in pool.observe_batch(
                slot_ids, pcs, counts, cpi=cpi
            )
        )
    return scalars, handles, scalar_reports, pool_reports


@pytest.mark.parametrize("config", CONFIGS)
def test_pool_matches_scalar_reports_and_snapshots(config):
    scalars, handles, scalar_reports, pool_reports = drive_both(config)
    assert scalar_reports == pool_reports
    assert len(scalar_reports) > 0
    for scalar, handle in zip(scalars, handles):
        assert json.dumps(scalar.export_state(), sort_keys=True) == (
            json.dumps(handle.export_state(), sort_keys=True)
        )


def test_pool_report_order_matches_record_order():
    """Reports interleave across slots in crossing-record order, the
    order a record-by-record replay produces."""
    config = ClassifierConfig.paper_default()
    pool = TrackerPool(capacity=4, config=config)
    a = pool.allocate(interval_instructions=100)
    b = pool.allocate(interval_instructions=100)
    # b crosses first (record 1), then a (record 2), then b again (3).
    reports = pool.observe_batch(
        [a, b, a, b],
        [0x40, 0x44, 0x48, 0x4C],
        [60, 120, 80, 150],
    )
    assert [slot for slot, _ in reports] == [b, a, b]


def test_mid_interval_snapshot_round_trip():
    """Evict/hydrate mid-interval: export a slot, restore into another
    pool, and both must finish the stream identically to the oracle."""
    config = ClassifierConfig.paper_default()
    scalar = PhaseTracker(config, interval_instructions=INTERVAL)
    pool = TrackerPool(capacity=2, config=config)
    handle = pool.acquire(interval_instructions=INTERVAL)

    rng = np.random.default_rng(42)
    pcs = (rng.integers(0, 32, size=800) * 4 + 0x400).astype(np.int64)
    counts = rng.integers(0, 300, size=800).astype(np.int64)
    scalar.observe_batch(pcs[:500], counts[:500], cpi=1.3)
    handle.observe_batch(pcs[:500], counts[:500], cpi=1.3)
    assert scalar.instructions_into_interval > 0  # genuinely mid-interval

    other = TrackerPool(capacity=1, config=config)
    adopted = other.try_adopt(handle.export_state())
    assert adopted is not None
    r1 = scalar.observe_batch(pcs[500:], counts[500:], cpi=0.9)
    r2 = adopted.observe_batch(pcs[500:], counts[500:], cpi=0.9)
    assert r1 == r2
    assert json.dumps(scalar.export_state(), sort_keys=True) == (
        json.dumps(adopted.export_state(), sort_keys=True)
    )


def test_try_adopt_rejects_foreign_config():
    pool = TrackerPool(capacity=2, config=ClassifierConfig.paper_default())
    scalar = PhaseTracker(
        ClassifierConfig.paper_baseline(), interval_instructions=INTERVAL
    )
    assert pool.try_adopt(scalar.export_state()) is None
    assert pool.active_slots == 0


def test_restore_slot_refuses_config_mismatch():
    pool = TrackerPool(capacity=2, config=ClassifierConfig.paper_default())
    handle = pool.acquire()
    scalar = PhaseTracker(
        ClassifierConfig.paper_baseline(), interval_instructions=INTERVAL
    )
    with pytest.raises(ConfigurationError):
        handle.restore_state(scalar.export_state())


class TestSlotLifecycle:
    def test_release_makes_handle_stale(self):
        pool = TrackerPool(capacity=2)
        handle = pool.acquire()
        handle.release()
        with pytest.raises(PoolError):
            handle.observe_branch(0x400, 10)
        with pytest.raises(PoolError):
            handle.export_state()

    def test_released_handle_keeps_final_summary_stats(self):
        """The service reports intervals/phase in close events after
        recycling, so a released facade must still answer the two
        read-only summary properties (mutation still raises)."""
        pool = TrackerPool(capacity=1, auto_grow=False)
        handle = pool.acquire(interval_instructions=50)
        handle.observe_batch([0x400, 0x404], [60, 60], cpi=1.0)
        intervals = handle.intervals_observed
        phase = handle.current_phase
        assert intervals > 0
        handle.release()
        # The next tenant mutating the slot must not leak through.
        successor = pool.acquire(interval_instructions=50)
        successor.observe_batch([0x500, 0x504], [60, 60], cpi=1.0)
        assert handle.intervals_observed == intervals
        assert handle.current_phase == phase

    def test_slot_reuse_gets_fresh_generation(self):
        pool = TrackerPool(capacity=1, auto_grow=False)
        first = pool.acquire()
        first.observe_branch(0x400, 10)
        first.release()
        second = pool.acquire()
        # Same physical slot, clean state, and the old handle is dead.
        assert second.slot == first.slot
        assert second.instructions_into_interval == 0
        with pytest.raises(PoolError):
            first.observe_branch(0x400, 10)

    def test_full_pool_without_growth_raises(self):
        pool = TrackerPool(capacity=1, auto_grow=False)
        pool.acquire()
        with pytest.raises(PoolError):
            pool.acquire()

    def test_auto_grow_preserves_state(self):
        pool = TrackerPool(capacity=1)
        first = pool.acquire()
        first.observe_branch(0x400, 10)
        before = first.export_state()
        handles = [pool.acquire() for _ in range(7)]
        assert pool.capacity >= 8
        assert first.export_state() == before
        assert len({handle.slot for handle in handles} | {first.slot}) == 8

    def test_unallocated_slot_rejected(self):
        pool = TrackerPool(capacity=4)
        slot = pool.allocate()
        with pytest.raises(PoolError):
            pool.observe_batch([slot, slot + 1], [0x400, 0x404], [1, 1])

    def test_reset_slot_matches_fresh_tracker(self):
        config = ClassifierConfig.paper_default()
        pool = TrackerPool(capacity=2, config=config)
        handle = pool.acquire(interval_instructions=INTERVAL)
        rng = np.random.default_rng(3)
        handle.observe_batch(
            rng.integers(0, 64, size=400) * 4,
            rng.integers(0, 200, size=400),
        )
        handle.reset()
        fresh = PhaseTracker(config, interval_instructions=INTERVAL)
        assert json.dumps(handle.export_state(), sort_keys=True) == (
            json.dumps(fresh.export_state(), sort_keys=True)
        )


class TestValidation:
    def test_infinite_table_rejected(self):
        config = ClassifierConfig(table_entries=None)
        with pytest.raises(PoolError):
            TrackerPool(capacity=4, config=config)

    def test_custom_normalizer_rejected(self):
        with pytest.raises(PoolError):
            ClassifierPool(4, normalizer=lambda a, b: float(max(a, b, 1)))

    def test_max_normalizer_supported(self):
        trace = _make_trace(9, 8)
        config = ClassifierConfig.paper_default()
        pooled = _pool_classify_with_normalizer(trace, config, max_normalizer)
        scalar = PhaseClassifier(
            config, normalizer=max_normalizer
        ).classify_trace(trace)
        assert pooled == [r for r in scalar.results]

    def test_duplicate_slots_in_classify_rejected(self):
        pool = ClassifierPool(4)
        with pytest.raises(PoolError):
            pool.classify(np.array([1, 1]), np.array([1.0, 1.0]))

    def test_boundary_pending_blocks_ingest(self):
        pool = TrackerPool(capacity=2)
        slot = pool.allocate(interval_instructions=100)
        assert pool.observe_branch(slot, 0x400, 150) is True
        with pytest.raises(PredictionError):
            pool.observe_branch(slot, 0x404, 1)
        with pytest.raises(PredictionError):
            pool.observe_batch([slot], [0x404], [1])
        report = pool.complete_interval(slot, cpi=1.0)
        assert report.interval_index == 0

    def test_negative_counts_rejected(self):
        pool = TrackerPool(capacity=2)
        slot = pool.allocate()
        with pytest.raises(ValueError):
            pool.observe_batch([slot], [0x400], [-1])

    def test_empty_batch_is_noop(self):
        pool = TrackerPool(capacity=2)
        pool.allocate()
        assert pool.observe_batch([], [], []) == []


def _make_trace(seed, num_intervals):
    rng = np.random.default_rng(seed)
    intervals = []
    for _ in range(num_intervals):
        branches = int(rng.integers(3, 20))
        intervals.append(Interval(
            branch_pcs=(rng.integers(0, 50, size=branches) * 4 + 0x400)
            .astype(np.int64),
            instr_counts=rng.integers(1, 300, size=branches)
            .astype(np.int64),
            cpi=float(rng.uniform(0.5, 3.0)),
        ))
    return IntervalTrace(name=f"synthetic-{seed}", intervals=intervals)


def _pool_classify_with_normalizer(trace, config, normalizer):
    from repro.core.events import ClassificationResult

    pool = ClassifierPool(1, config, normalizer=normalizer)
    results = []
    for interval in trace:
        pool.ingest(
            np.zeros(interval.branch_pcs.size, dtype=np.int64),
            interval.branch_pcs, interval.instr_counts,
        )
        verdict = pool.classify(
            np.array([0]), np.array([interval.cpi])
        )
        results.append(ClassificationResult(
            phase_id=int(verdict["phase_id"][0]),
            matched=bool(verdict["matched"][0]),
            distance=float(verdict["distance"][0]),
            threshold_tightened=bool(verdict["threshold_tightened"][0]),
            new_phase_allocated=bool(verdict["new_phase_allocated"][0]),
        ))
    return results


@pytest.mark.parametrize("config", CONFIGS)
def test_classify_traces_batched_matches_scalar(config):
    traces = [_make_trace(seed, 8 + seed % 5) for seed in range(7)]
    batched = classify_traces_batched(traces, config)
    for trace, run in zip(traces, batched):
        reference = PhaseClassifier(config).classify_trace(trace)
        assert run.results == reference.results
        assert run.num_phases == reference.num_phases
        assert run.evictions == reference.evictions


def test_classify_traces_batched_empty():
    assert classify_traces_batched([], ClassifierConfig.paper_default()) == []


def test_pooled_reports_are_json_safe():
    """Pooled reports must carry Python scalars, not numpy ones — the
    service serializes them straight to the wire (numpy equality made
    ``==``-based comparisons blind to this)."""
    pool = TrackerPool(capacity=1)
    handle = pool.acquire(interval_instructions=50)
    reports = handle.observe_batch(
        [0x400, 0x404, 0x400, 0x500], [60, 60, 60, 60], cpi=1.0
    )
    assert reports
    for report in reports:
        payload = report.to_dict()
        json.dumps(payload)  # numpy scalars would raise TypeError
        for name, value in payload.items():
            assert value is None or type(value) in (int, bool), name


def test_report_legacy_alias():
    """The deprecated ``interval`` key only appears on request."""
    pool = TrackerPool(capacity=1)
    slot = pool.allocate(interval_instructions=50)
    pool.observe_branch(slot, 0x400, 60)
    report = pool.complete_interval(slot, cpi=1.0)
    modern = report.to_dict()
    assert "interval" not in modern
    legacy = report.to_dict(legacy=True)
    assert legacy["interval"] == legacy["interval_index"] == 0


class TestPoolTelemetry:
    """The pool's self-instrumentation (gauges, counters, the boundary
    batch-size histogram) — all optional, all keyed off ``telemetry=``."""

    def make(self, capacity=4, **kwargs):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        pool = TrackerPool(
            capacity=capacity,
            config=ClassifierConfig.paper_default(),
            telemetry=telemetry,
            **kwargs,
        )
        return pool, telemetry.metrics

    def test_capacity_and_active_gauges(self):
        pool, metrics = self.make(capacity=4)
        assert metrics.get("repro_pool_capacity").value == 4
        assert metrics.get("repro_pool_active_slots").value == 0
        a = pool.allocate()
        pool.allocate()
        assert metrics.get("repro_pool_active_slots").value == 2
        pool.release(a)
        assert metrics.get("repro_pool_active_slots").value == 1
        assert metrics.get("repro_pool_acquires_total").value == 2
        assert metrics.get("repro_pool_releases_total").value == 1

    def test_grow_updates_capacity_gauge_and_counter(self):
        pool, metrics = self.make(capacity=1, auto_grow=True)
        pool.allocate()
        pool.allocate()  # forces growth
        assert metrics.get("repro_pool_grows_total").value == 1
        assert metrics.get("repro_pool_capacity").value == pool.capacity
        assert pool.capacity > 1

    def test_adoption_counter(self):
        source = TrackerPool(capacity=1, config=ClassifierConfig.paper_default())
        handle = source.acquire(interval_instructions=INTERVAL)
        handle.observe_batch([0x400, 0x404], [60, 60], cpi=1.0)
        pool, metrics = self.make(capacity=1)
        assert pool.try_adopt(handle.export_state()) is not None
        assert metrics.get("repro_pool_adoptions_total").value == 1

    def test_boundary_batch_size_histogram(self):
        pool, metrics = self.make(capacity=4)
        slots = [pool.allocate(interval_instructions=100) for _ in range(3)]
        # Every slot crosses its boundary in the same batched round.
        pool.observe_batch(slots, [0x40, 0x44, 0x48], [150, 150, 150])
        histogram = metrics.get("repro_pool_boundary_batch_size")
        assert histogram.count == 1
        assert histogram.sum == 3

    def test_untelemetered_pool_has_no_metrics_overhead(self):
        pool = TrackerPool(capacity=2, config=ClassifierConfig.paper_default())
        assert pool._m_capacity is None
        assert pool._m_batch is None
        slot = pool.allocate()
        pool.observe_batch([slot], [0x40], [10])  # must not raise


class TestObserveFanin:
    """The coalescing fan-in entry point: many per-session slices, one
    fused pass, reports attributed back to the owning segment — and
    the pool state byte-identical to running the slices sequentially."""

    @staticmethod
    def segment_stream(seed, trackers, segments, max_records=12):
        """Random per-request slices: (tracker_index, pcs, counts, cpi),
        several per tracker, each with its own cpi."""
        rng = np.random.default_rng(seed)
        out = []
        for index in range(segments):
            tracker = int(rng.integers(0, trackers))
            size = int(rng.integers(0, max_records + 1))
            pcs = (
                (tracker * 256 + rng.integers(0, 12, size=size)) * 4
                + 0x4000
            )
            counts = rng.integers(0, 400, size=size)
            cpi = float(1.0 + 0.25 * (index % 5))
            out.append((tracker, pcs, counts, cpi))
        return out

    @pytest.mark.parametrize("config", CONFIGS)
    def test_fanin_matches_sequential_observe_batch(self, config):
        trackers = 5
        fused = TrackerPool(capacity=trackers, config=config)
        oracle = TrackerPool(capacity=trackers, config=config)
        fused_handles = [
            fused.acquire(interval_instructions=INTERVAL)
            for _ in range(trackers)
        ]
        oracle_handles = [
            oracle.acquire(interval_instructions=INTERVAL)
            for _ in range(trackers)
        ]
        crossings = 0
        for round_index in range(30):
            stream = self.segment_stream(
                round_index, trackers, segments=16
            )
            segments = [
                (fused_handles[tracker].slot, pcs, counts, cpi)
                for tracker, pcs, counts, cpi in stream
            ]
            fanned = fused.observe_fanin(segments)
            assert len(fanned) == len(segments)
            for (tracker, pcs, counts, cpi), reports in zip(
                stream, fanned
            ):
                expected = oracle_handles[tracker].observe_batch(
                    pcs, counts, cpi=cpi
                )
                assert reports == expected
                crossings += len(reports)
        assert crossings > 0  # the stream actually crossed boundaries
        for fused_handle, oracle_handle in zip(
            fused_handles, oracle_handles
        ):
            assert json.dumps(
                fused_handle.export_state(), sort_keys=True
            ) == json.dumps(oracle_handle.export_state(), sort_keys=True)

    def test_empty_segment_owns_no_reports(self):
        config = ClassifierConfig.paper_default()
        pool = TrackerPool(capacity=2, config=config)
        a = pool.allocate(interval_instructions=100)
        b = pool.allocate(interval_instructions=100)
        # The empty slice sits between two crossing slices that share
        # its concatenation offset; attribution must skip it.
        fanned = pool.observe_fanin([
            (a, [0x40], [150], 1.5),
            (b, [], [], 9.0),
            (b, [0x44], [150], 2.5),
        ])
        assert [len(reports) for reports in fanned] == [1, 0, 1]
        oracle_a = PhaseTracker(config, interval_instructions=100)
        oracle_b = PhaseTracker(config, interval_instructions=100)
        assert fanned[0] == oracle_a.observe_batch([0x40], [150], cpi=1.5)
        assert fanned[2] == oracle_b.observe_batch([0x44], [150], cpi=2.5)

    def test_repeated_slot_slices_apply_in_order(self):
        config = ClassifierConfig.paper_default()
        pool = TrackerPool(capacity=1, config=config)
        oracle = PhaseTracker(config, interval_instructions=100)
        slot = pool.allocate(interval_instructions=100)
        fanned = pool.observe_fanin([
            (slot, [0x40, 0x44], [60, 30], 1.25),
            (slot, [0x48], [80], 3.0),   # crosses here with cpi=3.0
            (slot, [0x4C], [140], 0.5),  # crosses again with cpi=0.5
        ])
        expected = [
            oracle.observe_batch([0x40, 0x44], [60, 30], cpi=1.25),
            oracle.observe_batch([0x48], [80], cpi=3.0),
            oracle.observe_batch([0x4C], [140], cpi=0.5),
        ]
        assert fanned == expected
        assert [len(reports) for reports in fanned] == [0, 1, 1]
        # The per-segment cpis landed in the pool's interval history
        # exactly as sequential scalar calls would record them.
        assert json.dumps(
            pool.export_slot(slot), sort_keys=True
        ) == json.dumps(oracle.export_state(), sort_keys=True)

    def test_empty_call_and_validation(self):
        config = ClassifierConfig.paper_default()
        pool = TrackerPool(capacity=1, config=config)
        slot = pool.allocate(interval_instructions=100)
        assert pool.observe_fanin([]) == []
        assert pool.observe_fanin([(slot, [], [], 1.0)]) == [[]]
        with pytest.raises(PredictionError):
            pool.observe_fanin([(slot, [0x40], [1, 2], 1.0)])
        with pytest.raises(ValueError):
            pool.observe_fanin([(slot, [0x40], [-1], 1.0)])
        with pytest.raises(PoolError):
            pool.observe_fanin([(slot + 1, [0x40], [1], 1.0)])
