"""Unit tests for the past-signature table."""

import pytest

from repro.core.signature import Signature
from repro.core.signature_table import SignatureTable, TableEntry
from repro.errors import ConfigurationError


def sig(*values, bits=6):
    return Signature(list(values), bits=bits)


class TestTableEntry:
    def test_cpi_running_average(self):
        entry = TableEntry(signature=sig(1), similarity_threshold=0.25)
        entry.record_cpi(1.0)
        entry.record_cpi(3.0)
        assert entry.cpi_mean == pytest.approx(2.0)
        assert entry.cpi_count == 2

    def test_cpi_deviation(self):
        entry = TableEntry(signature=sig(1), similarity_threshold=0.25)
        entry.record_cpi(2.0)
        assert entry.cpi_deviation(3.0) == pytest.approx(0.5)
        assert entry.cpi_deviation(2.0) == 0.0

    def test_deviation_without_history_is_zero(self):
        entry = TableEntry(signature=sig(1), similarity_threshold=0.25)
        assert entry.cpi_deviation(100.0) == 0.0

    def test_clear_cpi_stats(self):
        entry = TableEntry(signature=sig(1), similarity_threshold=0.25)
        entry.record_cpi(5.0)
        entry.clear_cpi_stats()
        assert entry.cpi_count == 0
        assert entry.cpi_mean == 0.0


class TestSearch:
    def test_empty_table_no_match(self):
        table = SignatureTable(capacity=4, default_threshold=0.25)
        assert table.best_match(sig(1, 2, 3)) is None

    def test_exact_match_found(self):
        table = SignatureTable(capacity=4, default_threshold=0.25)
        table.insert(sig(10, 10, 10))
        match = table.best_match(sig(10, 10, 10))
        assert match is not None
        assert match[1] == 0.0

    def test_match_within_threshold(self):
        table = SignatureTable(capacity=4, default_threshold=0.25)
        table.insert(sig(10, 10, 0))
        # distance 4, totals 20+20 -> 10% difference: within 25%.
        assert table.best_match(sig(10, 6, 0)) is not None

    def test_no_match_beyond_threshold(self):
        table = SignatureTable(capacity=4, default_threshold=0.125)
        table.insert(sig(10, 10, 0))
        # distance 20, totals 20+20 -> 50% difference.
        assert table.best_match(sig(0, 10, 10)) is None

    def test_most_similar_policy_picks_closest(self):
        table = SignatureTable(capacity=4, default_threshold=0.5)
        far = table.insert(sig(10, 4, 0))
        near = table.insert(sig(10, 9, 0))
        match = table.best_match(sig(10, 10, 0), policy="most_similar")
        assert match is not None and match[0] is near

    def test_first_policy_picks_table_order(self):
        table = SignatureTable(capacity=4, default_threshold=0.5)
        first = table.insert(sig(10, 4, 0))
        table.insert(sig(10, 9, 0))
        match = table.best_match(sig(10, 10, 0), policy="first")
        assert match is not None and match[0] is first

    def test_unknown_policy_rejected(self):
        table = SignatureTable(capacity=4, default_threshold=0.5)
        table.insert(sig(1))
        with pytest.raises(ConfigurationError):
            table.best_match(sig(1), policy="best")

    def test_per_entry_threshold_respected(self):
        table = SignatureTable(capacity=4, default_threshold=0.25)
        entry = table.insert(sig(10, 10, 0))
        entry.similarity_threshold = 0.05
        # 10% difference: within the default but not the tightened one.
        assert table.best_match(sig(10, 6, 0)) is None


class TestMutation:
    def test_touch_replaces_signature(self):
        table = SignatureTable(capacity=4, default_threshold=0.25)
        entry = table.insert(sig(10, 10, 0))
        table.touch(entry, sig(10, 9, 0))
        assert entry.signature == sig(10, 9, 0)
        # Future searches compare against the replaced signature.
        match = table.best_match(sig(10, 9, 0))
        assert match is not None and match[1] == 0.0

    def test_lru_eviction_at_capacity(self):
        table = SignatureTable(capacity=2, default_threshold=0.25)
        a = table.insert(sig(63, 0, 0))
        b = table.insert(sig(0, 63, 0))
        table.touch(a, a.signature)       # refresh a; b becomes LRU
        table.insert(sig(0, 0, 63))       # evicts b
        assert len(table) == 2
        assert table.evictions == 1
        assert b not in table.entries
        assert a in table.entries

    def test_infinite_capacity(self):
        table = SignatureTable(capacity=None, default_threshold=0.25)
        for i in range(100):
            table.insert(sig(i % 64, (i * 7) % 64))
        assert len(table) == 100
        assert table.evictions == 0

    def test_flush_cpi_stats(self):
        table = SignatureTable(capacity=4, default_threshold=0.25)
        entry = table.insert(sig(1))
        entry.record_cpi(2.0)
        table.flush_cpi_stats()
        assert entry.cpi_count == 0

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            SignatureTable(capacity=0, default_threshold=0.25)

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            SignatureTable(capacity=4, default_threshold=0.0)
        with pytest.raises(ConfigurationError):
            SignatureTable(capacity=4, default_threshold=1.5)

    def test_insert_uses_default_threshold(self):
        table = SignatureTable(capacity=4, default_threshold=0.125)
        entry = table.insert(sig(1))
        assert entry.similarity_threshold == 0.125
