"""Counter/gauge/histogram semantics and registry behaviour."""

import threading

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    render_labels,
    validate_labels,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("requests_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_negative_increment_rejected(self):
        counter = Counter("requests_total")
        with pytest.raises(TelemetryError):
            counter.inc(-1)

    def test_invalid_name_rejected(self):
        with pytest.raises(TelemetryError):
            Counter("bad name with spaces")
        with pytest.raises(TelemetryError):
            Counter("0starts_with_digit")

    def test_snapshot(self):
        counter = Counter("x_total", help="things")
        counter.inc(3)
        snap = counter.snapshot()
        assert snap == {
            "name": "x_total", "type": "counter", "help": "things",
            "labels": {}, "value": 3.0,
        }

    def test_concurrent_increments_exact(self):
        counter = Counter("racy_total")

        def hammer():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 80_000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("occupancy")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_snapshot_type(self):
        assert Gauge("g").snapshot()["type"] == "gauge"


class TestHistogram:
    def test_log_scale_bounds(self):
        histogram = Histogram("h", start=1.0, factor=2.0, count=4)
        assert histogram.bounds == (1.0, 2.0, 4.0, 8.0)

    def test_bucket_placement(self):
        histogram = Histogram("h", start=1.0, factor=2.0, count=4)
        for value in (0.5, 1.0, 3.0, 8.0, 100.0):
            histogram.observe(value)
        # 0.5 and 1.0 -> le=1; 3.0 -> le=4; 8.0 -> le=8; 100 -> overflow.
        assert histogram.bucket_counts() == [2, 0, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(112.5)
        assert histogram.mean == pytest.approx(22.5)

    def test_cumulative_buckets_monotone_and_end_at_count(self):
        histogram = Histogram("h", start=1.0, factor=2.0, count=4)
        for value in (0.5, 3.0, 999.0):
            histogram.observe(value)
        pairs = histogram.cumulative_buckets()
        counts = [count for _, count in pairs]
        assert counts == sorted(counts)
        assert pairs[-1] == (float("inf"), 3)

    def test_min_max_tracked(self):
        histogram = Histogram("h")
        histogram.observe(2e-6)
        histogram.observe(5e-3)
        snap = histogram.snapshot()
        assert snap["min"] == pytest.approx(2e-6)
        assert snap["max"] == pytest.approx(5e-3)

    def test_empty_snapshot_has_null_extrema(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None

    def test_bad_geometry_rejected(self):
        with pytest.raises(TelemetryError):
            Histogram("h", start=0.0)
        with pytest.raises(TelemetryError):
            Histogram("h", factor=1.0)
        with pytest.raises(TelemetryError):
            Histogram("h", count=0)


class TestRegistry:
    def test_get_or_create_shares_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total")
        b = registry.counter("hits_total")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(TelemetryError):
            registry.gauge("thing")

    def test_snapshot_preserves_registration_order(self):
        registry = MetricsRegistry()
        registry.counter("b_total")
        registry.gauge("a")
        registry.histogram("c_seconds")
        names = [snap["name"] for snap in registry.snapshot()]
        assert names == ["b_total", "a", "c_seconds"]

    def test_membership_and_len(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        assert "x_total" in registry
        assert "y" not in registry
        assert len(registry) == 1
        assert registry.get("x_total").value == 0
        assert registry.get("y") is None


class TestLabels:
    def test_validate_sorts_and_stringifies(self):
        normalized = validate_labels({"b": 2, "a": "x"})
        assert normalized == {"a": "x", "b": "2"}
        assert list(normalized) == ["a", "b"]
        assert validate_labels(None) == {}
        assert validate_labels({}) == {}

    def test_invalid_label_names_rejected(self):
        for bad in ("0digit", "has space", "has-dash", ""):
            with pytest.raises(TelemetryError):
                validate_labels({bad: "v"})

    def test_reserved_le_rejected(self):
        with pytest.raises(TelemetryError):
            validate_labels({"le": "1.0"})

    def test_escape_label_value(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_render_labels(self):
        assert render_labels({}) == ""
        labels = validate_labels({"route": "/v1", "method": "GET"})
        assert render_labels(labels) == '{method="GET",route="/v1"}'
        assert render_labels({}, extra='le="+Inf"') == '{le="+Inf"}'
        assert (
            render_labels(labels, extra='le="2"')
            == '{method="GET",route="/v1",le="2"}'
        )

    def test_same_name_different_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.counter("req_total", labels={"route": "/a"})
        b = registry.counter("req_total", labels={"route": "/b"})
        assert a is not b
        a.inc(3)
        b.inc(5)
        assert registry.get("req_total", labels={"route": "/a"}).value == 3
        assert registry.get("req_total", labels={"route": "/b"}).value == 5
        assert len(registry) == 2

    def test_label_order_does_not_split_series(self):
        registry = MetricsRegistry()
        a = registry.counter("t_total", labels={"x": "1", "y": "2"})
        b = registry.counter("t_total", labels={"y": "2", "x": "1"})
        assert a is b

    def test_kind_conflict_across_label_sets_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing", labels={"a": "1"})
        with pytest.raises(TelemetryError):
            registry.gauge("thing", labels={"a": "2"})

    def test_snapshot_carries_labels(self):
        registry = MetricsRegistry()
        registry.gauge("occ", labels={"phase": "3"}).set(4)
        (snap,) = registry.snapshot()
        assert snap["labels"] == {"phase": "3"}
