"""JSONL event log: schema, round-trip, lifecycle."""

import io
import json

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.telemetry import EventLog, read_events


def make_log(clock=None):
    stream = io.StringIO()
    kwargs = {"clock": clock} if clock is not None else {}
    return EventLog(stream=stream, **kwargs), stream


class TestEmit:
    def test_envelope_fields_present(self):
        log, stream = make_log(clock=lambda: 123.456)
        record = log.emit("interval", phase_id=3)
        assert record["event"] == "interval"
        assert record["seq"] == 0
        assert record["ts"] == pytest.approx(123.456)
        assert record["phase_id"] == 3
        parsed = json.loads(stream.getvalue())
        assert parsed == record

    def test_seq_strictly_increases(self):
        log, stream = make_log()
        for _ in range(5):
            log.emit("tick")
        records = read_events(io.StringIO(stream.getvalue()))
        assert [r["seq"] for r in records] == [0, 1, 2, 3, 4]
        assert log.records_emitted == 5

    def test_one_line_per_record(self):
        log, stream = make_log()
        log.emit("a", x=1)
        log.emit("b", y=[1, 2, 3])
        lines = stream.getvalue().strip().split("\n")
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)

    def test_reserved_field_rejected(self):
        log, _ = make_log()
        for reserved in ("event", "seq", "ts"):
            with pytest.raises(TelemetryError):
                log.emit("x", **{reserved: 1})

    def test_empty_event_type_rejected(self):
        log, _ = make_log()
        with pytest.raises(TelemetryError):
            log.emit("")

    def test_numpy_scalars_serialized(self):
        log, stream = make_log()
        log.emit("interval", phase_id=np.int64(7), cpi=np.float64(1.5))
        record = json.loads(stream.getvalue())
        assert record["phase_id"] == 7
        assert record["cpi"] == 1.5

    def test_closed_log_rejects_emits(self):
        log, _ = make_log()
        log.close()
        assert log.closed
        with pytest.raises(TelemetryError):
            log.emit("late")

    def test_needs_exactly_one_sink(self):
        with pytest.raises(TelemetryError):
            EventLog()
        with pytest.raises(TelemetryError):
            EventLog(path="x", stream=io.StringIO())


class TestFileRoundTrip:
    def test_path_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLog(path=path) as log:
            log.emit("run_start", experiments=["fig4"], scale=0.05)
            log.emit("interval", interval=0, phase_id=0,
                     is_transition=True, table_occupancy=1)
            log.emit("run_end")
        records = read_events(path)
        assert [r["event"] for r in records] == [
            "run_start", "interval", "run_end",
        ]
        assert records[1]["is_transition"] is True

    def test_interval_schema_round_trip(self):
        """The fields the tracker emits survive a JSONL round trip."""
        log, stream = make_log()
        payload = dict(
            interval=12, phase_id=3, is_transition=False,
            phase_changed=True, new_phase_allocated=False,
            predicted_next_phase=None, prediction_confident=False,
            predicted_length_class=1, table_occupancy=9,
            threshold_halvings=2, cpi=1.25, branches=1003,
        )
        log.emit("interval", **payload)
        (record,) = read_events(io.StringIO(stream.getvalue()))
        for key, expected in payload.items():
            assert record[key] == expected


class TestReadValidation:
    def test_invalid_json_rejected(self):
        with pytest.raises(TelemetryError):
            read_events(["{not json"])

    def test_non_object_rejected(self):
        with pytest.raises(TelemetryError):
            read_events(["[1,2,3]"])

    def test_missing_envelope_rejected(self):
        with pytest.raises(TelemetryError):
            read_events(['{"event": "x", "seq": 0}'])

    def test_non_increasing_seq_rejected(self):
        lines = [
            '{"event": "a", "seq": 1, "ts": 0}',
            '{"event": "b", "seq": 1, "ts": 0}',
        ]
        with pytest.raises(TelemetryError):
            read_events(lines)

    def test_blank_lines_skipped(self):
        lines = ['{"event": "a", "seq": 0, "ts": 0}', "", "  "]
        assert len(read_events(lines)) == 1
