"""Exporters: Prometheus text rendering, JSON snapshots, the hub."""

import io
import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    EventLog,
    JSONExporter,
    MetricsRegistry,
    PrometheusExporter,
    Telemetry,
    exporter_for,
    parse_prometheus_text,
    read_events,
)


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("requests_total", "Requests served").inc(42)
    registry.gauge("occupancy", "Table entries").set(7.5)
    histogram = registry.histogram(
        "latency_seconds", "Latency", start=1.0, factor=2.0, count=3
    )
    for value in (0.5, 1.5, 99.0):
        histogram.observe(value)
    return registry


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        text = PrometheusExporter().render(populated_registry())
        assert "# HELP requests_total Requests served" in text
        assert "# TYPE requests_total counter" in text
        assert "\nrequests_total 42\n" in text
        assert "# TYPE occupancy gauge" in text
        assert "\noccupancy 7.5\n" in text

    def test_histogram_cumulative_buckets(self):
        text = PrometheusExporter().render(populated_registry())
        assert 'latency_seconds_bucket{le="1"} 1' in text
        assert 'latency_seconds_bucket{le="2"} 2' in text
        assert 'latency_seconds_bucket{le="4"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert "latency_seconds_sum 101" in text
        assert "latency_seconds_count 3" in text

    def test_round_trip_through_parser(self):
        text = PrometheusExporter().render(populated_registry())
        samples = parse_prometheus_text(text)
        assert samples["requests_total"] == 42
        assert samples["occupancy"] == 7.5
        assert samples['latency_seconds_bucket{le="+Inf"}'] == 3

    def test_empty_registry_renders_empty(self):
        assert PrometheusExporter().render(MetricsRegistry()) == ""

    def test_parser_rejects_garbage(self):
        with pytest.raises(TelemetryError):
            parse_prometheus_text("one_token_only")


class TestJSON:
    def test_snapshot_shape(self):
        payload = json.loads(JSONExporter().render(populated_registry()))
        assert payload["format"] == "repro.telemetry/v1"
        by_name = {m["name"]: m for m in payload["metrics"]}
        assert by_name["requests_total"]["value"] == 42
        assert by_name["latency_seconds"]["count"] == 3
        assert len(by_name["latency_seconds"]["counts"]) == 4  # +overflow


class TestSelection:
    def test_explicit_format_wins(self):
        assert isinstance(
            exporter_for(format="json", path="x.prom"), JSONExporter
        )

    def test_path_extension_selects(self):
        assert isinstance(exporter_for(path="out.json"), JSONExporter)
        assert isinstance(exporter_for(path="out.prom"), PrometheusExporter)
        assert isinstance(exporter_for(), PrometheusExporter)

    def test_unknown_format_rejected(self):
        with pytest.raises(TelemetryError):
            exporter_for(format="xml")


class TestTelemetryHub:
    def test_shortcuts_share_registry(self):
        telemetry = Telemetry()
        telemetry.counter("a_total").inc()
        assert telemetry.metrics.get("a_total").value == 1

    def test_emit_without_sink_is_noop(self):
        Telemetry().emit("whatever", x=1)  # must not raise

    def test_emit_with_sink_writes(self):
        stream = io.StringIO()
        telemetry = Telemetry(events=EventLog(stream=stream))
        telemetry.emit("hello", n=1)
        (record,) = read_events(io.StringIO(stream.getvalue()))
        assert record["event"] == "hello"

    def test_render_metrics_formats(self):
        telemetry = Telemetry()
        telemetry.counter("a_total").inc(2)
        assert "a_total 2" in telemetry.render_metrics()
        assert json.loads(telemetry.render_metrics(format="json"))

    def test_to_files_writes_on_close(self, tmp_path):
        metrics_path = str(tmp_path / "out.prom")
        events_path = str(tmp_path / "out.jsonl")
        telemetry = Telemetry.to_files(
            metrics_path=metrics_path, events_path=events_path
        )
        telemetry.counter("done_total").inc()
        telemetry.emit("lifecycle")
        telemetry.close()
        telemetry.close()  # idempotent
        assert parse_prometheus_text(
            open(metrics_path).read()
        )["done_total"] == 1
        assert read_events(events_path)[0]["event"] == "lifecycle"
        # Post-close emits are swallowed by the hub, not an error.
        telemetry.emit("late")

    def test_span_timings_passthrough(self):
        telemetry = Telemetry()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        assert "outer/inner" in telemetry.span_timings()
