"""Exporters: Prometheus text rendering, JSON snapshots, the hub."""

import io
import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    EventLog,
    JSONExporter,
    MetricsRegistry,
    PrometheusExporter,
    Telemetry,
    exporter_for,
    parse_prometheus_text,
    read_events,
)


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("requests_total", "Requests served").inc(42)
    registry.gauge("occupancy", "Table entries").set(7.5)
    histogram = registry.histogram(
        "latency_seconds", "Latency", start=1.0, factor=2.0, count=3
    )
    for value in (0.5, 1.5, 99.0):
        histogram.observe(value)
    return registry


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        text = PrometheusExporter().render(populated_registry())
        assert "# HELP requests_total Requests served" in text
        assert "# TYPE requests_total counter" in text
        assert "\nrequests_total 42\n" in text
        assert "# TYPE occupancy gauge" in text
        assert "\noccupancy 7.5\n" in text

    def test_histogram_cumulative_buckets(self):
        text = PrometheusExporter().render(populated_registry())
        assert 'latency_seconds_bucket{le="1"} 1' in text
        assert 'latency_seconds_bucket{le="2"} 2' in text
        assert 'latency_seconds_bucket{le="4"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert "latency_seconds_sum 101" in text
        assert "latency_seconds_count 3" in text

    def test_round_trip_through_parser(self):
        text = PrometheusExporter().render(populated_registry())
        samples = parse_prometheus_text(text)
        assert samples["requests_total"] == 42
        assert samples["occupancy"] == 7.5
        assert samples['latency_seconds_bucket{le="+Inf"}'] == 3

    def test_empty_registry_renders_empty(self):
        assert PrometheusExporter().render(MetricsRegistry()) == ""

    def test_parser_rejects_garbage(self):
        with pytest.raises(TelemetryError):
            parse_prometheus_text("one_token_only")


class TestJSON:
    def test_snapshot_shape(self):
        payload = json.loads(JSONExporter().render(populated_registry()))
        assert payload["format"] == "repro.telemetry/v1"
        by_name = {m["name"]: m for m in payload["metrics"]}
        assert by_name["requests_total"]["value"] == 42
        assert by_name["latency_seconds"]["count"] == 3
        assert len(by_name["latency_seconds"]["counts"]) == 4  # +overflow


class TestSelection:
    def test_explicit_format_wins(self):
        assert isinstance(
            exporter_for(format="json", path="x.prom"), JSONExporter
        )

    def test_path_extension_selects(self):
        assert isinstance(exporter_for(path="out.json"), JSONExporter)
        assert isinstance(exporter_for(path="out.prom"), PrometheusExporter)
        assert isinstance(exporter_for(), PrometheusExporter)

    def test_unknown_format_rejected(self):
        with pytest.raises(TelemetryError):
            exporter_for(format="xml")


class TestTelemetryHub:
    def test_shortcuts_share_registry(self):
        telemetry = Telemetry()
        telemetry.counter("a_total").inc()
        assert telemetry.metrics.get("a_total").value == 1

    def test_emit_without_sink_is_noop(self):
        Telemetry().emit("whatever", x=1)  # must not raise

    def test_emit_with_sink_writes(self):
        stream = io.StringIO()
        telemetry = Telemetry(events=EventLog(stream=stream))
        telemetry.emit("hello", n=1)
        (record,) = read_events(io.StringIO(stream.getvalue()))
        assert record["event"] == "hello"

    def test_render_metrics_formats(self):
        telemetry = Telemetry()
        telemetry.counter("a_total").inc(2)
        assert "a_total 2" in telemetry.render_metrics()
        assert json.loads(telemetry.render_metrics(format="json"))

    def test_to_files_writes_on_close(self, tmp_path):
        metrics_path = str(tmp_path / "out.prom")
        events_path = str(tmp_path / "out.jsonl")
        telemetry = Telemetry.to_files(
            metrics_path=metrics_path, events_path=events_path
        )
        telemetry.counter("done_total").inc()
        telemetry.emit("lifecycle")
        telemetry.close()
        telemetry.close()  # idempotent
        assert parse_prometheus_text(
            open(metrics_path).read()
        )["done_total"] == 1
        assert read_events(events_path)[0]["event"] == "lifecycle"
        # Post-close emits are swallowed by the hub, not an error.
        telemetry.emit("late")

    def test_span_timings_passthrough(self):
        telemetry = Telemetry()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        assert "outer/inner" in telemetry.span_timings()


class TestLabeledExport:
    """Satellite: full exporter output must survive parse_prometheus_text,
    including labeled histograms and hostile label values."""

    def labeled_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        for route, n in (("/v1/sessions", 4), ("/v1/sessions/{id}", 9)):
            registry.counter(
                "http_requests_total", "Requests", labels={"route": route}
            ).inc(n)
        registry.gauge(
            "build_info", "Info", labels={"version": "1.0.0", "pid": "77"}
        ).set(1)
        histogram = registry.histogram(
            "req_seconds", "Latency", start=1.0, factor=2.0, count=3,
            labels={"route": "/metrics"},
        )
        for value in (0.5, 1.5, 99.0):
            histogram.observe(value)
        # Hostile label values: spaces, quotes, backslashes.
        registry.counter(
            "odd_total", "Odd", labels={"msg": 'a "quoted" value', "p": "x y"}
        ).inc(2)
        return registry

    def test_help_and_type_once_per_name(self):
        text = PrometheusExporter().render(self.labeled_registry())
        assert text.count("# HELP http_requests_total") == 1
        assert text.count("# TYPE http_requests_total counter") == 1

    def test_round_trip_full_output(self):
        text = PrometheusExporter().render(self.labeled_registry())
        samples = parse_prometheus_text(text)
        assert samples['http_requests_total{route="/v1/sessions"}'] == 4
        assert samples['http_requests_total{route="/v1/sessions/{id}"}'] == 9
        assert samples['build_info{pid="77",version="1.0.0"}'] == 1

    def test_round_trip_labeled_histogram_buckets(self):
        text = PrometheusExporter().render(self.labeled_registry())
        samples = parse_prometheus_text(text)
        assert samples['req_seconds_bucket{route="/metrics",le="1"}'] == 1
        assert samples['req_seconds_bucket{route="/metrics",le="2"}'] == 2
        assert samples['req_seconds_bucket{route="/metrics",le="4"}'] == 2
        assert samples['req_seconds_bucket{route="/metrics",le="+Inf"}'] == 3
        assert samples['req_seconds_sum{route="/metrics"}'] == 101
        assert samples['req_seconds_count{route="/metrics"}'] == 3

    def test_round_trip_hostile_label_values(self):
        text = PrometheusExporter().render(self.labeled_registry())
        samples = parse_prometheus_text(text)
        key = 'odd_total{msg="a \\"quoted\\" value",p="x y"}'
        assert samples[key] == 2

    def test_every_sample_line_parses(self):
        text = PrometheusExporter().render(self.labeled_registry())
        sample_lines = [
            line for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert len(parse_prometheus_text(text)) == len(sample_lines)


class TestEventSubscriptions:
    def test_subscribe_receives_envelopes_without_sink(self):
        telemetry = Telemetry()
        subscription = telemetry.subscribe()
        telemetry.emit("interval", phase_id=3)
        telemetry.emit("interval", phase_id=4)
        records = subscription.drain()
        assert [r["event"] for r in records] == ["interval", "interval"]
        assert records[0]["seq"] < records[1]["seq"]
        assert records[0]["phase_id"] == 3
        assert "ts" in records[0]
        assert subscription.drain() == []

    def test_subscribe_alongside_sink_shares_records(self):
        stream = io.StringIO()
        telemetry = Telemetry(events=EventLog(stream=stream))
        subscription = telemetry.subscribe()
        telemetry.emit("hello", n=1)
        (via_sub,) = subscription.drain()
        (via_sink,) = read_events(io.StringIO(stream.getvalue()))
        assert via_sub["seq"] == via_sink["seq"]
        assert via_sub["event"] == via_sink["event"] == "hello"

    def test_overflow_drops_oldest_and_counts(self):
        telemetry = Telemetry()
        subscription = telemetry.subscribe(maxlen=3)
        for index in range(5):
            telemetry.emit("tick", index=index)
        assert subscription.dropped == 2
        records = subscription.drain()
        assert [r["index"] for r in records] == [2, 3, 4]

    def test_close_detaches_and_is_idempotent(self):
        telemetry = Telemetry()
        subscription = telemetry.subscribe()
        telemetry.emit("one")
        subscription.close()
        subscription.close()
        telemetry.emit("two")
        assert subscription.drain() == []
        assert subscription.closed

    def test_bad_maxlen_rejected(self):
        with pytest.raises(ValueError):
            Telemetry().subscribe(maxlen=0)
