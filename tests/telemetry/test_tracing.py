"""Span timing, parent/child nesting, and aggregation."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry import MetricsRegistry, Tracer


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestNesting:
    def test_child_paths_are_slash_joined(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("interval"):
            with tracer.span("classify"):
                pass
            with tracer.span("predict"):
                pass
        assert set(tracer.timings()) == {
            "interval", "interval/classify", "interval/predict",
        }

    def test_same_name_under_different_parents_kept_apart(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("step"):
                pass
        with tracer.span("b"):
            with tracer.span("step"):
                pass
        assert "a/step" in tracer.timings()
        assert "b/step" in tracer.timings()

    def test_depth_tracks_open_spans(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.active_depth == 0
        with tracer.span("outer"):
            assert tracer.active_depth == 1
            with tracer.span("inner"):
                assert tracer.active_depth == 2
        assert tracer.active_depth == 0

    def test_span_single_use(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.span("once")
        with span:
            pass
        with pytest.raises(TelemetryError):
            span.__enter__()

    def test_exception_still_recorded_and_propagated(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("faulty"):
                raise RuntimeError("boom")
        assert tracer.timings()["faulty"].count == 1
        assert tracer.active_depth == 0


class TestAggregation:
    def test_stats_with_deterministic_clock(self):
        # Each clock read advances 1s; a span reads the clock twice,
        # so every span measures exactly 1s... unless a nested span
        # consumes reads in between.
        tracer = Tracer(clock=FakeClock(step=1.0))
        for _ in range(3):
            with tracer.span("work"):
                pass
        stats = tracer.timings()["work"]
        assert stats.count == 3
        assert stats.total_seconds == pytest.approx(3.0)
        assert stats.min_seconds == pytest.approx(1.0)
        assert stats.max_seconds == pytest.approx(1.0)
        assert stats.mean_seconds == pytest.approx(1.0)

    def test_registry_histograms_fed_per_path(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry, clock=FakeClock(step=1e-4))
        with tracer.span("interval"):
            with tracer.span("classify"):
                pass
        assert "repro_span_interval_seconds" in registry
        histogram = registry.get("repro_span_interval_classify_seconds")
        assert histogram is not None
        assert histogram.count == 1

    def test_no_registry_means_no_histograms(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("solo"):
            pass
        assert tracer.timings()["solo"].count == 1

    def test_empty_span_name_rejected(self):
        with pytest.raises(TelemetryError):
            Tracer(clock=FakeClock()).span("")
