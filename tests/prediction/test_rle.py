"""Unit tests for RLE-N phase-change predictors."""

import pytest

from repro.errors import ConfigurationError
from repro.prediction.rle import RLEChangePredictor


def feed(predictor, phase_ids, train=True):
    for phase_id in phase_ids:
        completed = predictor.observe(phase_id)
        if completed is not None and train:
            predictor.train_change(predictor.change_key(), phase_id)


class TestKeys:
    def test_change_key_carries_completed_run_length(self):
        predictor = RLEChangePredictor(1)
        feed(predictor, [1, 1, 1, 2], train=False)
        assert predictor.change_key() == ("rle", 1, ((1, 3),))

    def test_running_key_carries_ongoing_length(self):
        predictor = RLEChangePredictor(1)
        feed(predictor, [1, 1, 1, 2, 2], train=False)
        assert predictor.running_key() == ("rle", 1, ((2, 2),))

    def test_depth2_keys(self):
        predictor = RLEChangePredictor(2)
        feed(predictor, [1, 1, 2, 2, 2, 3], train=False)
        assert predictor.change_key() == ("rle", 2, ((1, 2), (2, 3)))
        assert predictor.running_key() == ("rle", 2, ((2, 3), (3, 1)))

    def test_shallow_history_gives_none(self):
        predictor = RLEChangePredictor(2)
        feed(predictor, [1, 1, 2], train=False)
        assert predictor.change_key() is None

    def test_invalid_depth(self):
        with pytest.raises(ConfigurationError):
            RLEChangePredictor(0)


class TestTiming:
    def test_fires_exactly_at_learned_run_length(self):
        """The defining RLE property: a table hit occurs only when the
        ongoing run reaches a previously observed completed length."""
        predictor = RLEChangePredictor(1, use_confidence=False)
        # Learn: phase 1 runs for 3 intervals, then changes to 2.
        feed(predictor, [1, 1, 1, 2, 2])
        # Re-enter phase 1 and watch the running key.
        predictor.observe(1)   # run length 1
        assert not predictor.predict_next().hit
        predictor.observe(1)   # run length 2
        assert not predictor.predict_next().hit
        predictor.observe(1)   # run length 3: matches the learned length
        prediction = predictor.predict_next()
        assert prediction.hit
        assert prediction.matches(2)

    def test_different_run_length_never_hits(self):
        predictor = RLEChangePredictor(1, use_confidence=False)
        feed(predictor, [1, 1, 1, 2, 2])   # learned length 3
        predictor.observe(1)
        predictor.observe(1)
        predictor.observe(3)               # actual change at length 2
        prediction = predictor.predict_change()
        assert not prediction.hit          # key (1,2) was never stored


class TestTraining:
    def test_repeating_pattern_predicts_change_outcomes(self):
        predictor = RLEChangePredictor(2, use_confidence=False)
        pattern = [1, 1, 2, 2, 2] * 6
        hits, correct = 0, 0
        for phase_id in pattern:
            completed = predictor.observe(phase_id)
            if completed is not None:
                prediction = predictor.predict_change()
                if prediction.hit:
                    hits += 1
                    correct += prediction.matches(phase_id)
                predictor.train_change(predictor.change_key(), phase_id)
        assert hits >= 5
        assert correct == hits  # strictly periodic: always right

    def test_confidence_gates_predictions(self):
        predictor = RLEChangePredictor(1, use_confidence=True)
        feed(predictor, [1, 1, 2, 2])     # entry ((1,2)) -> 2 inserted
        predictor.observe(1)
        predictor.observe(1)
        prediction = predictor.predict_next()
        assert prediction.hit
        assert not prediction.confident    # unverified entry

    def test_last4_entry_kind_supported(self):
        predictor = RLEChangePredictor(1, entry_kind="last4",
                                       use_confidence=False)
        feed(predictor, [1, 1, 2, 1, 1, 3, 1, 1, 4])
        predictor.observe(1)
        predictor.observe(1)
        prediction = predictor.predict_next()
        assert prediction.hit
        assert set(prediction.outcomes) == {2, 3, 4}
