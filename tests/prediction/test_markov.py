"""Unit tests for Markov-N phase-change predictors."""

import pytest

from repro.errors import ConfigurationError
from repro.prediction.change_base import ChangeEntry
from repro.prediction.markov import MarkovChangePredictor


def feed(predictor, phase_ids, train=True):
    """Drive a predictor over a phase stream, training at changes."""
    for phase_id in phase_ids:
        completed = predictor.observe(phase_id)
        if completed is not None and train:
            predictor.train_change(predictor.change_key(), phase_id)


class TestHistory:
    def test_runs_accumulate(self):
        predictor = MarkovChangePredictor(1)
        feed(predictor, [1, 1, 2, 2, 2, 3])
        assert predictor.completed_runs == [(1, 2), (2, 3)]
        assert predictor.current_phase == 3
        assert predictor.current_run_length == 1

    def test_observe_returns_completed_run(self):
        predictor = MarkovChangePredictor(1)
        assert predictor.observe(1) is None
        assert predictor.observe(1) is None
        assert predictor.observe(2) == (1, 2)

    def test_invalid_order(self):
        with pytest.raises(ConfigurationError):
            MarkovChangePredictor(0)


class TestKeys:
    def test_change_key_uses_completed_run_phase(self):
        predictor = MarkovChangePredictor(1)
        feed(predictor, [1, 1, 2], train=False)
        assert predictor.change_key() == ("markov", 1, (1,))

    def test_running_key_includes_current_phase(self):
        predictor = MarkovChangePredictor(1)
        feed(predictor, [1, 1, 2], train=False)
        assert predictor.running_key() == ("markov", 1, (2,))

    def test_order2_key_has_two_unique_ids(self):
        predictor = MarkovChangePredictor(2)
        feed(predictor, [1, 1, 2, 2, 3], train=False)
        assert predictor.change_key() == ("markov", 2, (1, 2))
        assert predictor.running_key() == ("markov", 2, (2, 3))

    def test_key_none_with_shallow_history(self):
        predictor = MarkovChangePredictor(2)
        predictor.observe(1)
        assert predictor.running_key() is None


class TestPrediction:
    def test_learns_alternation(self):
        predictor = MarkovChangePredictor(1, use_confidence=False)
        # Phase stream 1,2,1,2,...: after training, following phase 1
        # the table predicts 2.
        feed(predictor, [1, 2, 1, 2, 1, 2])
        prediction = predictor.predict_next()
        assert prediction.hit
        assert prediction.primary in (1, 2)

    def test_change_prediction_correct_on_repeat(self):
        predictor = MarkovChangePredictor(1, use_confidence=False)
        feed(predictor, [1, 1, 2, 2, 1, 1])
        # At this point history has seen change 1->2 once.
        predictor.observe(2)   # the change 1->2 happens again
        prediction = predictor.predict_change()
        assert prediction.hit
        assert prediction.matches(2)

    def test_no_confidence_predictions_always_confident(self):
        predictor = MarkovChangePredictor(1, use_confidence=False)
        feed(predictor, [1, 1, 2, 1])
        if predictor.predict_next().hit:
            assert predictor.predict_next().confident

    def test_confidence_requires_verification(self):
        predictor = MarkovChangePredictor(1, use_confidence=True)
        feed(predictor, [1, 1, 2])
        # Entry (1)->2 just inserted: 1-bit counter at 0, not confident.
        predictor.observe(1)
        predictor.observe(1)
        key = predictor.running_key()
        entry = predictor.table.peek(key)
        assert entry is not None
        assert not entry.confidence.confident
        # A second correct observation of the change confirms it.
        predictor.train_change(key, 2)
        assert entry.confidence.confident

    def test_miss_returns_empty_prediction(self):
        predictor = MarkovChangePredictor(1)
        predictor.observe(1)
        prediction = predictor.predict_next()
        assert not prediction.hit
        assert prediction.outcomes == ()
        assert prediction.primary is None


class TestEntryKinds:
    def test_single_keeps_latest(self):
        entry = ChangeEntry("single")
        entry.record_outcome(2)
        entry.record_outcome(3)
        assert entry.predicted_outcomes() == (3,)

    def test_last4_keeps_unique_recent(self):
        entry = ChangeEntry("last4")
        for outcome in (1, 2, 3, 4, 5, 2):
            entry.record_outcome(outcome)
        outcomes = entry.predicted_outcomes()
        assert outcomes[0] == 2           # most recent first
        assert set(outcomes) == {2, 5, 4, 3}

    def test_top1_most_frequent(self):
        entry = ChangeEntry("top1")
        for outcome in (1, 2, 2, 2, 3):
            entry.record_outcome(outcome)
        assert entry.predicted_outcomes() == (2,)

    def test_top4_frequency_order(self):
        entry = ChangeEntry("top4")
        for outcome in (1, 1, 1, 2, 2, 3, 4, 4):
            entry.record_outcome(outcome)
        outcomes = entry.predicted_outcomes()
        assert outcomes[0] == 1
        assert len(outcomes) == 4

    def test_empty_entry_predicts_nothing(self):
        assert ChangeEntry("last4").predicted_outcomes() == ()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ChangeEntry("top9")

    def test_predictor_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            MarkovChangePredictor(1, entry_kind="bogus")


class TestRemoval:
    def test_note_same_phase_removes_entry(self):
        predictor = MarkovChangePredictor(1, use_confidence=False)
        feed(predictor, [1, 1, 2])
        predictor.observe(1)
        key = predictor.running_key()
        assert predictor.table.peek(key) is not None
        predictor.note_same_phase(key)
        assert predictor.table.peek(key) is None

    def test_train_none_key_is_noop(self):
        predictor = MarkovChangePredictor(2)
        predictor.train_change(None, 5)
        assert len(predictor.table) == 0
