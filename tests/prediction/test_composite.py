"""Unit tests for the composite next-phase predictor and its stats."""

import pytest

from repro.errors import PredictionError
from repro.prediction.composite import (
    CATEGORIES,
    CompositePhasePredictor,
    NextPhaseStats,
)
from repro.prediction.markov import MarkovChangePredictor
from repro.prediction.rle import RLEChangePredictor


class TestNextPhaseStats:
    def test_counts_start_zero(self):
        stats = NextPhaseStats()
        assert stats.total == 0
        assert stats.accuracy == 0.0
        assert stats.coverage == 0.0

    def test_unknown_category_rejected(self):
        with pytest.raises(PredictionError):
            NextPhaseStats().record("correct_everything")

    def test_accuracy_and_coverage(self):
        stats = NextPhaseStats()
        stats.record("correct_table")
        stats.record("correct_lv_conf")
        stats.record("correct_lv_unconf")
        stats.record("incorrect_lv_conf")
        assert stats.total == 4
        assert stats.accuracy == pytest.approx(3 / 4)
        assert stats.covered == 3
        assert stats.coverage == pytest.approx(3 / 4)
        assert stats.confident_accuracy == pytest.approx(2 / 3)
        assert stats.misprediction_rate == pytest.approx(1 / 4)

    def test_fractions_sum_to_one(self):
        stats = NextPhaseStats()
        for category in CATEGORIES:
            stats.record(category)
        assert sum(stats.fractions().values()) == pytest.approx(1.0)


class TestPureLastValue:
    def test_stable_stream_mostly_correct(self):
        predictor = CompositePhasePredictor(None)
        stats = predictor.run([1] * 50)
        assert stats.accuracy == 1.0

    def test_first_interval_not_scored(self):
        predictor = CompositePhasePredictor(None)
        stats = predictor.run([1, 1, 1])
        assert stats.total == 2

    def test_alternating_stream_all_wrong(self):
        predictor = CompositePhasePredictor(None)
        stats = predictor.run([1, 2] * 20)
        assert stats.accuracy == 0.0

    def test_confidence_categories_split(self):
        predictor = CompositePhasePredictor(None)
        stats = predictor.run([1] * 20)
        # Early predictions unconfident, later ones confident.
        assert stats.counts["correct_lv_unconf"] > 0
        assert stats.counts["correct_lv_conf"] > 0

    def test_lv_confidence_disabled(self):
        predictor = CompositePhasePredictor(None, lv_use_confidence=False)
        stats = predictor.run([1] * 10)
        assert stats.counts["correct_lv_unconf"] == 0
        assert stats.coverage == 1.0


class TestWithChangePredictor:
    def test_rle_learns_periodic_stream(self):
        # Strict period: RLE should eventually predict the changes.
        stream = [1, 1, 1, 2, 2] * 20
        with_rle = CompositePhasePredictor(
            RLEChangePredictor(2, use_confidence=False)
        ).run(stream)
        lv_only = CompositePhasePredictor(None).run(stream)
        assert with_rle.accuracy > lv_only.accuracy
        assert with_rle.counts["correct_table"] > 0

    def test_table_predictions_counted_separately(self):
        stream = [1, 1, 2] * 30
        stats = CompositePhasePredictor(
            RLEChangePredictor(1, use_confidence=False)
        ).run(stream)
        table_total = (
            stats.counts["correct_table"] + stats.counts["incorrect_table"]
        )
        assert table_total > 0

    def test_markov_does_not_crash_on_noise(self):
        import numpy as np

        rng = np.random.default_rng(0)
        stream = rng.integers(1, 6, size=300).tolist()
        stats = CompositePhasePredictor(
            MarkovChangePredictor(2)
        ).run(stream)
        assert stats.total == 299

    def test_early_fire_punished_without_confidence(self):
        # Phase 1 runs length 2 then 2->... train entry keyed (1);
        # Markov-1 fires mid-run; without confidence the entry is
        # removed after a same-phase interval.
        predictor = MarkovChangePredictor(1, use_confidence=False)
        composite = CompositePhasePredictor(predictor)
        composite.run([1, 1, 2, 1, 1, 1, 1])
        # After the early fire, the (1,) entry must be gone.
        assert predictor.table.peek(("markov", 1, (1,))) is None

    def test_early_fire_demotes_with_confidence(self):
        predictor = MarkovChangePredictor(1, use_confidence=True)
        composite = CompositePhasePredictor(predictor)
        composite.run([1, 1, 2, 1, 1, 1, 1])
        entry = predictor.table.peek(("markov", 1, (1,)))
        # Entry survives but is not confident.
        assert entry is not None
        assert not entry.confidence.confident

    def test_step_returns_evaluated_prediction(self):
        composite = CompositePhasePredictor(None)
        assert composite.step(1) is None          # seeding
        evaluated = composite.step(1)
        assert evaluated is not None
        assert evaluated.phase_id == 1
