"""Unit tests for the perfect (oracle) Markov predictors."""

import pytest

from repro.errors import ConfigurationError
from repro.prediction.perfect import PerfectMarkovPredictor


class TestPerfectMarkov:
    def test_no_change_returns_none(self):
        oracle = PerfectMarkovPredictor(1)
        assert oracle.observe(1) is None
        assert oracle.observe(1) is None

    def test_first_occurrence_incorrect(self):
        oracle = PerfectMarkovPredictor(1)
        oracle.observe(1)
        assert oracle.observe(2) is False  # cold transition

    def test_repeat_occurrence_correct(self):
        oracle = PerfectMarkovPredictor(1)
        for phase in (1, 2, 1):
            oracle.observe(phase)
        # Transition 1->2 was seen before: now correct.
        assert oracle.observe(2) is True

    def test_unbounded_memory(self):
        oracle = PerfectMarkovPredictor(1)
        # 100 distinct transitions, then replay them all: all correct.
        for i in range(100):
            oracle.observe(i)
        for i in range(100):
            verdict = oracle.observe(i)
        # The final transitions repeat (99 -> 0 ... seen?); at minimum
        # the oracle recorded every first-pass transition.
        assert oracle.transitions_recorded >= 100

    def test_order2_needs_two_history_entries(self):
        oracle = PerfectMarkovPredictor(2)
        oracle.observe(1)
        # First change: history too shallow for an order-2 key.
        assert oracle.observe(2) is False

    def test_order2_distinguishes_contexts(self):
        oracle = PerfectMarkovPredictor(2)
        # (1,2)->3 then (4,2)->5: contexts differ, both cold.
        for phase in (1, 2, 3):
            oracle.observe(phase)
        for phase in (4, 2):
            oracle.observe(phase)
        assert oracle.observe(5) is False   # (4,2)->5 never seen
        # Replay (1,2)->3: seen before.
        for phase in (1, 2):
            oracle.observe(phase)
        assert oracle.observe(3) is True

    def test_invalid_order(self):
        with pytest.raises(ConfigurationError):
            PerfectMarkovPredictor(0)

    def test_perfect_accuracy_on_cycle(self):
        oracle = PerfectMarkovPredictor(1)
        cycle = [1, 2, 3] * 10
        verdicts = [v for v in map(oracle.observe, cycle) if v is not None]
        # After the first lap every change repeats.
        assert all(verdicts[3:])
        assert verdicts[:2] == [False, False]
