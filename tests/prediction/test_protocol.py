"""The unified PhasePredictor protocol: every predictor family
conforms to ``advance() -> PhaseObservation``, and the historical
``observe()`` signatures survive as deprecating shims."""

import pytest

from repro.prediction import (
    CHANGE_PREDICTOR_KINDS,
    LastValuePredictor,
    MarkovChangePredictor,
    PerfectMarkovPredictor,
    PhaseLengthPredictor,
    PhaseObservation,
    PhasePredictor,
    RLEChangePredictor,
    TournamentChangePredictor,
    change_predictor_from_spec,
)
from repro.errors import SnapshotError

ALL_PREDICTORS = [
    lambda: LastValuePredictor(),
    lambda: RLEChangePredictor(2),
    lambda: MarkovChangePredictor(1, entry_kind="top4"),
    lambda: PerfectMarkovPredictor(1),
    lambda: PhaseLengthPredictor(),
    lambda: TournamentChangePredictor(
        RLEChangePredictor(2), MarkovChangePredictor(1, entry_kind="top4")
    ),
]


@pytest.mark.parametrize("build", ALL_PREDICTORS)
def test_conforms_to_protocol(build):
    predictor = build()
    assert isinstance(predictor, PhasePredictor)


@pytest.mark.parametrize("build", ALL_PREDICTORS)
def test_advance_returns_uniform_observation(build):
    predictor = build()
    first = predictor.advance(3)
    assert isinstance(first, PhaseObservation)
    assert first.phase_id == 3
    assert first.phase_changed is False  # seeding never reports a change
    same = predictor.advance(3)
    assert same.phase_changed is False
    changed = predictor.advance(5)
    assert changed.phase_changed is True
    assert changed.phase_id == 5


@pytest.mark.parametrize("build", ALL_PREDICTORS)
def test_reset_restarts_the_stream(build):
    predictor = build()
    for phase in (3, 3, 5):
        predictor.advance(phase)
    predictor.reset()
    assert predictor.advance(7).phase_changed is False


@pytest.mark.parametrize("build", ALL_PREDICTORS)
def test_observe_shim_deprecates(build):
    predictor = build()
    with pytest.deprecated_call():
        predictor.observe(3)


def test_change_observation_carries_completed_run():
    predictor = RLEChangePredictor(2)
    predictor.advance(3)
    predictor.advance(3)
    observation = predictor.advance(5)
    assert observation.completed_run == (3, 2)


def test_perfect_observation_carries_oracle_verdict():
    predictor = PerfectMarkovPredictor(1)
    predictor.advance(3)
    observation = predictor.advance(5)
    assert observation.phase_changed is True
    assert observation.oracle_correct is False  # cold start


class TestChangePredictorRegistry:
    def test_registry_round_trips_specs(self):
        for kind, cls in CHANGE_PREDICTOR_KINDS.items():
            assert cls.snapshot_kind == kind
        rebuilt = change_predictor_from_spec(
            {"kind": "rle", "kwargs": RLEChangePredictor(2).snapshot_kwargs()}
        )
        assert isinstance(rebuilt, RLEChangePredictor)

    def test_none_spec_means_no_predictor(self):
        assert change_predictor_from_spec(None) is None

    def test_unknown_kind_raises(self):
        with pytest.raises(SnapshotError):
            change_predictor_from_spec({"kind": "nope", "kwargs": {}})

    def test_bad_kwargs_raise(self):
        with pytest.raises(SnapshotError):
            change_predictor_from_spec(
                {"kind": "rle", "kwargs": {"bogus": 1}}
            )
