"""Unit tests for the set-associative prediction table."""

import pytest

from repro.errors import ConfigurationError
from repro.prediction.assoc_table import AssociativeTable


class TestGeometry:
    def test_paper_default_32_entry_4_way(self):
        table = AssociativeTable()
        assert table.entries == 32
        assert table.assoc == 4
        assert table.num_sets == 8

    @pytest.mark.parametrize("entries,assoc", [(0, 4), (32, 0), (30, 4)])
    def test_invalid_geometry(self, entries, assoc):
        with pytest.raises(ConfigurationError):
            AssociativeTable(entries=entries, assoc=assoc)


class TestLookupInsert:
    def test_miss_returns_none(self):
        assert AssociativeTable().lookup("missing") is None

    def test_insert_then_lookup(self):
        table = AssociativeTable()
        table.insert("key", 42)
        assert table.lookup("key") == 42

    def test_insert_overwrites(self):
        table = AssociativeTable()
        table.insert("key", 1)
        table.insert("key", 2)
        assert table.lookup("key") == 2
        assert len(table) == 1

    def test_peek_does_not_touch_lru(self):
        table = AssociativeTable(entries=2, assoc=2)
        table.insert("a", 1)
        table.insert("b", 2)
        table.peek("a")           # must NOT refresh a
        table.lookup("b")         # b is MRU
        table.insert("c", 3)      # evicts a (LRU despite the peek)
        assert table.lookup("a") is None
        assert table.lookup("b") == 2

    def test_remove(self):
        table = AssociativeTable()
        table.insert("key", 1)
        assert table.remove("key") is True
        assert table.remove("key") is False
        assert table.lookup("key") is None

    def test_items_lists_all(self):
        table = AssociativeTable()
        table.insert("a", 1)
        table.insert("b", 2)
        assert dict(table.items()) == {"a": 1, "b": 2}

    def test_tuple_keys(self):
        table = AssociativeTable()
        key = ("rle", 2, ((1, 5), (2, 3)))
        table.insert(key, 7)
        assert table.lookup(key) == 7


class TestEviction:
    def test_lru_evicted_within_set(self):
        table = AssociativeTable(entries=2, assoc=2)  # one set
        table.insert("a", 1)
        table.insert("b", 2)
        table.lookup("a")          # refresh a
        table.insert("c", 3)       # evicts b
        assert table.lookup("b") is None
        assert table.lookup("a") == 1
        assert table.evictions == 1

    def test_capacity_respected(self):
        table = AssociativeTable(entries=8, assoc=2)
        for i in range(100):
            table.insert(("k", i), i)
        assert len(table) <= 8

    def test_insertion_counter(self):
        table = AssociativeTable()
        table.insert("a", 1)
        table.insert("b", 2)
        table.insert("a", 3)  # overwrite: not a new insertion
        assert table.insertions == 2


class TestSetIndexDeterminism:
    def test_set_index_is_process_independent(self):
        """Built-in ``hash()`` of strings is salted per interpreter;
        the table must not depend on it, or a crash-recovered process
        places restored ways in different sets than the original."""
        import os
        import subprocess
        import sys

        program = (
            "from repro.prediction.assoc_table import _set_index\n"
            "keys = [('rle', 2, ((1, 5), (2, 3))), ('markov', 0, (7,)),"
            " (1, 2, 3), 'plain-string']\n"
            "print([_set_index(k, 8) for k in keys])\n"
        )
        outputs = set()
        for seed in ("0", "1", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True, text=True, check=True,
                env=dict(os.environ, PYTHONHASHSEED=seed,
                         PYTHONPATH="src"),
                cwd=os.path.dirname(os.path.dirname(os.path.dirname(
                    os.path.abspath(__file__)
                ))),
            )
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1
