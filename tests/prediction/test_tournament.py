"""Tests for the tournament phase-change predictor (extension).

Empirical note (recorded in EXPERIMENTS.md): on the shipped synthetic
workloads the tournament matches Top-4 Markov-1 rather than beating it,
because confident RLE hits nest inside Markov's correct set. Its value
is adaptivity: whichever component a workload favours, the tournament
follows without retuning — the safety property asserted below.
"""

import pytest

from repro.errors import ConfigurationError
from repro.prediction import (
    MarkovChangePredictor,
    RLEChangePredictor,
    TournamentChangePredictor,
    evaluate_change_predictor,
)


def alternation(n=40):
    """Markov-friendly: 1 -> 2 -> 1 with noisy run lengths."""
    import numpy as np

    rng = np.random.default_rng(3)
    stream = []
    phase = 1
    for _ in range(n):
        stream.extend([phase] * int(rng.integers(1, 6)))
        phase = 3 - phase
    return stream


def fixed_period(n=40):
    """RLE-friendly: exact run lengths repeating."""
    return ([1] * 3 + [2] * 5) * n


class TestConstruction:
    def test_defaults(self):
        tournament = TournamentChangePredictor()
        assert isinstance(tournament.first, MarkovChangePredictor)
        assert isinstance(tournament.second, RLEChangePredictor)

    def test_meta_bits_validated(self):
        with pytest.raises(ConfigurationError):
            TournamentChangePredictor(meta_bits=0)

    def test_initially_prefers_first(self):
        assert TournamentChangePredictor().prefers_first


class TestBehaviour:
    def test_observe_keeps_components_in_step(self):
        tournament = TournamentChangePredictor()
        for phase in (1, 1, 2, 2, 3):
            tournament.observe(phase)
        assert (
            tournament.first.completed_runs
            == tournament.second.completed_runs
        )

    def test_change_key_none_before_history(self):
        tournament = TournamentChangePredictor()
        tournament.observe(1)
        assert tournament.change_key() is None or isinstance(
            tournament.change_key(), tuple
        )

    def test_matches_markov_on_markov_friendly_stream(self):
        stream = alternation()
        tournament_stats = evaluate_change_predictor(
            list(stream), TournamentChangePredictor()
        )
        markov_stats = evaluate_change_predictor(
            list(stream), MarkovChangePredictor(1, entry_kind="top4")
        )
        assert tournament_stats.accuracy >= markov_stats.accuracy - 0.05

    def test_matches_rle_on_rle_friendly_stream(self):
        stream = fixed_period()
        tournament_stats = evaluate_change_predictor(
            list(stream), TournamentChangePredictor()
        )
        rle_stats = evaluate_change_predictor(
            list(stream), RLEChangePredictor(2)
        )
        assert tournament_stats.accuracy >= rle_stats.accuracy - 0.05

    def test_never_far_below_best_component(self, classified_small):
        ids = classified_small.phase_ids
        best = max(
            evaluate_change_predictor(
                ids, MarkovChangePredictor(1, entry_kind="top4")
            ).accuracy,
            evaluate_change_predictor(ids, RLEChangePredictor(2)).accuracy,
        )
        tournament = evaluate_change_predictor(
            ids, TournamentChangePredictor()
        ).accuracy
        assert tournament >= best - 0.1

    def test_meta_moves_toward_better_component(self):
        # Fixed-period stream: RLE is exact, Markov's Top-4 also right;
        # use a stream where Markov is wrong: three-phase rotation with
        # single-outcome markov entries vs exact-length RLE.
        stream = ([1] * 3 + [2] * 3 + [1] * 3 + [3] * 3) * 20
        tournament = TournamentChangePredictor(
            first=MarkovChangePredictor(1, entry_kind="single",
                                        use_confidence=False),
            second=RLEChangePredictor(2, use_confidence=False),
        )
        evaluate_change_predictor(list(stream), tournament)
        # Markov-1 'single' flip-flops on 1 -> {2, 3}; RLE-2 keys
        # disambiguate. The meta must have moved toward RLE (second).
        assert not tournament.prefers_first
