"""Unit tests for phase-change prediction evaluation (Figure 8)."""

import pytest

from repro.errors import PredictionError
from repro.prediction.change_eval import (
    CHANGE_CATEGORIES,
    ChangePredictionStats,
    evaluate_change_predictor,
)
from repro.prediction.markov import MarkovChangePredictor
from repro.prediction.perfect import PerfectMarkovPredictor
from repro.prediction.rle import RLEChangePredictor


class TestStats:
    def test_categories(self):
        stats = ChangePredictionStats()
        for category in CHANGE_CATEGORIES:
            stats.record(category)
        assert stats.total_changes == 5
        assert stats.correct == 2
        assert stats.accuracy == pytest.approx(2 / 5)

    def test_unknown_category_rejected(self):
        with pytest.raises(PredictionError):
            ChangePredictionStats().record("banana")

    def test_rates(self):
        stats = ChangePredictionStats()
        stats.record("conf_correct")
        stats.record("conf_incorrect")
        stats.record("tag_miss")
        assert stats.confident_coverage == pytest.approx(1 / 3)
        assert stats.misprediction_rate == pytest.approx(1 / 3)

    def test_fractions_sum_to_one(self):
        stats = ChangePredictionStats()
        stats.record("conf_correct")
        stats.record("tag_miss")
        assert sum(stats.fractions().values()) == pytest.approx(1.0)

    def test_empty_stats_safe(self):
        stats = ChangePredictionStats()
        assert stats.accuracy == 0.0
        assert stats.misprediction_rate == 0.0


class TestEvaluation:
    def test_only_changes_scored(self):
        stats = evaluate_change_predictor(
            [1, 1, 1, 2, 2, 1], MarkovChangePredictor(1)
        )
        assert stats.total_changes == 2  # 1->2 and 2->1

    def test_no_changes_no_counts(self):
        stats = evaluate_change_predictor([1] * 20, MarkovChangePredictor(1))
        assert stats.total_changes == 0

    def test_periodic_stream_learned(self):
        stream = [1, 1, 2, 2, 3, 3] * 10
        stats = evaluate_change_predictor(
            stream, MarkovChangePredictor(1, use_confidence=False)
        )
        # After one lap, every change context repeats with one outcome.
        assert stats.accuracy > 0.7
        assert stats.counts["tag_miss"] <= 3

    def test_confidence_splits_categories(self):
        stream = [1, 1, 2, 2] * 15
        stats = evaluate_change_predictor(
            stream, MarkovChangePredictor(1, use_confidence=True)
        )
        # First hits are unconfident, later ones confident.
        assert stats.counts["unconf_correct"] > 0
        assert stats.counts["conf_correct"] > 0

    def test_rle_cold_lengths_miss(self):
        # Lengths never repeat: every RLE change key is cold.
        stream = []
        for length in (1, 2, 3, 4, 5, 6, 7):
            stream.extend([1] * length)
            stream.extend([2] * (length + 7))
        stats = evaluate_change_predictor(
            stream, RLEChangePredictor(2, use_confidence=False)
        )
        assert stats.counts["tag_miss"] == stats.total_changes

    def test_perfect_markov_evaluation(self):
        stream = [1, 2, 3] * 10
        stats = evaluate_change_predictor(stream, PerfectMarkovPredictor(1))
        assert stats.counts["tag_miss"] == 0
        assert stats.counts["conf_incorrect"] == 3  # cold lap, 1->2 counted once warm
        assert stats.accuracy > 0.85

    def test_perfect_markov_bounds_real_markov(self):
        import numpy as np

        rng = np.random.default_rng(1)
        stream = []
        phases = [1, 2, 3, 4]
        for _ in range(100):
            phase = int(rng.choice(phases))
            stream.extend([phase] * int(rng.integers(1, 4)))
        oracle = evaluate_change_predictor(
            list(stream), PerfectMarkovPredictor(1)
        )
        real = evaluate_change_predictor(
            list(stream), MarkovChangePredictor(1, use_confidence=False)
        )
        assert oracle.accuracy >= real.accuracy
