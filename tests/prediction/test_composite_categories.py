"""Category-exact tests for the composite predictor (Figure 7 bars).

Each test crafts a phase stream whose outcome categories are known in
advance and verifies the exact counts — the stacked-bar bookkeeping
the figure relies on.
"""

import pytest

from repro.prediction.composite import CompositePhasePredictor
from repro.prediction.rle import RLEChangePredictor


class TestLastValueCategories:
    def test_warmup_then_confident(self):
        """Phase 1 repeated: first 6 evaluated predictions unconfident
        (counter climbing to threshold 6), the rest confident."""
        stats = CompositePhasePredictor(None).run([1] * 10)
        assert stats.counts["correct_lv_unconf"] == 6
        assert stats.counts["correct_lv_conf"] == 3
        assert stats.total == 9

    def test_single_change_categorized_unconfident(self):
        # 1,1,2: prediction after second 1 is "1" (counter=1, unconf);
        # actual 2 -> incorrect_lv_unconf.
        stats = CompositePhasePredictor(None).run([1, 1, 2])
        assert stats.counts["incorrect_lv_unconf"] == 1
        assert stats.counts["correct_lv_unconf"] == 1

    def test_confident_miss_counted(self):
        # Build confidence on phase 1, then change.
        stream = [1] * 9 + [2]
        stats = CompositePhasePredictor(None).run(stream)
        assert stats.counts["incorrect_lv_conf"] == 1

    def test_counts_partition_totals(self):
        import numpy as np

        rng = np.random.default_rng(4)
        stream = rng.integers(1, 4, size=200).tolist()
        stats = CompositePhasePredictor(None).run(stream)
        assert sum(stats.counts.values()) == len(stream) - 1
        assert stats.counts["correct_table"] == 0
        assert stats.counts["incorrect_table"] == 0


class TestTableCategories:
    def test_confident_rle_prediction_lands_in_table_bucket(self):
        """Strictly periodic stream: after the RLE entry is verified
        once, its firing produces table-sourced predictions."""
        stream = ([1] * 3 + [2] * 3) * 10
        predictor = RLEChangePredictor(1)
        stats = CompositePhasePredictor(predictor).run(stream)
        assert stats.counts["correct_table"] > 0

    def test_unconfident_table_hit_falls_back_to_lv(self):
        """The first occurrence of an RLE key is unconfident, so the
        composite uses last value (which is wrong at the change)."""
        stream = [1, 1, 1, 2, 1, 1, 1, 2]
        predictor = RLEChangePredictor(1)
        stats = CompositePhasePredictor(predictor).run(stream)
        # Three last-value misses: the first 1->2 change, the 2->1
        # change back, and the second 1->2 change, where the table key
        # (1,3) hit but its confidence was still 0 so last value was
        # used. None may land in the table buckets.
        assert stats.counts["correct_table"] == 0
        assert stats.counts["incorrect_table"] == 0
        incorrect_lv = (
            stats.counts["incorrect_lv_unconf"]
            + stats.counts["incorrect_lv_conf"]
        )
        assert incorrect_lv == 3

    def test_third_occurrence_confident(self):
        stream = [1, 1, 1, 2] * 3 + [1, 1, 1]
        predictor = RLEChangePredictor(1)
        composite = CompositePhasePredictor(predictor)
        composite.run(stream)
        # By now the (1,3)->2 entry has been verified; mid-run at
        # length 3 the composite must produce a table prediction of 2.
        prediction = composite.predict()
        assert prediction.source == "table"
        assert prediction.phase_id == 2

    def test_no_conf_table_used_immediately(self):
        stream = [1, 1, 1, 2, 1, 1, 1]
        predictor = RLEChangePredictor(1, use_confidence=False)
        composite = CompositePhasePredictor(predictor)
        composite.run(stream)
        prediction = composite.predict()
        # Without table confidence the single prior observation is
        # enough for a table-sourced prediction.
        assert prediction.source == "table"
        assert prediction.phase_id == 2
