"""Unit tests for the last-value predictor with per-phase confidence."""

import pytest

from repro.errors import PredictionError
from repro.prediction.last_value import LastValuePredictor


class TestBasics:
    def test_predict_before_observe_raises(self):
        with pytest.raises(PredictionError):
            LastValuePredictor().predict()

    def test_predicts_last_observed(self):
        predictor = LastValuePredictor()
        predictor.observe(3)
        assert predictor.predict().phase_id == 3
        predictor.observe(5)
        assert predictor.predict().phase_id == 5

    def test_accuracy_tracking(self):
        predictor = LastValuePredictor()
        for phase in (1, 1, 1, 2):
            predictor.observe(phase)
        # Three evaluated predictions: 1->1 ok, 1->1 ok, 1->2 wrong.
        assert predictor.predictions == 3
        assert predictor.correct == 2
        assert predictor.accuracy == pytest.approx(2 / 3)

    def test_accuracy_zero_before_predictions(self):
        assert LastValuePredictor().accuracy == 0.0

    def test_current_phase_property(self):
        predictor = LastValuePredictor()
        assert predictor.current_phase is None
        predictor.observe(9)
        assert predictor.current_phase == 9


class TestConfidence:
    def test_stable_phase_becomes_confident(self):
        predictor = LastValuePredictor()
        predictor.observe(1)
        for _ in range(6):
            predictor.observe(1)
        assert predictor.predict().confident

    def test_fresh_phase_not_confident(self):
        predictor = LastValuePredictor()
        predictor.observe(1)
        assert not predictor.predict().confident

    def test_unstable_phase_demoted(self):
        predictor = LastValuePredictor()
        # Alternation: every prediction from each phase is wrong.
        for _ in range(10):
            predictor.observe(1)
            predictor.observe(2)
        predictor.observe(1)
        assert not predictor.predict().confident

    def test_confidence_is_per_phase(self):
        predictor = LastValuePredictor()
        for _ in range(8):
            predictor.observe(1)   # phase 1 confident
        predictor.observe(2)        # new phase: fresh counter
        assert not predictor.predict().confident
        for _ in range(7):
            predictor.observe(2)
        assert predictor.predict().confident

    def test_confidence_disabled_always_confident(self):
        predictor = LastValuePredictor(use_confidence=False)
        predictor.observe(1)
        assert predictor.predict().confident

    def test_custom_counter_geometry(self):
        predictor = LastValuePredictor(
            confidence_bits=1, confidence_threshold=1
        )
        predictor.observe(4)
        predictor.observe(4)
        assert predictor.predict().confident
