"""Unit tests for run-length classes and phase length prediction."""

import pytest

from repro.errors import ConfigurationError
from repro.prediction.length import (
    LENGTH_CLASS_BOUNDS,
    LENGTH_CLASS_LABELS,
    PhaseLengthPredictor,
    _LengthEntry,
    length_class,
)


class TestLengthClass:
    @pytest.mark.parametrize("length,expected", [
        (1, 0), (15, 0),            # 10M-150M instructions
        (16, 1), (127, 1),          # 160M-1.27B
        (128, 2), (1023, 2),        # 1.28B-10.2B
        (1024, 3), (100000, 3),     # > 10.24B
    ])
    def test_paper_class_boundaries(self, length, expected):
        assert length_class(length) == expected

    def test_invalid_length(self):
        with pytest.raises(ConfigurationError):
            length_class(0)

    def test_bounds_and_labels_aligned(self):
        assert len(LENGTH_CLASS_BOUNDS) == len(LENGTH_CLASS_LABELS) == 4


class TestHysteresis:
    def test_single_deviation_does_not_flip(self):
        entry = _LengthEntry(predicted_class=0)
        entry.train(1)
        assert entry.predicted_class == 0
        assert entry.pending_class == 1

    def test_two_in_a_row_flips(self):
        entry = _LengthEntry(predicted_class=0)
        entry.train(1)
        entry.train(1)
        assert entry.predicted_class == 1
        assert entry.pending_class is None

    def test_interrupted_pending_resets(self):
        entry = _LengthEntry(predicted_class=0)
        entry.train(1)
        entry.train(0)   # back to agreeing: pending cleared
        entry.train(1)
        assert entry.predicted_class == 0

    def test_alternating_noise_filtered(self):
        entry = _LengthEntry(predicted_class=0)
        for observed in (1, 0, 1, 0, 1, 0):
            entry.train(observed)
        assert entry.predicted_class == 0


class TestPhaseLengthPredictor:
    def test_invalid_depth(self):
        with pytest.raises(ConfigurationError):
            PhaseLengthPredictor(depth=0)

    def test_learns_periodic_lengths(self):
        predictor = PhaseLengthPredictor(depth=2)
        # Strict period: phase 1 runs 3 (class 0), phase 2 runs 20
        # (class 1), repeating.
        stream = ([1] * 3 + [2] * 20) * 12
        for phase_id in stream:
            predictor.observe(phase_id)
        stats = predictor.stats
        assert stats.predictions > 10
        # After warmup, predictions are nearly perfect.
        assert stats.misprediction_rate < 0.2

    def test_no_changes_no_predictions(self):
        predictor = PhaseLengthPredictor()
        for _ in range(50):
            predictor.observe(1)
        assert predictor.stats.predictions == 0

    def test_tag_miss_counted_and_falls_back(self):
        predictor = PhaseLengthPredictor(depth=2)
        # Never-repeating lengths: all keys cold.
        stream = []
        for length in (2, 5, 9, 13, 4, 11, 7):
            stream.extend([1] * length)
            stream.extend([2] * (length + 1))
        for phase_id in stream:
            predictor.observe(phase_id)
        assert predictor.stats.tag_misses > 0
        # Fallback still issues predictions (all runs are class 0 here,
        # so the adaptive fallback is always right).
        assert predictor.stats.misprediction_rate == 0.0

    def test_confusion_matrix_populated(self):
        predictor = PhaseLengthPredictor()
        stream = ([1] * 3 + [2] * 20) * 6
        for phase_id in stream:
            predictor.observe(phase_id)
        assert predictor.stats.confusion
        assert sum(predictor.stats.confusion.values()) == (
            predictor.stats.predictions
        )

    def test_misprediction_rate_empty(self):
        assert PhaseLengthPredictor().stats.misprediction_rate == 0.0


class TestConfusionTable:
    def test_renders_all_classes(self):
        predictor = PhaseLengthPredictor()
        stream = ([1] * 3 + [2] * 20) * 6
        for phase_id in stream:
            predictor.observe(phase_id)
        table = predictor.stats.confusion_table()
        for label in ("1-15", "16-127", "128-1023", "1024-"):
            assert label in table
        # One row per class plus the header.
        assert len(table.splitlines()) == 5

    def test_counts_match_predictions(self):
        predictor = PhaseLengthPredictor()
        stream = ([1] * 3 + [2] * 20) * 6
        for phase_id in stream:
            predictor.observe(phase_id)
        total_cells = sum(predictor.stats.confusion.values())
        assert total_cells == predictor.stats.predictions
