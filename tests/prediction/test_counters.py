"""Unit tests for saturating and confidence counters."""

import pytest

from repro.errors import ConfigurationError
from repro.prediction.counters import (
    ConfidenceConfig,
    ConfidenceCounter,
    SaturatingCounter,
)


class TestSaturatingCounter:
    def test_saturates_high(self):
        counter = SaturatingCounter(bits=2)
        for _ in range(10):
            counter.up()
        assert counter.value == 3

    def test_saturates_low(self):
        counter = SaturatingCounter(bits=2, initial=1)
        for _ in range(5):
            counter.down()
        assert counter.value == 0

    def test_custom_increments(self):
        counter = SaturatingCounter(bits=4, increment=3, decrement=2)
        counter.up()
        assert counter.value == 3
        counter.down()
        assert counter.value == 1

    def test_reset(self):
        counter = SaturatingCounter(bits=3, initial=5)
        counter.reset()
        assert counter.value == 0
        counter.reset(7)
        assert counter.value == 7

    def test_reset_out_of_range(self):
        with pytest.raises(ConfigurationError):
            SaturatingCounter(bits=2).reset(4)

    @pytest.mark.parametrize("kwargs", [
        {"bits": 0},
        {"bits": 31},
        {"bits": 3, "initial": 8},
        {"bits": 3, "increment": 0},
        {"bits": 3, "decrement": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            SaturatingCounter(**kwargs)


class TestConfidenceCounter:
    def test_paper_3bit_threshold_6(self):
        counter = ConfidenceCounter(bits=3, threshold=6)
        assert not counter.confident
        for _ in range(6):
            counter.record(True)
        assert counter.confident

    def test_default_threshold_one_below_saturation(self):
        counter = ConfidenceCounter(bits=3)
        assert counter.threshold == 6

    def test_one_bit_counter_confident_only_at_saturation(self):
        counter = ConfidenceCounter(bits=1)
        assert counter.threshold == 1
        assert not counter.confident
        counter.record(True)
        assert counter.confident
        counter.record(False)
        assert not counter.confident

    def test_incorrect_predictions_demote(self):
        counter = ConfidenceCounter(bits=3, threshold=6)
        for _ in range(7):
            counter.record(True)
        counter.record(False)
        counter.record(False)
        assert not counter.confident

    def test_threshold_out_of_range(self):
        with pytest.raises(ConfigurationError):
            ConfidenceCounter(bits=2, threshold=5)


class TestConfidenceConfig:
    def test_paper_defaults(self):
        config = ConfidenceConfig()
        assert config.last_value_bits == 3
        assert config.last_value_threshold == 6
        assert config.change_table_bits == 1

    def test_counter_factories(self):
        config = ConfidenceConfig()
        lv = config.last_value_counter()
        assert lv.bits == 3 and lv.threshold == 6
        change = config.change_table_counter()
        assert change.bits == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConfidenceConfig(last_value_threshold=8)
        with pytest.raises(ConfigurationError):
            ConfidenceConfig(change_table_bits=0)
