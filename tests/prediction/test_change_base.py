"""Direct tests for the shared change-predictor machinery."""

import pytest

from repro.errors import ConfigurationError
from repro.prediction.change_base import (
    ChangeEntry,
    ChangePrediction,
    ChangePredictorBase,
)


class TestChangePrediction:
    def test_primary_none_on_miss(self):
        prediction = ChangePrediction(outcomes=(), confident=False,
                                      hit=False)
        assert prediction.primary is None
        assert not prediction.matches(1)

    def test_matches_any_outcome(self):
        prediction = ChangePrediction(outcomes=(3, 5), confident=True,
                                      hit=True)
        assert prediction.matches(3)
        assert prediction.matches(5)
        assert not prediction.matches(4)
        assert prediction.primary == 3


class TestChangeEntryFrequencies:
    def test_top1_tie_broken_by_counter_order(self):
        entry = ChangeEntry("top1")
        entry.record_outcome(1)
        entry.record_outcome(2)
        # Tie: Counter.most_common breaks by insertion order.
        assert entry.predicted_outcomes() == (1,)
        entry.record_outcome(2)
        assert entry.predicted_outcomes() == (2,)

    def test_top4_fewer_than_four_outcomes(self):
        entry = ChangeEntry("top4")
        entry.record_outcome(7)
        assert entry.predicted_outcomes() == (7,)

    def test_last4_reorders_on_repeat(self):
        entry = ChangeEntry("last4")
        for outcome in (1, 2, 3, 1):
            entry.record_outcome(outcome)
        assert entry.predicted_outcomes()[0] == 1


class TestBaseHistoryBounds:
    class _Stub(ChangePredictorBase):
        def change_key(self):
            return ("stub", tuple(self._runs))

        def running_key(self):
            return ("stub-run", tuple(self._runs))

    def test_history_depth_enforced(self):
        predictor = self._Stub(history_depth=3)
        for phase in (1, 2, 3, 4, 5, 6):
            predictor.observe(phase)
        assert len(predictor.completed_runs) <= 3

    def test_invalid_history_depth(self):
        with pytest.raises(ConfigurationError):
            self._Stub(history_depth=0)

    def test_invalid_entry_kind(self):
        with pytest.raises(ConfigurationError):
            self._Stub(entry_kind="mode")

    def test_train_then_predict_round_trip(self):
        predictor = self._Stub()
        predictor.observe(1)
        predictor.observe(2)           # change 1 -> 2
        key = predictor.change_key()
        predictor.train_change(key, 2)
        prediction = predictor._lookup(key)
        assert prediction.hit
        assert prediction.matches(2)

    def test_confidence_two_step(self):
        predictor = self._Stub(use_confidence=True)
        predictor.observe(1)
        predictor.observe(2)
        key = predictor.change_key()
        predictor.train_change(key, 2)       # insert
        assert not predictor._lookup(key).confident
        predictor.train_change(key, 2)       # verified once
        assert predictor._lookup(key).confident
        predictor.train_change(key, 9)       # wrong: demoted
        assert not predictor._lookup(key).confident
