"""Tests for the SimPoint classifier and simulation points."""

import numpy as np
import pytest

from repro.analysis.cov import cov_of, weighted_cov
from repro.core import ClassifierConfig, PhaseClassifier
from repro.errors import ConfigurationError, TraceError
from repro.offline import SimPointClassifier
from repro.workloads.trace import Interval, IntervalTrace


def synthetic_trace(rng, pattern=(0, 0, 0, 1, 1, 0, 0, 1, 1, 1) * 4):
    """Two code behaviours with distinct CPI, noisy BBV weights."""
    populations = {
        0: (np.arange(0x1000, 0x1000 + 40, 4), 1.0),
        1: (np.arange(0x9000, 0x9000 + 40, 4), 2.5),
    }
    intervals = []
    for behaviour in pattern:
        pcs, cpi = populations[behaviour]
        weights = rng.dirichlet(np.full(len(pcs), 5.0))
        counts = np.maximum((weights * 100000).astype(np.int64), 1)
        intervals.append(
            Interval(pcs, counts, cpi=cpi * float(rng.uniform(0.97, 1.03)),
                     region=behaviour)
        )
    return IntervalTrace("synthetic", intervals)


class TestSimPointClassifier:
    def test_recovers_two_behaviours(self, rng):
        trace = synthetic_trace(rng)
        result = SimPointClassifier(max_k=5).classify(trace)
        regions = trace.regions
        # All intervals of one region share a label, and the two
        # regions get different labels.
        labels0 = set(result.labels[regions == 0].tolist())
        labels1 = set(result.labels[regions == 1].tolist())
        assert len(labels0) == 1
        assert len(labels1) == 1
        assert labels0 != labels1

    def test_simulation_point_weights_sum_to_one(self, rng):
        result = SimPointClassifier(max_k=5).classify(synthetic_trace(rng))
        assert sum(
            p.weight for p in result.simulation_points
        ) == pytest.approx(1.0)

    def test_representative_belongs_to_its_phase(self, rng):
        result = SimPointClassifier(max_k=5).classify(synthetic_trace(rng))
        for point in result.simulation_points:
            assert result.labels[point.interval_index] == point.phase

    def test_estimate_mean_close_to_truth(self, rng):
        trace = synthetic_trace(rng)
        result = SimPointClassifier(max_k=5).classify(trace)
        estimate = result.estimate_mean(trace.cpis)
        truth = float(trace.cpis.mean())
        assert abs(estimate - truth) / truth < 0.1

    def test_estimate_mean_length_checked(self, rng):
        trace = synthetic_trace(rng)
        result = SimPointClassifier(max_k=3).classify(trace)
        with pytest.raises(TraceError):
            result.estimate_mean(np.ones(3))

    def test_bic_scores_recorded(self, rng):
        result = SimPointClassifier(max_k=4).classify(synthetic_trace(rng))
        assert len(result.bic_scores) == 4

    def test_max_k_validation(self):
        with pytest.raises(ConfigurationError):
            SimPointClassifier(max_k=0)

    def test_deterministic(self, rng):
        trace = synthetic_trace(rng)
        a = SimPointClassifier(max_k=4, seed=7).classify(trace)
        b = SimPointClassifier(max_k=4, seed=7).classify(trace)
        assert np.array_equal(a.labels, b.labels)


class TestOnlineVsOffline:
    def test_online_cov_comparable_to_simpoint(self, small_trace):
        """The paper's §4.4 claim, on a real benchmark trace."""
        online = PhaseClassifier(
            ClassifierConfig(
                num_counters=16, table_entries=32,
                similarity_threshold=0.25, min_count_threshold=8,
            )
        ).classify_trace(small_trace)
        online_cov = weighted_cov(online, small_trace)

        offline = SimPointClassifier(max_k=10).classify(small_trace)
        cpis = small_trace.cpis
        offline_cov = 0.0
        for _, indices in offline.phase_interval_indices().items():
            offline_cov += (
                indices.size / len(small_trace) * cov_of(cpis[indices])
            )
        # "Comparable": within a factor of two either way.
        assert online_cov < 2.0 * offline_cov + 0.05
        assert offline_cov < 2.0 * online_cov + 0.05


class TestEarlyPoints:
    def test_early_points_never_later_than_standard(self, rng):
        trace = synthetic_trace(rng)
        standard = SimPointClassifier(max_k=4, seed=3).classify(trace)
        early = SimPointClassifier(
            max_k=4, seed=3, early_points=True
        ).classify(trace)
        assert early.k == standard.k
        by_phase_standard = {
            p.phase: p.interval_index for p in standard.simulation_points
        }
        for point in early.simulation_points:
            assert point.interval_index <= by_phase_standard[point.phase]

    def test_early_points_still_representative(self, rng):
        trace = synthetic_trace(rng)
        early = SimPointClassifier(
            max_k=4, early_points=True
        ).classify(trace)
        estimate = early.estimate_mean(trace.cpis)
        truth = float(trace.cpis.mean())
        assert abs(estimate - truth) / truth < 0.15

    def test_weights_unchanged_by_early_selection(self, rng):
        trace = synthetic_trace(rng)
        early = SimPointClassifier(
            max_k=4, early_points=True
        ).classify(trace)
        assert sum(
            p.weight for p in early.simulation_points
        ) == pytest.approx(1.0)
