"""Unit tests for the k-means implementation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.offline.kmeans import kmeans


def blobs(rng, centers, points_per_center=30, spread=0.05):
    """Well-separated Gaussian blobs for recovery tests."""
    data = []
    for center in centers:
        data.append(
            rng.normal(loc=center, scale=spread,
                       size=(points_per_center, len(center)))
        )
    return np.vstack(data)


class TestKMeans:
    def test_recovers_separated_blobs(self, rng):
        data = blobs(rng, [(0, 0), (5, 5), (0, 5)])
        result = kmeans(data, 3, seed=1)
        # Each blob of 30 consecutive points shares one label.
        for start in range(0, 90, 30):
            labels = result.labels[start:start + 30]
            assert len(set(labels.tolist())) == 1
        # And the three blobs get three distinct labels.
        assert len({int(result.labels[i]) for i in (0, 30, 60)}) == 3

    def test_k1_single_cluster(self, rng):
        data = rng.normal(size=(20, 3))
        result = kmeans(data, 1)
        assert result.k == 1
        assert (result.labels == 0).all()
        assert np.allclose(result.centroids[0], data.mean(axis=0))

    def test_inertia_decreases_with_k(self, rng):
        data = blobs(rng, [(0, 0), (4, 4), (8, 0), (4, -4)])
        inertias = [kmeans(data, k, seed=2).inertia for k in (1, 2, 4)]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_k_equals_n_zero_inertia(self, rng):
        data = rng.normal(size=(6, 2))
        result = kmeans(data, 6, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_labels_within_range(self, rng):
        data = rng.normal(size=(40, 4))
        result = kmeans(data, 5)
        assert result.labels.min() >= 0
        assert result.labels.max() < 5

    def test_cluster_sizes_sum_to_n(self, rng):
        data = rng.normal(size=(33, 2))
        result = kmeans(data, 4)
        assert result.cluster_sizes().sum() == 33

    def test_deterministic_under_seed(self, rng):
        data = rng.normal(size=(50, 3))
        a = kmeans(data, 4, seed=9)
        b = kmeans(data, 4, seed=9)
        assert np.array_equal(a.labels, b.labels)

    def test_duplicate_points_handled(self):
        data = np.ones((10, 2))
        result = kmeans(data, 3)
        assert result.inertia == pytest.approx(0.0)

    @pytest.mark.parametrize("kwargs", [
        {"k": 0},
        {"k": 100},
        {"restarts": 0},
        {"max_iterations": 0},
    ])
    def test_validation(self, rng, kwargs):
        data = rng.normal(size=(10, 2))
        params = dict(k=2)
        params.update(kwargs)
        with pytest.raises(ConfigurationError):
            kmeans(data, **params)

    def test_empty_data_rejected(self):
        with pytest.raises(ConfigurationError):
            kmeans(np.empty((0, 2)), 1)
