"""Unit tests for BBV construction, projection, and BIC selection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError
from repro.offline.bbv import build_bbv_matrix, random_projection
from repro.offline.bic import bic_score, pick_k_by_bic
from repro.offline.kmeans import kmeans
from repro.workloads.trace import Interval, IntervalTrace


def make_trace(rows):
    """rows: list of dicts pc -> instruction count."""
    intervals = []
    for row in rows:
        pcs = np.array(list(row.keys()), dtype=np.int64)
        counts = np.array(list(row.values()), dtype=np.int64)
        intervals.append(Interval(pcs, counts, cpi=1.0))
    return IntervalTrace("t", intervals)


class TestBBV:
    def test_rows_normalized(self):
        trace = make_trace([{4: 10, 8: 30}, {8: 5}])
        bbv = build_bbv_matrix(trace)
        assert np.allclose(bbv.matrix.sum(axis=1), 1.0)

    def test_columns_cover_all_pcs(self):
        trace = make_trace([{4: 1}, {8: 1}, {12: 1}])
        bbv = build_bbv_matrix(trace)
        assert bbv.num_blocks == 3
        assert set(bbv.block_pcs.tolist()) == {4, 8, 12}

    def test_weights_proportional(self):
        trace = make_trace([{4: 10, 8: 30}])
        bbv = build_bbv_matrix(trace)
        col4 = int(np.nonzero(bbv.block_pcs == 4)[0][0])
        col8 = int(np.nonzero(bbv.block_pcs == 8)[0][0])
        assert bbv.matrix[0, col8] == pytest.approx(0.75)
        assert bbv.matrix[0, col4] == pytest.approx(0.25)

    def test_identical_intervals_identical_rows(self):
        trace = make_trace([{4: 2, 8: 6}, {4: 2, 8: 6}])
        bbv = build_bbv_matrix(trace)
        assert np.allclose(bbv.matrix[0], bbv.matrix[1])


class TestRandomProjection:
    def test_shape(self, rng):
        data = rng.random((20, 100))
        out = random_projection(data, dimensions=15)
        assert out.shape == (20, 15)

    def test_deterministic(self, rng):
        data = rng.random((10, 50))
        assert np.allclose(
            random_projection(data, 8, seed=1),
            random_projection(data, 8, seed=1),
        )

    def test_projection_to_higher_dims_is_identity(self, rng):
        data = rng.random((5, 4))
        out = random_projection(data, dimensions=10)
        assert np.allclose(out, data)

    def test_preserves_relative_distances_roughly(self, rng):
        # Two tight groups far apart must stay separated after
        # projection (Johnson-Lindenstrauss in spirit).
        a = rng.normal(0.0, 0.01, size=(10, 200))
        b = rng.normal(1.0, 0.01, size=(10, 200))
        data = np.vstack([a, b])
        out = random_projection(data, dimensions=15, seed=3)
        within = np.linalg.norm(out[0] - out[5])
        across = np.linalg.norm(out[0] - out[15])
        assert across > 3 * within

    def test_invalid_dimensions(self, rng):
        with pytest.raises(ConfigurationError):
            random_projection(rng.random((5, 10)), dimensions=0)


class TestBIC:
    def test_right_k_scores_best_on_blobs(self, rng):
        centers = [(0, 0), (6, 6), (0, 6)]
        data = np.vstack([
            rng.normal(loc=c, scale=0.05, size=(25, 2)) for c in centers
        ])
        scores = {
            k: bic_score(data, kmeans(data, k, seed=4)) for k in (1, 2, 3, 5)
        }
        assert scores[3] > scores[1]
        assert scores[3] > scores[2]

    def test_more_points_than_clusters_required(self, rng):
        data = rng.normal(size=(3, 2))
        clustering = kmeans(data, 3)
        assert bic_score(data, clustering) == float("-inf")

    def test_pick_k_smallest_above_threshold(self):
        # Scores rising then flat: threshold 0.9 picks the first k
        # reaching 90% of the range.
        scores = [-100.0, -15.0, -10.0, -11.0]
        # Range is [-100, -10]; -15 sits at 94% of it, above threshold.
        assert pick_k_by_bic(scores, [1, 2, 3, 4], threshold=0.9) == 2
        # A stricter threshold forces the best k instead.
        assert pick_k_by_bic(scores, [1, 2, 3, 4], threshold=0.99) == 3

    def test_pick_k_handles_all_equal(self):
        assert pick_k_by_bic([-5.0, -5.0], [1, 2]) == 1

    def test_pick_k_validation(self):
        with pytest.raises(ConfigurationError):
            pick_k_by_bic([], [], threshold=0.9)
        with pytest.raises(ConfigurationError):
            pick_k_by_bic([1.0], [1], threshold=0.0)
