"""End-to-end integration: generate -> classify -> predict -> analyze.

Uses the shared small gzip/p trace (session fixture) and exercises the
whole public API surface the way the examples do.
"""

import numpy as np
import pytest

import repro
from repro.analysis.cov import per_phase_cov, weighted_cov
from repro.analysis.phase_stats import phase_length_summary
from repro.analysis.runs import extract_runs
from repro.core import ClassifierConfig, PhaseClassifier
from repro.prediction import (
    CompositePhasePredictor,
    MarkovChangePredictor,
    PerfectMarkovPredictor,
    PhaseLengthPredictor,
    RLEChangePredictor,
    evaluate_change_predictor,
)


class TestPipeline:
    def test_classification_reduces_cov(self, small_trace, classified_small):
        whole = small_trace.whole_program_cov()
        classified = weighted_cov(classified_small, small_trace)
        assert classified < whole

    def test_phase_count_reasonable(self, classified_small):
        assert 1 <= classified_small.num_phases <= 50

    def test_transition_fraction_bounded(self, classified_small):
        assert 0.0 <= classified_small.transition_fraction < 0.6

    def test_per_phase_cov_all_modest(self, small_trace, classified_small):
        covs = per_phase_cov(classified_small, small_trace)
        assert covs
        assert all(c < 1.0 for c in covs.values())

    def test_stable_runs_longer_than_transitions(self, classified_small):
        summary = phase_length_summary(classified_small.phase_ids)
        if summary.transition_count:
            assert summary.stable_dominates

    def test_ground_truth_agreement(self, small_trace, classified_small):
        """Intervals of the same ground-truth region should mostly share
        a classified phase (the classifier never sees region labels)."""
        ids = classified_small.phase_ids
        regions = small_trace.regions
        agreements = []
        for region in set(regions.tolist()):
            if region < 0:
                continue
            sel = ids[regions == region]
            sel = sel[sel != 0]  # ignore warm-up transition intervals
            if sel.size < 5:
                continue
            values, counts = np.unique(sel, return_counts=True)
            agreements.append(counts.max() / sel.size)
        assert agreements
        assert np.mean(agreements) > 0.6

    def test_top_level_api(self, small_trace):
        classifier = repro.PhaseClassifier(
            repro.ClassifierConfig.paper_default()
        )
        run = classifier.classify_trace(small_trace)
        cov = repro.weighted_cov(run, small_trace)
        assert 0.0 <= cov < 1.0


class TestPredictionPipeline:
    def test_last_value_strong_on_stable_trace(self, classified_small):
        stats = CompositePhasePredictor(None).run(
            classified_small.phase_ids
        )
        assert stats.accuracy > 0.6

    def test_all_predictors_run_clean(self, classified_small):
        ids = classified_small.phase_ids
        for factory in (
            lambda: MarkovChangePredictor(1),
            lambda: MarkovChangePredictor(2, entry_kind="top4"),
            lambda: RLEChangePredictor(2),
            lambda: RLEChangePredictor(1, entry_kind="last4"),
        ):
            stats = CompositePhasePredictor(factory()).run(ids)
            assert stats.total == len(ids) - 1

    def test_perfect_markov_bounds_table_predictors(self, classified_small):
        ids = classified_small.phase_ids
        oracle = evaluate_change_predictor(ids, PerfectMarkovPredictor(1))
        real = evaluate_change_predictor(
            ids, MarkovChangePredictor(1, use_confidence=False)
        )
        if oracle.total_changes:
            assert oracle.accuracy >= real.accuracy - 1e-9

    def test_length_predictor_runs(self, classified_small):
        predictor = PhaseLengthPredictor()
        for phase_id in classified_small.phase_ids:
            predictor.observe(int(phase_id))
        assert predictor.stats.misprediction_rate <= 1.0


class TestDeterminism:
    def test_full_pipeline_reproducible(self):
        def run_once():
            trace = repro.benchmark("bzip2/p", scale=0.08)
            run = PhaseClassifier(
                ClassifierConfig.paper_default()
            ).classify_trace(trace)
            return run.phase_ids

        assert np.array_equal(run_once(), run_once())
