"""Smoke tests: every shipped example must run end to end.

Examples are documentation that rots silently; these tests execute each
one in a subprocess (with a reduced-scale environment where supported)
and assert a clean exit plus the presence of its headline output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: (script, fragment expected in stdout). Kept to the fast examples;
#: the heavyweight ones run in the benchmark suite instead.
FAST_EXAMPLES = [
    ("quickstart.py", "phases found"),
    ("adaptive_thresholds.py", "dynamic 25%"),
    ("custom_workload.py", "classifiable"),
    ("telemetry_dashboard.py", "per-stage span timings"),
    ("service_demo.py", "snapshot/restore is exact"),
]


@pytest.mark.parametrize("script,fragment", FAST_EXAMPLES)
def test_example_runs_clean(script, fragment):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert fragment in result.stdout


def test_all_examples_exist_and_are_documented():
    """Every example on disk is listed in the README, and vice versa."""
    readme = (EXAMPLES_DIR.parent / "README.md").read_text()
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk, "no examples found"
    for name in on_disk:
        assert name in readme, f"{name} missing from README"


def test_examples_have_module_docstrings_with_run_lines():
    for path in EXAMPLES_DIR.glob("*.py"):
        text = path.read_text()
        assert text.startswith('"""'), f"{path.name} lacks a docstring"
        assert "Run:" in text, f"{path.name} lacks a Run: line"
