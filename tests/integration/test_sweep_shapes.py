"""Shape checks through the generic sweep tool.

Reproduces the figures' orderings via sweep_classifier, confirming the
general tool and the hand-built experiments agree.
"""

import pytest

from repro.harness.sweep import sweep_classifier

SCALE = 0.25
BENCHES = ("bzip2/p", "gcc/s", "gzip/p", "mcf")


@pytest.fixture(scope="module")
def threshold_sweep():
    return sweep_classifier(
        "similarity_threshold", [0.0625, 0.125, 0.25, 0.5],
        benchmarks=BENCHES, scale=SCALE,
    )


@pytest.fixture(scope="module")
def min_count_sweep():
    return sweep_classifier(
        "min_count_threshold", [0, 2, 4, 8, 16],
        benchmarks=BENCHES, scale=SCALE,
    )


class TestThresholdSweep:
    def test_tighter_thresholds_lower_cov(self, threshold_sweep):
        averages = threshold_sweep.averages("cov")
        assert averages[0.0625] <= averages[0.5]

    def test_loose_threshold_merges_phases(self, threshold_sweep):
        averages = threshold_sweep.averages("phases")
        assert averages[0.5] <= min(
            averages[0.0625], averages[0.125], averages[0.25]
        )

    def test_min_count_inverts_naive_phase_ordering(self, threshold_sweep):
        """Under min-count 8, tighter thresholds do NOT inflate the
        phase count the way they do at min-count 0 (fig2/fig4): the
        extra entries churn out of the table before maturing into real
        phase IDs. The sweep exposes this interaction — tight and
        default thresholds allocate comparable numbers of phases."""
        averages = threshold_sweep.averages("phases")
        assert averages[0.0625] < 3 * averages[0.25]
        assert averages[0.25] < 3 * max(averages[0.0625], 1.0)


class TestMinCountSweep:
    def test_phase_counts_monotone_nonincreasing(self, min_count_sweep):
        averages = min_count_sweep.averages("phases")
        ordered = [averages[v] for v in (0, 2, 4, 8, 16)]
        assert all(a >= b - 1e-9 for a, b in zip(ordered, ordered[1:]))

    def test_transition_time_monotone_nondecreasing(self, min_count_sweep):
        averages = min_count_sweep.averages("transition")
        ordered = [averages[v] for v in (0, 2, 4, 8, 16)]
        assert all(a <= b + 1e-9 for a, b in zip(ordered, ordered[1:]))

    def test_mispredictions_improve_then_saturate(self, min_count_sweep):
        averages = min_count_sweep.averages("lv_mispredict")
        assert averages[8] < averages[0]
        # Doubling past the paper's choice buys little.
        assert abs(averages[16] - averages[8]) < 5.0
