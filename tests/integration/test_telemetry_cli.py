"""End-to-end telemetry: a full experiment run dumping metrics + events.

The acceptance path: ``repro-phases --scale 0.05 fig4 --metrics out.prom
--events out.jsonl`` must produce valid Prometheus text and parseable
JSONL covering the whole run lifecycle.
"""

import json

import pytest

from repro.harness.cache import clear_cache
from repro.harness.cli import main
from repro.telemetry import parse_prometheus_text, read_events


@pytest.fixture(scope="module")
def telemetry_run(tmp_path_factory):
    """One fig4 run at tiny scale with both telemetry outputs."""
    tmp_path = tmp_path_factory.mktemp("telemetry")
    metrics_path = tmp_path / "out.prom"
    events_path = tmp_path / "out.jsonl"
    clear_cache()
    exit_code = main([
        "--scale", "0.05", "fig4",
        "--metrics", str(metrics_path),
        "--events", str(events_path),
    ])
    return exit_code, metrics_path, events_path


class TestMetricsOutput:
    def test_run_succeeds_and_writes_both_files(self, telemetry_run):
        exit_code, metrics_path, events_path = telemetry_run
        assert exit_code == 0
        assert metrics_path.exists() and events_path.exists()

    def test_prometheus_text_parses(self, telemetry_run):
        _, metrics_path, _ = telemetry_run
        samples = parse_prometheus_text(metrics_path.read_text())
        assert samples["repro_harness_experiments_total"] == 1
        # fig4 classifies all 11 benchmarks under 6 configurations;
        # every one goes through the harness caches.
        assert samples["repro_harness_trace_cache_misses_total"] == 11
        assert samples["repro_harness_classified_cache_misses_total"] > 0

    def test_exposition_format_lines(self, telemetry_run):
        _, metrics_path, _ = telemetry_run
        text = metrics_path.read_text()
        assert "# TYPE repro_harness_experiments_total counter" in text
        # The experiment span rides along as a histogram.
        assert 'le="+Inf"' in text


class TestEventsOutput:
    def test_jsonl_parses_with_lifecycle(self, telemetry_run):
        _, _, events_path = telemetry_run
        records = read_events(str(events_path))
        kinds = [r["event"] for r in records]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert "experiment_start" in kinds
        assert "experiment_end" in kinds

    def test_experiment_end_carries_duration(self, telemetry_run):
        _, _, events_path = telemetry_run
        (end,) = [
            r for r in read_events(str(events_path))
            if r["event"] == "experiment_end"
        ]
        assert end["experiment"] == "fig4"
        assert end["scale"] == 0.05
        assert end["seconds"] > 0
        assert end["tables"] > 0


class TestJSONExporterPath:
    def test_json_extension_selects_json_snapshot(self, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        # hwbudget touches no traces, so this is fast.
        assert main(["hwbudget", "--metrics", str(metrics_path)]) == 0
        payload = json.loads(metrics_path.read_text())
        assert payload["format"] == "repro.telemetry/v1"
        names = [m["name"] for m in payload["metrics"]]
        assert "repro_harness_experiments_total" in names

    def test_classify_path_with_telemetry(self, tmp_path, capsys):
        metrics_path = tmp_path / "classify.prom"
        events_path = tmp_path / "classify.jsonl"
        assert main([
            "--classify", "gzip/p", "--scale", "0.05",
            "--metrics", str(metrics_path),
            "--events", str(events_path),
        ]) == 0
        records = read_events(str(events_path))
        kinds = [r["event"] for r in records]
        assert "classify_start" in kinds and "classify_end" in kinds
        text = metrics_path.read_text()
        assert "repro_span_classify_gzip_p_seconds" in text
