"""Failure-mode coverage: every package's error paths, end to end.

Verifies that misuse fails loudly with the library's typed exceptions
(never silently, never with a bare KeyError/IndexError) and that
recoverable situations leave objects usable.
"""

import numpy as np
import pytest

import repro
from repro.core import ClassifierConfig, PhaseClassifier, PhaseTracker
from repro.errors import (
    ConfigurationError,
    PredictionError,
    ReproError,
    TraceError,
)
from repro.prediction import CompositePhasePredictor
from repro.workloads.io import load_trace
from repro.workloads.trace import Interval, IntervalTrace


class TestTypedExceptionHierarchy:
    def test_all_library_errors_catchable_as_repro_error(self):
        for exc in (ConfigurationError, PredictionError, TraceError):
            assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        """Callers expecting ValueError for bad arguments still win."""
        assert issubclass(ConfigurationError, ValueError)
        with pytest.raises(ValueError):
            ClassifierConfig(num_counters=7)


class TestClassifierMisuse:
    def test_dimension_mismatch_between_runs_is_safe(self):
        """Signatures formed under one counter count cannot be compared
        against a table built under another."""
        from repro.core.signature import Signature
        from repro.core.signature_table import SignatureTable

        table = SignatureTable(capacity=4, default_threshold=0.25)
        table.insert(Signature([1] * 16, bits=6))
        with pytest.raises(ValueError):
            table.find_matches(Signature([1] * 8, bits=6))

    def test_trace_with_zero_cpi_rejected_at_construction(self):
        with pytest.raises(TraceError):
            Interval(np.array([4]), np.array([10]), cpi=0.0)

    def test_empty_trace_rejected_before_classification(self):
        with pytest.raises(TraceError):
            IntervalTrace("empty", [])


class TestTrackerMisuse:
    def test_double_complete_rejected(self):
        tracker = PhaseTracker(interval_instructions=100)
        tracker.observe_branch(0x400, 200)
        tracker.complete_interval(1.0)
        with pytest.raises(PredictionError):
            tracker.complete_interval(1.0)

    def test_observe_past_boundary_rejected_then_recoverable(self):
        tracker = PhaseTracker(interval_instructions=100)
        tracker.observe_branch(0x400, 150)
        with pytest.raises(PredictionError):
            tracker.observe_branch(0x404, 10)
        # Completing the interval restores normal operation.
        tracker.complete_interval(1.0)
        assert tracker.observe_branch(0x404, 10) is False


class TestPredictorMisuse:
    def test_predict_before_any_interval(self):
        with pytest.raises(PredictionError):
            CompositePhasePredictor(None).predict()

    def test_stats_on_untouched_predictor_are_empty_not_crashing(self):
        stats = CompositePhasePredictor(None).stats
        assert stats.total == 0
        assert stats.accuracy == 0.0
        assert stats.coverage == 0.0


class TestCorruptInputs:
    def test_corrupt_trace_file(self, tmp_path):
        path = tmp_path / "corrupt.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(Exception):
            load_trace(path)

    def test_truncated_npz_rejected_with_trace_error(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, offsets=np.array([0, 1]))
        with pytest.raises(TraceError):
            load_trace(path)

    def test_unknown_benchmark_names_fail_fast(self):
        with pytest.raises(ConfigurationError):
            repro.benchmark("gcc/200")


class TestRecoveryAfterErrors:
    def test_classifier_usable_after_bad_interval(self):
        classifier = PhaseClassifier(
            ClassifierConfig(min_count_threshold=0)
        )
        with pytest.raises(TraceError):
            Interval(np.array([]), np.array([]), cpi=1.0)
        # The failure happened at Interval construction; the classifier
        # is untouched and keeps working.
        good = Interval(np.array([4]), np.array([100]), cpi=1.0)
        assert classifier.classify_interval(good).phase_id == 1

    def test_experiment_registry_rejects_duplicates(self):
        from repro.harness.experiment import experiment_names, register

        experiment_names()  # force registry population
        with pytest.raises(ConfigurationError):
            register("fig2")(lambda scale=1.0: None)
