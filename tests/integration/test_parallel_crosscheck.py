"""Bit-determinism cross-check: ``--jobs 4`` == ``--jobs 1``, cold == warm.

For every registered experiment, the ``ExperimentResult.data`` payload
must be identical whether the work grid was computed sequentially
in-process, across a 4-worker pool, or loaded back from the on-disk
store — the acceptance contract of the parallel engine.
"""

import math

import numpy as np
import pytest

from repro.harness.cache import clear_cache
from repro.harness.engine import ExperimentEngine
from repro.harness.experiment import (
    EXPERIMENT_NAMES,
    experiment_work_units,
    run_experiment,
)
from repro.harness.store import ResultStore

SCALE = 0.03
EXPERIMENTS = list(EXPERIMENT_NAMES)


def assert_data_equal(a, b, path=""):
    """Recursive bit-exact comparison of experiment data payloads."""
    if isinstance(a, dict):
        assert isinstance(b, dict) and a.keys() == b.keys(), path
        for key in a:
            assert_data_equal(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, (list, tuple)):
        assert isinstance(b, (list, tuple)) and len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            assert_data_equal(x, y, f"{path}[{i}]")
    elif isinstance(a, np.ndarray):
        np.testing.assert_array_equal(a, b, err_msg=path)
    elif isinstance(a, float) or isinstance(a, np.floating):
        if math.isnan(a):
            assert math.isnan(b), path
        else:
            assert a == b, f"{path}: {a!r} != {b!r}"
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


@pytest.fixture(scope="module")
def sequential_cold(tmp_path_factory):
    """Reference: every experiment, jobs=1, cold caches, fresh store."""
    root = tmp_path_factory.mktemp("seq-store")
    clear_cache()
    engine = ExperimentEngine(jobs=1, store=ResultStore(root=root))
    data = {
        name: run_experiment(name, scale=SCALE, engine=engine).data
        for name in EXPERIMENTS
    }
    clear_cache()
    return root, data


@pytest.fixture(scope="module")
def parallel_cold(tmp_path_factory, sequential_cold):
    """Every experiment again: jobs=4, cold caches, its own store."""
    root = tmp_path_factory.mktemp("par-store")
    clear_cache()
    engine = ExperimentEngine(jobs=4, store=ResultStore(root=root))
    data = {
        name: run_experiment(name, scale=SCALE, engine=engine).data
        for name in EXPERIMENTS
    }
    clear_cache()
    return data


@pytest.mark.parametrize("name", EXPERIMENTS)
def test_parallel_matches_sequential(name, sequential_cold, parallel_cold):
    _, reference = sequential_cold
    assert_data_equal(reference[name], parallel_cold[name], path=name)


def test_warm_store_satisfies_every_unit(sequential_cold):
    root, _ = sequential_cold
    clear_cache()
    units = experiment_work_units(EXPERIMENTS, scale=SCALE)
    report = ExperimentEngine(jobs=1, store=ResultStore(root=root)).ensure(
        units
    )
    assert report.computed == 0
    assert report.from_store == report.units
    clear_cache()


def test_warm_store_results_match_cold(sequential_cold):
    root, reference = sequential_cold
    clear_cache()
    engine = ExperimentEngine(jobs=4, store=ResultStore(root=root))
    for name in EXPERIMENTS:
        warm = run_experiment(name, scale=SCALE, engine=engine).data
        assert_data_equal(reference[name], warm, path=name)
    clear_cache()
