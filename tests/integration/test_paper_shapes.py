"""Shape assertions against the paper's headline claims.

Each figure experiment is run once at a reduced scale (module-scoped
fixtures); the assertions check the *shape* of the results — who wins,
in which direction the trends go — per DESIGN.md §4. Absolute values
are not asserted (the substrate is synthetic).
"""

import numpy as np
import pytest

from repro.harness.experiment import run_experiment

SCALE = 0.3


@pytest.fixture(scope="module")
def fig2():
    return run_experiment("fig2", scale=SCALE).data


@pytest.fixture(scope="module")
def fig3():
    return run_experiment("fig3", scale=SCALE).data


@pytest.fixture(scope="module")
def fig4():
    return run_experiment("fig4", scale=SCALE).data


@pytest.fixture(scope="module")
def fig5():
    return run_experiment("fig5", scale=SCALE).data


@pytest.fixture(scope="module")
def fig6():
    return run_experiment("fig6", scale=SCALE).data


@pytest.fixture(scope="module")
def fig7():
    return run_experiment("fig7", scale=SCALE).data


@pytest.fixture(scope="module")
def fig8():
    return run_experiment("fig8", scale=SCALE).data


@pytest.fixture(scope="module")
def fig9():
    return run_experiment("fig9", scale=SCALE).data


BENCH_INDEX = {
    name: i for i, name in enumerate(
        ("ammp", "bzip2/g", "bzip2/p", "galgel", "gcc/1", "gcc/s",
         "gzip/g", "gzip/p", "mcf", "perl/d", "perl/s")
    )
}


class TestFig2TableSize:
    def test_finite_tables_inflate_phase_counts(self, fig2):
        """Signatures lost to replacement re-allocate phase IDs."""
        small = np.mean(fig2["phases"]["16 entry"])
        infinite = np.mean(fig2["phases"]["inf entry"])
        assert small >= infinite

    def test_gcc_sensitive_to_table_size(self, fig2):
        index = BENCH_INDEX["gcc/s"]
        assert (
            fig2["phases"]["16 entry"][index]
            > fig2["phases"]["inf entry"][index]
        )

    def test_cov_does_not_collapse_with_size(self, fig2):
        """CoV varies only slightly across table sizes (paper: rises
        'slightly' with more entries)."""
        means = [np.mean(fig2["cov"][c]) for c in fig2["cov"]]
        assert max(means) - min(means) < 5.0  # percentage points


class TestFig3Counters:
    def test_8_counters_insufficient(self, fig3):
        assert np.mean(fig3["cov"]["8 dim"]) > np.mean(
            fig3["cov"]["16 dim"]
        )

    def test_16_vs_32_close(self, fig3):
        assert abs(
            np.mean(fig3["cov"]["16 dim"]) - np.mean(fig3["cov"]["32 dim"])
        ) < 2.0

    def test_whole_program_cov_many_times_per_phase(self, fig3):
        whole = np.mean(fig3["cov"]["Whole Program"])
        classified = np.mean(fig3["cov"]["16 dim"])
        assert whole > 4 * classified

    def test_8_counters_merge_phases(self, fig3):
        assert np.mean(fig3["phases"]["8 dim"]) < np.mean(
            fig3["phases"]["16 dim"]
        )


class TestFig4TransitionPhase:
    def test_min_count_slashes_phase_counts(self, fig4):
        """Paper: hundreds of phases -> tens with the transition phase."""
        baseline = np.mean(fig4["phases"]["12.5% similar+0 min"])
        with_min8 = np.mean(fig4["phases"]["12.5% similar+8 min"])
        assert with_min8 < baseline / 3

    def test_transition_time_grows_with_min_count(self, fig4):
        t4 = np.mean(fig4["transition_time"]["25% similar+4 min"])
        t8 = np.mean(fig4["transition_time"]["25% similar+8 min"])
        assert t8 >= t4

    def test_gcc_s_has_most_transition_time(self, fig4):
        series = fig4["transition_time"]["25% similar+8 min"]
        assert np.argmax(series) == BENCH_INDEX["gcc/s"]

    def test_transition_phase_cuts_lv_mispredictions(self, fig4):
        """Paper: placing rare phase IDs into the transition phase
        reduces last-value mispredictions vs the baseline."""
        baseline = np.mean(fig4["lv_mispredict"]["12.5% similar+0 min"])
        with_min8 = np.mean(fig4["lv_mispredict"]["12.5% similar+8 min"])
        assert with_min8 < baseline

    def test_cov_not_destroyed_by_transition_phase(self, fig4):
        baseline = np.mean(fig4["cov"]["12.5% similar+0 min"])
        with_min8 = np.mean(fig4["cov"]["12.5% similar+8 min"])
        assert with_min8 < baseline + 3.0  # percentage points


class TestFig5Lengths:
    def test_stable_longer_than_transitions_on_average(self, fig5):
        stable = np.array(fig5["stable_mean"])
        trans = np.array(fig5["transition_mean"])
        assert (stable > trans).mean() > 0.8

    def test_gzip_g_exceptionally_long(self, fig5):
        index = BENCH_INDEX["gzip/g"]
        assert fig5["stable_mean"][index] > 3 * np.median(
            fig5["stable_mean"]
        )


class TestFig6Adaptive:
    def test_dynamic_lowers_cov_vs_static(self, fig6):
        static = np.mean(fig6["cov"]["25% static"])
        dynamic = np.mean(fig6["cov"]["25% dyn+25% dev"])
        assert dynamic < static

    def test_mcf_benefits_most(self, fig6):
        index = BENCH_INDEX["mcf"]
        static = fig6["cov"]["25% static"][index]
        dynamic = fig6["cov"]["25% dyn+25% dev"][index]
        assert dynamic < static * 0.85

    def test_gzip_g_unaffected(self, fig6):
        """Programs without CPI sub-modes should barely change."""
        index = BENCH_INDEX["gzip/g"]
        static = fig6["cov"]["25% static"][index]
        dynamic = fig6["cov"]["25% dyn+50% dev"][index]
        assert dynamic == pytest.approx(static, rel=0.15)

    def test_phase_increase_modest(self, fig6):
        static = np.mean(fig6["phases"]["25% static"])
        dynamic = np.mean(fig6["phases"]["25% dyn+25% dev"])
        assert dynamic < static * 3

    def test_tighter_deviation_tightens_more(self, fig6):
        loose = np.mean(fig6["cov"]["25% dyn+50% dev"])
        tight = np.mean(fig6["cov"]["25% dyn+12.5% dev"])
        assert tight <= loose + 0.5


class TestFig7NextPhase:
    def _series(self, fig7, label):
        return fig7["accuracy"][fig7["labels"].index(label)]

    def test_last_value_strong_baseline(self, fig7):
        accuracy = self._series(fig7, "Last Value")
        assert 70.0 < accuracy < 99.5

    def test_confidence_raises_accuracy_cuts_coverage(self, fig7):
        index = fig7["labels"].index("Last Value")
        assert fig7["confident_accuracy"][index] >= fig7["accuracy"][index]
        assert fig7["coverage"][index] < 100.0

    def test_rle_at_least_matches_markov(self, fig7):
        assert self._series(fig7, "RLE-2") >= (
            self._series(fig7, "Markov 2") - 1.0
        )

    def test_no_table_conf_increases_coverage(self, fig7):
        with_conf = fig7["labels"].index("Markov 2")
        without = fig7["labels"].index("Markov 2 No Table Conf")
        assert fig7["coverage"][without] >= fig7["coverage"][with_conf]

    def test_complicated_predictors_marginal(self, fig7):
        """Paper's conclusion: table predictors give only marginal gains
        over last value for next-interval prediction."""
        lv = self._series(fig7, "Last Value")
        best = max(fig7["accuracy"])
        assert best - lv < 15.0


class TestFig8ChangePrediction:
    def _accuracy(self, fig8, label):
        return fig8["accuracy"][fig8["labels"].index(label)]

    def test_perfect_markov1_is_upper_bound_for_markov(self, fig8):
        perfect = self._accuracy(fig8, "Perfect Markov 1")
        for label in ("Markov 2", "Last4 Markov 1", "Top 4 Markov 1"):
            assert perfect >= self._accuracy(fig8, label) - 2.0

    def test_cold_start_keeps_perfect_below_100(self, fig8):
        assert self._accuracy(fig8, "Perfect Markov 1") < 95.0

    def test_aggressive_variants_beat_plain_markov2(self, fig8):
        plain = self._accuracy(fig8, "Markov 2")
        assert self._accuracy(fig8, "Last4 Markov 1") > plain
        assert self._accuracy(fig8, "Top 4 Markov 1") > plain

    def test_plain_markov2_in_paper_range(self, fig8):
        """Paper: Markov-2 achieves ~40% of changes."""
        assert 20.0 < self._accuracy(fig8, "Markov 2") < 65.0

    def test_confident_mispredictions_modest(self, fig8):
        index = fig8["labels"].index("Top 4 Markov 1")
        conf_incorrect = fig8["categories"]["conf_incorrect"][index]
        assert conf_incorrect < 25.0

    def test_bigger_table_helps_or_ties(self, fig8):
        assert self._accuracy(fig8, "128 Entry Markov 2") >= (
            self._accuracy(fig8, "Markov 2") - 2.0
        )


class TestFig9Lengths:
    def test_shortest_class_dominates(self, fig9):
        shortest = np.array(fig9["class_distribution"]["1-15"])
        assert shortest.mean() > 50.0

    def test_gzip_g_has_long_runs(self, fig9):
        index = BENCH_INDEX["gzip/g"]
        long_share = (
            fig9["class_distribution"]["16-127"][index]
            + fig9["class_distribution"]["128-1023"][index]
            + fig9["class_distribution"]["1024-"][index]
        )
        assert long_share > 20.0

    def test_misprediction_rates_low_for_complex_programs(self, fig9):
        """gcc has hundreds of changes: the predictor must do well
        there (the small-N stable programs are noisy)."""
        for name in ("gcc/1", "gcc/s", "mcf"):
            assert fig9["misprediction"][BENCH_INDEX[name]] < 20.0

    def test_distribution_sums_to_100(self, fig9):
        totals = np.zeros(11)
        for series in fig9["class_distribution"].values():
            totals += np.array(series)
        assert np.allclose(totals, 100.0, atol=0.5)


class TestPerBenchmarkShapes:
    """Per-benchmark orderings the paper's text calls out."""

    def test_stable_programs_predict_best(self, fig7):
        """ammp/gzip-g/perl-d (long stable phases) must have higher
        last-value accuracy than the gcc models."""
        series = fig7["per_benchmark_accuracy"]["Last Value"]
        stable = min(series[BENCH_INDEX[n]]
                     for n in ("ammp", "gzip/g", "perl/d"))
        irregular = max(series[BENCH_INDEX[n]]
                        for n in ("gcc/1", "gcc/s"))
        assert stable > irregular

    def test_gcc_hardest_for_change_prediction_oracle(self, fig8):
        """Cold-start is worst where behaviour is most irregular: the
        perfect predictor does better on mcf than on gcc/s."""
        series = fig8["per_benchmark_accuracy"]["Perfect Markov 1"]
        assert series[BENCH_INDEX["mcf"]] >= series[BENCH_INDEX["gcc/s"]]

    def test_every_benchmark_within_oracle_bound(self, fig8):
        oracle = fig8["per_benchmark_accuracy"]["Perfect Markov 1"]
        real = fig8["per_benchmark_accuracy"]["Markov 2"]
        for name, index in BENCH_INDEX.items():
            assert real[index] <= oracle[index] + 5.0, name
