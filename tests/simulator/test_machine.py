"""Unit tests for the machine model and region calibration."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulator.machine import Machine, MachineConfig
from repro.simulator.sampling import SampledStream


def make_stream(rng, data_span=4 * 1024, events=2000, bias=0.9,
                base_ipc=2.0):
    """A small, cache-friendly stream unless data_span says otherwise."""
    pcs = 0x400000 + (rng.integers(0, 64, size=events) * 4)
    return SampledStream(
        instruction_addresses=0x400000
        + rng.integers(0, 256, size=events).astype(np.int64) * 4,
        data_addresses=0x10000000
        + rng.integers(0, max(data_span // 8, 1), size=events).astype(
            np.int64
        ) * 8,
        branch_pcs=pcs,
        branch_taken=rng.random(events) < bias,
        base_ipc=base_ipc,
        loads_per_instr=0.3,
        fetches_per_instr=0.25,
        branches_per_instr=1 / 6,
    )


class TestMachineConfig:
    def test_table1_geometry(self):
        cfg = MachineConfig.table1()
        assert cfg.il1.size_bytes == 16 * 1024
        assert cfg.il1.assoc == 4
        assert cfg.il1.block_bytes == 32
        assert cfg.l2.size_bytes == 128 * 1024
        assert cfg.l2.assoc == 8
        assert cfg.l2.block_bytes == 64
        assert cfg.tlb.page_bytes == 8 * 1024
        assert cfg.gshare_history_bits == 8
        assert cfg.bimodal_entries == 8192


class TestCalibration:
    def test_small_working_set_low_miss_ratios(self, rng):
        machine = Machine()
        cal = machine.calibrate(make_stream(rng, data_span=4 * 1024))
        assert cal.dl1_miss_ratio < 0.05
        assert cal.il1_miss_ratio < 0.05
        assert cal.tlb_miss_ratio < 0.05

    def test_huge_working_set_high_miss_ratio(self, rng):
        machine = Machine()
        small = machine.calibrate(make_stream(rng, data_span=4 * 1024))
        big = machine.calibrate(make_stream(rng, data_span=4 * 1024 * 1024))
        assert big.dl1_miss_ratio > small.dl1_miss_ratio + 0.3
        assert big.cpi > small.cpi

    def test_cpi_consistent_with_rates(self, rng):
        machine = Machine()
        cal = machine.calibrate(make_stream(rng))
        assert cal.cpi == pytest.approx(machine.core.cpi(cal.rates))

    def test_biased_branches_more_predictable(self, rng):
        machine = Machine()
        predictable = machine.calibrate(make_stream(rng, bias=0.98))
        noisy = machine.calibrate(make_stream(rng, bias=0.55))
        assert (
            predictable.branch_mispredict_ratio
            < noisy.branch_mispredict_ratio
        )

    def test_warmup_fraction_bounds(self, rng):
        machine = Machine()
        stream = make_stream(rng)
        with pytest.raises(SimulationError):
            machine.calibrate(stream, warmup_fraction=1.0)
        with pytest.raises(SimulationError):
            machine.calibrate(stream, warmup_fraction=-0.1)

    def test_rates_fold_in_per_instruction_densities(self, rng):
        machine = Machine()
        cal = machine.calibrate(make_stream(rng))
        stream_loads = 0.3
        assert cal.rates.dl1_miss_rate == pytest.approx(
            cal.dl1_miss_ratio * stream_loads
        )
        assert cal.rates.branch_rate == pytest.approx(1 / 6)

    def test_calibration_is_deterministic(self):
        machine = Machine()
        a = machine.calibrate(make_stream(np.random.default_rng(3)))
        b = machine.calibrate(make_stream(np.random.default_rng(3)))
        assert a.cpi == pytest.approx(b.cpi)
        assert a.dl1_miss_ratio == pytest.approx(b.dl1_miss_ratio)


class TestSampledStream:
    def test_parallel_branch_arrays_enforced(self, rng):
        with pytest.raises(SimulationError):
            SampledStream(
                instruction_addresses=np.array([0]),
                data_addresses=np.array([0]),
                branch_pcs=np.array([0, 4]),
                branch_taken=np.array([True]),
                base_ipc=1.0,
                loads_per_instr=0.3,
                fetches_per_instr=0.25,
                branches_per_instr=0.2,
            )

    def test_counts_exposed(self, rng):
        stream = make_stream(rng, events=100)
        assert stream.num_branches == 100
        assert stream.num_data_refs == 100
        assert stream.num_fetches == 100

    def test_non_positive_ipc_rejected(self, rng):
        with pytest.raises(SimulationError):
            SampledStream(
                instruction_addresses=np.array([0]),
                data_addresses=np.array([0]),
                branch_pcs=np.array([0]),
                branch_taken=np.array([True]),
                base_ipc=0.0,
                loads_per_instr=0.3,
                fetches_per_instr=0.25,
                branches_per_instr=0.2,
            )


class TestBranchPredictorSelection:
    @pytest.mark.parametrize("style", ["hybrid", "bimodal", "gshare",
                                       "local"])
    def test_all_styles_calibrate(self, rng, style):
        machine = Machine(MachineConfig(branch_predictor=style))
        calibration = machine.calibrate(make_stream(rng))
        assert 0.0 <= calibration.branch_mispredict_ratio <= 1.0
        assert calibration.cpi > 0

    def test_unknown_style_rejected(self):
        with pytest.raises(SimulationError):
            MachineConfig(branch_predictor="tage")

    def test_predictor_choice_changes_results(self, rng):
        biased = make_stream(np.random.default_rng(4), bias=0.6)
        hybrid = Machine(MachineConfig()).calibrate(biased)
        biased = make_stream(np.random.default_rng(4), bias=0.6)
        bimodal = Machine(
            MachineConfig(branch_predictor="bimodal")
        ).calibrate(biased)
        # Different structures, same stream: ratios need not agree.
        assert hybrid.branch_mispredict_ratio >= 0.0
        assert bimodal.branch_mispredict_ratio >= 0.0
