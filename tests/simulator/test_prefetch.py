"""Tests for the next-line prefetcher."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulator.cache import Cache, CacheConfig
from repro.simulator.prefetch import NextLinePrefetcher


def make_prefetcher(degree=1, size=1024, assoc=2, block=32):
    return NextLinePrefetcher(
        Cache(CacheConfig(size, assoc, block)), degree=degree
    )


class TestNextLinePrefetcher:
    def test_sequential_stream_mostly_prefetched(self):
        prefetcher = make_prefetcher()
        addresses = np.arange(0, 512, 32)
        for address in addresses:
            prefetcher.access(int(address))
        # Every miss pulls in the next line, which then hits: at most
        # every other access misses, and typically only the first.
        assert prefetcher.stats.demand_miss_rate < 0.6

    def test_miss_installs_next_block(self):
        prefetcher = make_prefetcher()
        prefetcher.access(0)             # miss: prefetches block at 32
        assert prefetcher.cache.contains(32)
        assert prefetcher.stats.prefetches_issued == 1

    def test_hit_does_not_prefetch(self):
        prefetcher = make_prefetcher()
        prefetcher.access(0)
        issued = prefetcher.stats.prefetches_issued
        prefetcher.access(0)             # hit: tagged prefetch stays idle
        assert prefetcher.stats.prefetches_issued == issued

    def test_useless_prefetch_counted(self):
        prefetcher = make_prefetcher()
        prefetcher.cache.access(32)      # target pre-resident
        prefetcher.access(0)
        assert prefetcher.stats.prefetches_useless == 1
        assert prefetcher.stats.prefetches_issued == 0

    def test_degree_two_installs_two_blocks(self):
        prefetcher = make_prefetcher(degree=2)
        prefetcher.access(0)
        assert prefetcher.cache.contains(32)
        assert prefetcher.cache.contains(64)

    def test_demand_stats_exclude_prefetch_fills(self):
        prefetcher = make_prefetcher()
        prefetcher.access(0)
        # The wrapped cache saw one demand access (the prefetch fill
        # was compensated out).
        assert prefetcher.cache.stats.accesses == 1
        assert prefetcher.cache.stats.misses == 1

    def test_beats_plain_cache_on_sequential_code(self):
        addresses = np.arange(0, 8 * 1024, 32)
        plain = Cache(CacheConfig(1024, 2, 32))
        plain_misses = plain.access_many(addresses)
        prefetcher = make_prefetcher()
        for address in addresses:
            prefetcher.access(int(address))
        assert prefetcher.stats.demand_misses < plain_misses

    def test_invalid_degree(self):
        with pytest.raises(ConfigurationError):
            make_prefetcher(degree=0)

    def test_reset_stats(self):
        prefetcher = make_prefetcher()
        prefetcher.access(0)
        prefetcher.reset_stats()
        assert prefetcher.stats.demand_accesses == 0
