"""Unit tests for the analytic out-of-order core timing model."""

import pytest

from repro.errors import ConfigurationError
from repro.simulator.core_model import CoreModel, CoreTimings, EventRates


def rates(**kwargs):
    defaults = dict(base_ipc=2.0)
    defaults.update(kwargs)
    return EventRates(**defaults)


class TestEventRates:
    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            rates(dl1_miss_rate=-0.1)

    def test_zero_base_ipc_rejected(self):
        with pytest.raises(ConfigurationError):
            EventRates(base_ipc=0.0)

    def test_mispredict_cannot_exceed_branch_rate(self):
        with pytest.raises(ConfigurationError):
            rates(branch_rate=0.1, branch_mispredict_rate=0.2)

    def test_scaled_scales_misses_not_ipc(self):
        r = rates(dl1_miss_rate=0.02, branch_rate=0.2,
                  branch_mispredict_rate=0.02)
        s = r.scaled(2.0)
        assert s.dl1_miss_rate == pytest.approx(0.04)
        assert s.base_ipc == r.base_ipc

    def test_scaled_clamps_mispredicts_to_branch_rate(self):
        r = rates(branch_rate=0.1, branch_mispredict_rate=0.08)
        s = r.scaled(10.0)
        assert s.branch_mispredict_rate == pytest.approx(0.1)

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            rates().scaled(-1.0)

    def test_blend_endpoints(self):
        a = rates(dl1_miss_rate=0.0)
        b = rates(dl1_miss_rate=0.1)
        assert EventRates.blend(a, b, 0.0).dl1_miss_rate == 0.0
        assert EventRates.blend(a, b, 1.0).dl1_miss_rate == pytest.approx(0.1)

    def test_blend_midpoint(self):
        a = rates(base_ipc=1.0)
        b = rates(base_ipc=3.0)
        assert EventRates.blend(a, b, 0.5).base_ipc == pytest.approx(2.0)

    def test_blend_rejects_out_of_range_weight(self):
        with pytest.raises(ValueError):
            EventRates.blend(rates(), rates(), 1.5)


class TestCoreTimings:
    def test_table1_defaults(self):
        t = CoreTimings()
        assert t.issue_width == 4
        assert t.rob_entries == 64
        assert t.l2_hit_latency == 12
        assert t.memory_latency == 120
        assert t.tlb_miss_latency == 30

    @pytest.mark.parametrize("kwargs", [
        {"issue_width": 0},
        {"memory_latency": -1},
        {"memory_overlap": 1.5},
        {"l2_hit_overlap": -0.1},
    ])
    def test_invalid_timings(self, kwargs):
        with pytest.raises(ConfigurationError):
            CoreTimings(**kwargs)


class TestCoreModel:
    def test_event_free_cpi_is_base(self):
        model = CoreModel()
        assert model.cpi(rates(base_ipc=2.0)) == pytest.approx(0.5)

    def test_base_ipc_capped_at_issue_width(self):
        model = CoreModel()
        assert model.cpi(rates(base_ipc=100.0)) == pytest.approx(0.25)

    def test_misses_add_penalty_monotonically(self):
        model = CoreModel()
        clean = model.cpi(rates())
        dirty = model.cpi(rates(dl1_miss_rate=0.02))
        dirtier = model.cpi(rates(dl1_miss_rate=0.05))
        assert clean < dirty < dirtier

    def test_l2_misses_cost_more_than_l1(self):
        model = CoreModel()
        l1_only = model.cpi(rates(dl1_miss_rate=0.02))
        with_l2 = model.cpi(rates(dl1_miss_rate=0.02, l2_miss_rate=0.02))
        # Memory penalty per miss far exceeds the L2-hit penalty.
        assert with_l2 - l1_only > l1_only - model.cpi(rates())

    def test_branch_penalty_applied(self):
        model = CoreModel()
        clean = model.cpi(rates(branch_rate=0.2))
        dirty = model.cpi(
            rates(branch_rate=0.2, branch_mispredict_rate=0.02)
        )
        assert dirty - clean == pytest.approx(0.02 * 14, rel=1e-6)

    def test_tlb_penalty_fully_exposed_by_default(self):
        model = CoreModel()
        dirty = model.cpi(rates(tlb_miss_rate=0.01))
        assert dirty - model.cpi(rates()) == pytest.approx(0.01 * 30)

    def test_realistic_rates_land_in_spec_range(self):
        # mcf-like rates: heavy L2 missing.
        model = CoreModel()
        mcf = model.cpi(rates(
            base_ipc=1.4, branch_rate=0.17, branch_mispredict_rate=0.01,
            dl1_miss_rate=0.08, l2_miss_rate=0.06, tlb_miss_rate=0.03,
        ))
        assert 2.0 < mcf < 10.0
        # gzip-like rates: nearly clean.
        gzip = model.cpi(rates(
            base_ipc=2.5, branch_rate=0.17, branch_mispredict_rate=0.008,
            dl1_miss_rate=0.005, l2_miss_rate=0.0005,
        ))
        assert 0.3 < gzip < 1.0

    def test_ipc_is_reciprocal(self):
        model = CoreModel()
        r = rates(dl1_miss_rate=0.01)
        assert model.ipc(r) == pytest.approx(1.0 / model.cpi(r))

    def test_cycles_scales_linearly(self):
        model = CoreModel()
        r = rates()
        assert model.cycles(r, 2_000_000) == pytest.approx(
            2 * model.cycles(r, 1_000_000)
        )

    def test_cycles_rejects_negative_instructions(self):
        with pytest.raises(ValueError):
            CoreModel().cycles(rates(), -1)

    def test_full_overlap_hides_penalty(self):
        timings = CoreTimings(memory_overlap=1.0)
        model = CoreModel(timings)
        assert model.cpi(rates(l2_miss_rate=0.1)) == pytest.approx(
            model.cpi(rates())
        )
