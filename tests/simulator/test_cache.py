"""Unit tests for the set-associative cache model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulator.cache import Cache, CacheConfig, CacheHierarchy, CacheStats


def make_cache(size=1024, assoc=2, block=32, name="t"):
    return Cache(CacheConfig(size, assoc, block, name=name))


class TestCacheConfig:
    def test_num_sets(self):
        cfg = CacheConfig(16 * 1024, 4, 32)
        assert cfg.num_sets == 128

    def test_table1_l2_geometry(self):
        cfg = CacheConfig(128 * 1024, 8, 64)
        assert cfg.num_sets == 256
        assert cfg.block_shift == 6

    @pytest.mark.parametrize("size,assoc,block", [
        (1000, 2, 32),   # size not a power of two
        (1024, 3, 32),   # assoc not a power of two
        (1024, 2, 48),   # block not a power of two
        (0, 1, 32),      # zero size
    ])
    def test_invalid_geometry_rejected(self, size, assoc, block):
        with pytest.raises(ConfigurationError):
            CacheConfig(size, assoc, block)

    def test_set_larger_than_cache_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(64, 4, 32)


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True

    def test_same_block_different_bytes_hit(self):
        cache = make_cache(block=32)
        cache.access(0x100)
        assert cache.access(0x11F) is True  # last byte of the block
        assert cache.access(0x120) is False  # first byte of next block

    def test_negative_address_rejected(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            cache.access(-1)

    def test_stats_accumulate(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        cache.access(4096)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.miss_rate == pytest.approx(2 / 3)

    def test_miss_rate_zero_when_untouched(self):
        assert make_cache().stats.miss_rate == 0.0

    def test_contains_does_not_touch_stats(self):
        cache = make_cache()
        cache.access(0x40)
        before = cache.stats.accesses
        assert cache.contains(0x40) is True
        assert cache.contains(0x4000) is False
        assert cache.stats.accesses == before


class TestLRUReplacement:
    def test_lru_victim_selected(self):
        # Direct a stream at one set: 2-way cache, 16 sets of 32B blocks.
        cache = make_cache(size=1024, assoc=2, block=32)
        sets = cache.config.num_sets
        stride = sets * 32  # same set index every access
        a, b, c = 0, stride, 2 * stride
        cache.access(a)
        cache.access(b)
        cache.access(a)      # a is now MRU
        cache.access(c)      # evicts b (LRU)
        assert cache.contains(a)
        assert not cache.contains(b)
        assert cache.contains(c)

    def test_fills_invalid_ways_before_evicting(self):
        cache = make_cache(size=1024, assoc=2, block=32)
        stride = cache.config.num_sets * 32
        cache.access(0)
        cache.access(stride)
        assert cache.resident_blocks == 2

    def test_working_set_within_capacity_all_hits_after_warmup(self):
        cache = make_cache(size=4096, assoc=4, block=32)
        addresses = np.arange(0, 4096, 32)
        cache.access_many(addresses)          # warm: all miss
        misses = cache.access_many(addresses)  # steady: all hit
        assert misses == 0

    def test_working_set_beyond_capacity_keeps_missing(self):
        cache = make_cache(size=1024, assoc=2, block=32)
        addresses = np.arange(0, 8 * 1024, 32)
        cache.access_many(addresses)
        misses = cache.access_many(addresses)
        # Sequential sweep over 8x capacity with LRU: every access misses.
        assert misses == len(addresses)


class TestFlushAndReset:
    def test_flush_invalidates_but_keeps_stats(self):
        cache = make_cache()
        cache.access(0x80)
        cache.flush()
        assert not cache.contains(0x80)
        assert cache.stats.accesses == 1

    def test_reset_stats_keeps_contents(self):
        cache = make_cache()
        cache.access(0x80)
        cache.reset_stats()
        assert cache.stats.accesses == 0
        assert cache.contains(0x80)

    def test_stats_merge(self):
        a = CacheStats(accesses=10, hits=6, misses=4)
        b = CacheStats(accesses=5, hits=5, misses=0)
        merged = a.merge(b)
        assert merged.accesses == 15
        assert merged.hits == 11
        assert merged.misses == 4


class TestCacheHierarchy:
    def test_l2_consulted_only_on_l1_miss(self):
        hierarchy = CacheHierarchy()
        l1_hit, l2_hit = hierarchy.access_data(0x1000)
        assert l1_hit is False and l2_hit is False
        l1_hit, l2_hit = hierarchy.access_data(0x1000)
        assert l1_hit is True and l2_hit is None
        assert hierarchy.l2.stats.accesses == 1

    def test_instruction_and_data_use_separate_l1(self):
        hierarchy = CacheHierarchy()
        hierarchy.access_instruction(0x2000)
        assert hierarchy.icache.stats.accesses == 1
        assert hierarchy.dcache.stats.accesses == 0

    def test_l1_miss_l2_hit_after_warm(self):
        hierarchy = CacheHierarchy()
        hierarchy.access_data(0x3000)
        hierarchy.dcache.flush()
        l1_hit, l2_hit = hierarchy.access_data(0x3000)
        assert l1_hit is False and l2_hit is True

    def test_stats_summary_keys(self):
        hierarchy = CacheHierarchy()
        assert set(hierarchy.stats_summary()) == {"il1", "dl1", "ul2"}

    def test_flush_and_reset_cascade(self):
        hierarchy = CacheHierarchy()
        hierarchy.access_data(0x40)
        hierarchy.flush()
        hierarchy.reset_stats()
        assert hierarchy.dcache.resident_blocks == 0
        assert hierarchy.l2.stats.accesses == 0


class TestWritePolicy:
    def test_clean_evictions_no_writeback(self):
        cache = make_cache(size=1024, assoc=2, block=32)
        stride = cache.config.num_sets * 32
        for index in range(4):
            cache.access(index * stride)  # reads only
        assert cache.stats.writebacks == 0

    def test_dirty_eviction_counts_writeback(self):
        cache = make_cache(size=1024, assoc=2, block=32)
        stride = cache.config.num_sets * 32
        cache.access(0, write=True)          # dirty line
        cache.access(stride)                 # fills way 2
        cache.access(2 * stride)             # evicts dirty LRU
        assert cache.stats.writebacks == 1

    def test_write_hit_marks_dirty(self):
        cache = make_cache(size=1024, assoc=2, block=32)
        stride = cache.config.num_sets * 32
        cache.access(0)                      # clean fill
        cache.access(0, write=True)          # dirtied by write hit
        cache.access(stride)
        cache.access(2 * stride)             # evicts the dirty line
        assert cache.stats.writebacks == 1

    def test_writeback_cleared_after_eviction(self):
        cache = make_cache(size=1024, assoc=1, block=32)
        stride = cache.config.num_sets * 32
        cache.access(0, write=True)
        cache.access(stride)                 # writeback 1, fills clean
        cache.access(2 * stride)             # clean eviction
        assert cache.stats.writebacks == 1

    def test_flush_drops_dirty_without_writeback(self):
        cache = make_cache()
        cache.access(0, write=True)
        cache.flush()
        assert cache.stats.writebacks == 0

    def test_stats_merge_includes_writebacks(self):
        a = CacheStats(accesses=1, hits=0, misses=1, writebacks=1)
        b = CacheStats(accesses=1, hits=1, misses=0, writebacks=2)
        assert a.merge(b).writebacks == 3
