"""Tests for the two-level local-history (PAg) predictor."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulator.branch import (
    BimodalPredictor,
    GSharePredictor,
    LocalHistoryPredictor,
)


class TestLocalHistory:
    def test_history_shifts_per_branch(self):
        predictor = LocalHistoryPredictor(history_bits=4)
        predictor.update(0x100, True)
        predictor.update(0x100, False)
        predictor.update(0x200, True)
        assert predictor.local_history(0x100) == 0b10
        assert predictor.local_history(0x200) == 0b1

    def test_learns_per_branch_period(self):
        # Loop with trip count 5: taken 4x then not taken, repeating.
        predictor = LocalHistoryPredictor()
        for i in range(2000):
            predictor.predict_and_update(0x400, (i % 5) != 4)
        assert predictor.misprediction_rate < 0.1

    def test_immune_to_interleaved_noise(self):
        """The defining advantage over gshare: another branch's random
        outcomes cannot pollute this branch's history."""
        rng = np.random.default_rng(2)
        local = LocalHistoryPredictor()
        gshare = GSharePredictor(history_bits=8, entries=2048)
        local_wrong = gshare_wrong = total = 0
        position = 0
        for _ in range(8000):
            if rng.random() < 0.5:
                taken = (position % 6) != 5
                position += 1
                total += 1
                local_wrong += not local.predict_and_update(0x100, taken)
                gshare_wrong += not gshare.predict_and_update(0x100, taken)
            else:
                noise = bool(rng.random() < 0.5)
                local.predict_and_update(0x204, noise)
                gshare.predict_and_update(0x204, noise)
        assert local_wrong / total < gshare_wrong / total

    def test_periodic_pattern_beats_bimodal(self):
        pattern = [True, True, False] * 800
        local = LocalHistoryPredictor()
        bimodal = BimodalPredictor()
        for taken in pattern:
            local.predict_and_update(0x40, taken)
            bimodal.predict_and_update(0x40, taken)
        assert local.misprediction_rate < bimodal.misprediction_rate

    @pytest.mark.parametrize("kwargs", [
        {"history_bits": 0},
        {"history_bits": 21},
        {"history_entries": 1000},
        {"pattern_entries": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            LocalHistoryPredictor(**kwargs)

    def test_reset_stats(self):
        predictor = LocalHistoryPredictor()
        predictor.predict_and_update(0, True)
        predictor.reset_stats()
        assert predictor.predictions == 0
        assert predictor.misprediction_rate == 0.0

    def test_stats_bounds(self):
        predictor = LocalHistoryPredictor()
        rng = np.random.default_rng(0)
        for _ in range(500):
            predictor.predict_and_update(
                int(rng.integers(0, 2**16)), bool(rng.random() < 0.5)
            )
        assert 0 <= predictor.mispredictions <= predictor.predictions
