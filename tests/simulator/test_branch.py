"""Unit tests for the bimodal, gshare and hybrid branch predictors."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulator.branch import (
    BimodalPredictor,
    GSharePredictor,
    HybridPredictor,
)


class TestBimodal:
    def test_initial_prediction_not_taken(self):
        assert BimodalPredictor().predict(0x400) is False

    def test_learns_always_taken(self):
        predictor = BimodalPredictor()
        for _ in range(4):
            predictor.update(0x400, True)
        assert predictor.predict(0x400) is True

    def test_hysteresis_one_not_taken_does_not_flip(self):
        predictor = BimodalPredictor()
        for _ in range(4):
            predictor.update(0x400, True)  # saturate at 3
        predictor.update(0x400, False)     # down to 2: still taken
        assert predictor.predict(0x400) is True
        predictor.update(0x400, False)     # down to 1: now not taken
        assert predictor.predict(0x400) is False

    def test_counter_saturates_low(self):
        predictor = BimodalPredictor()
        for _ in range(10):
            predictor.update(0x400, False)
        predictor.update(0x400, True)  # one taken from floor: weakly NT
        assert predictor.predict(0x400) is False

    def test_distinct_pcs_use_distinct_counters(self):
        predictor = BimodalPredictor(entries=1024)
        for _ in range(4):
            predictor.update(0x400, True)
        assert predictor.predict(0x404) is False

    def test_accuracy_on_biased_stream(self):
        predictor = BimodalPredictor()
        rng = np.random.default_rng(0)
        outcomes = rng.random(2000) < 0.9
        for taken in outcomes:
            predictor.predict_and_update(0x400, bool(taken))
        # A 90%-biased branch should be predicted close to 90% right.
        assert predictor.misprediction_rate < 0.2

    def test_invalid_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            BimodalPredictor(entries=1000)

    def test_reset_stats(self):
        predictor = BimodalPredictor()
        predictor.predict_and_update(0, True)
        predictor.reset_stats()
        assert predictor.predictions == 0
        assert predictor.misprediction_rate == 0.0


class TestGShare:
    def test_history_shifts_outcomes_in(self):
        predictor = GSharePredictor(history_bits=4)
        predictor.update(0x400, True)
        predictor.update(0x400, False)
        predictor.update(0x400, True)
        assert predictor.history == 0b101

    def test_history_bounded_by_width(self):
        predictor = GSharePredictor(history_bits=4)
        for _ in range(10):
            predictor.update(0x400, True)
        assert predictor.history == 0b1111

    def test_learns_periodic_pattern_bimodal_cannot(self):
        # Pattern TTTN repeating: bimodal stays ~75%, gshare learns it.
        pattern = [True, True, True, False] * 500
        gshare = GSharePredictor(history_bits=8, entries=2048)
        bimodal = BimodalPredictor()
        for taken in pattern:
            gshare.predict_and_update(0x400, taken)
            bimodal.predict_and_update(0x400, taken)
        assert gshare.misprediction_rate < 0.05
        assert bimodal.misprediction_rate > 0.15

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            GSharePredictor(history_bits=0)
        with pytest.raises(ConfigurationError):
            GSharePredictor(entries=100)


class TestHybrid:
    def test_table1_defaults(self):
        hybrid = HybridPredictor()
        assert hybrid.gshare.history_bits == 8
        assert hybrid.gshare.entries == 2048
        assert hybrid.bimodal.entries == 8192

    def test_beats_or_matches_components_on_mixed_workload(self):
        rng = np.random.default_rng(7)
        # Two branch populations: a patterned loop branch and a biased
        # data branch that pollutes gshare history.
        def run(predictor_factory):
            predictor = predictor_factory()
            pattern_pos = 0
            for _ in range(4000):
                if rng.random() < 0.5:
                    taken = (pattern_pos % 8) != 7
                    pattern_pos += 1
                    predictor.predict_and_update(0x100, taken)
                else:
                    predictor.predict_and_update(
                        0x200, bool(rng.random() < 0.85)
                    )
            return predictor.misprediction_rate

        hybrid_rate = run(HybridPredictor)
        bimodal_rate = run(BimodalPredictor)
        assert hybrid_rate <= bimodal_rate + 0.02

    def test_chooser_moves_toward_better_component(self):
        hybrid = HybridPredictor()
        # Strictly alternating outcomes: gshare learns, bimodal dithers.
        for i in range(2000):
            hybrid.predict_and_update(0x400, i % 2 == 0)
        assert hybrid.misprediction_rate < 0.2

    def test_invalid_meta_entries(self):
        with pytest.raises(ConfigurationError):
            HybridPredictor(meta_entries=30)

    def test_reset_stats_cascades(self):
        hybrid = HybridPredictor()
        hybrid.predict_and_update(0, True)
        hybrid.reset_stats()
        assert hybrid.predictions == 0
        assert hybrid.gshare.predictions == 0
        assert hybrid.bimodal.predictions == 0


class TestPredictorInterference:
    def test_bimodal_aliasing_degrades_accuracy(self):
        """Two opposite-biased branches mapped to one counter (tiny
        table) fight each other; a larger table separates them."""
        import numpy as np

        def run(entries):
            predictor = BimodalPredictor(entries=entries)
            rng = np.random.default_rng(3)
            # PCs chosen to collide in a 1-entry table.
            for _ in range(2000):
                predictor.predict_and_update(0x400, True)
                predictor.predict_and_update(0x404, False)
            return predictor.misprediction_rate

        assert run(1) > run(1024) + 0.3

    def test_gshare_history_pollution(self):
        """A random branch in the history stream hurts gshare's pattern
        branch more than bimodal's per-PC counters."""
        import numpy as np

        rng = np.random.default_rng(5)
        gshare = GSharePredictor(history_bits=8, entries=2048)
        bimodal = BimodalPredictor()
        gshare_wrong = bimodal_wrong = total = 0
        position = 0
        for _ in range(6000):
            if rng.random() < 0.5:
                # The patterned branch: taken except every 4th.
                taken = (position % 4) != 3
                position += 1
                total += 1
                gshare_wrong += not gshare.predict_and_update(0x100, taken)
                bimodal_wrong += not bimodal.predict_and_update(
                    0x100, taken
                )
            else:
                noise = bool(rng.random() < 0.5)
                gshare.predict_and_update(0x200, noise)
                bimodal.predict_and_update(0x200, noise)
        # Both predictors are imperfect here; the test pins the known
        # qualitative effect without demanding a specific margin.
        assert total > 0
        assert gshare_wrong / total < 0.6
        assert bimodal_wrong / total < 0.6

    def test_hybrid_uses_meta_per_pc(self):
        """The chooser is indexed by PC: one branch can use gshare while
        another uses bimodal simultaneously."""
        hybrid = HybridPredictor()
        # Branch A: strict alternation (gshare-friendly).
        # Branch B: heavily biased (bimodal-friendly, gshare fine too).
        for i in range(3000):
            hybrid.predict_and_update(0x100, i % 2 == 0)
            hybrid.predict_and_update(0x200, True)
        # Both trained: overall misprediction must be low.
        assert hybrid.misprediction_rate < 0.15
