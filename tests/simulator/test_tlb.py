"""Unit tests for the TLB model."""

import pytest

from repro.errors import ConfigurationError
from repro.simulator.tlb import TLB, TLBConfig


class TestTLBConfig:
    def test_table1_defaults(self):
        cfg = TLBConfig()
        assert cfg.page_bytes == 8 * 1024
        assert cfg.miss_latency_cycles == 30
        assert cfg.page_shift == 13

    @pytest.mark.parametrize("kwargs", [
        {"entries": 0},
        {"page_bytes": 3000},
        {"miss_latency_cycles": -1},
    ])
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            TLBConfig(**kwargs)


class TestTLB:
    def test_cold_miss_then_hit(self):
        tlb = TLB()
        assert tlb.access(0x1000) is False
        assert tlb.access(0x1000) is True

    def test_same_page_hits(self):
        tlb = TLB(TLBConfig(page_bytes=8192))
        tlb.access(0)
        assert tlb.access(8191) is True
        assert tlb.access(8192) is False

    def test_lru_eviction(self):
        tlb = TLB(TLBConfig(entries=2, page_bytes=4096))
        tlb.access(0 * 4096)
        tlb.access(1 * 4096)
        tlb.access(0 * 4096)      # page 0 now MRU
        tlb.access(2 * 4096)      # evicts page 1
        assert tlb.access(0 * 4096) is True
        assert tlb.access(1 * 4096) is False

    def test_capacity_bound(self):
        tlb = TLB(TLBConfig(entries=4, page_bytes=4096))
        for page in range(10):
            tlb.access(page * 4096)
        assert tlb.resident_pages == 4

    def test_miss_rate(self):
        tlb = TLB()
        tlb.access(0)
        tlb.access(0)
        tlb.access(1 << 20)
        assert tlb.miss_rate == pytest.approx(2 / 3)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            TLB().access(-5)

    def test_flush_keeps_stats(self):
        tlb = TLB()
        tlb.access(0)
        tlb.flush()
        assert tlb.resident_pages == 0
        assert tlb.accesses == 1

    def test_reset_stats_keeps_translations(self):
        tlb = TLB()
        tlb.access(0)
        tlb.reset_stats()
        assert tlb.accesses == 0
        assert tlb.access(0) is True
