"""Structural integrity of every experiment's output.

Runs each experiment at a tiny scale and validates the shape and value
ranges of its ``data`` dictionary — the contract that benchmarks,
shape tests and the ``--json`` output all rely on. (The *paper-shape*
assertions live in ``tests/integration/test_paper_shapes.py`` at a
larger scale; these tests are about structure, not science.)
"""

import math

import numpy as np
import pytest

from repro.harness.experiment import run_experiment
from repro.workloads import BENCHMARK_NAMES

SCALE = 0.05
N = len(BENCHMARK_NAMES)


@pytest.fixture(scope="module")
def results():
    names = ("table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
             "fig8", "fig9", "simpoint", "baselines", "hwbudget")
    return {name: run_experiment(name, scale=SCALE) for name in names}


def _assert_benchmark_series(series, low=0.0, high=None):
    assert len(series) == N
    for value in series:
        assert math.isfinite(value)
        assert value >= low
        if high is not None:
            assert value <= high


class TestRendering:
    def test_every_experiment_renders_tables(self, results):
        for name, result in results.items():
            assert result.tables, name
            assert result.rendered.startswith(f"=== {name}:"), name

    def test_benchmark_rows_present(self, results):
        for name in ("fig2", "fig4", "fig6"):
            rendered = results[name].rendered
            for benchmark_name in BENCHMARK_NAMES:
                assert benchmark_name in rendered, (name, benchmark_name)


class TestDataContracts:
    def test_table1(self, results):
        data = results["table1"].data
        _assert_benchmark_series(data["cpi_min"], low=0.01)
        _assert_benchmark_series(data["cpi_max"], low=0.01)

    def test_fig2(self, results):
        data = results["fig2"].data
        assert set(data["cov"]) == {
            "16 entry", "32 entry", "64 entry", "inf entry",
        }
        for series in data["cov"].values():
            _assert_benchmark_series(series, high=200.0)
        for series in data["phases"].values():
            _assert_benchmark_series(series, low=1)

    def test_fig3_includes_whole_program(self, results):
        data = results["fig3"].data
        assert "Whole Program" in data["cov"]
        assert set(data["phases"]) == {
            "8 dim", "16 dim", "32 dim", "64 dim",
        }

    def test_fig4_four_series(self, results):
        data = results["fig4"].data
        assert set(data) == {
            "cov", "phases", "transition_time", "lv_mispredict",
        }
        for group in data.values():
            assert len(group) == 5  # five configurations
            for series in group.values():
                _assert_benchmark_series(series)

    def test_fig5_parallel_series(self, results):
        data = results["fig5"].data
        for key in ("stable_mean", "stable_std", "transition_mean",
                    "transition_std"):
            _assert_benchmark_series(data[key])

    def test_fig6_five_configs(self, results):
        data = results["fig6"].data
        for group in ("cov", "phases", "transition_time"):
            assert len(data[group]) == 5

    def test_fig7_categories_sum_to_100(self, results):
        data = results["fig7"].data
        num_predictors = len(data["labels"])
        for index in range(num_predictors):
            total = sum(
                data["categories"][category][index]
                for category in data["categories"]
            )
            assert total == pytest.approx(100.0, abs=0.1)
        assert len(data["per_benchmark_accuracy"]["Last Value"]) == N

    def test_fig8_categories_sum_to_100(self, results):
        data = results["fig8"].data
        for index in range(len(data["labels"])):
            total = sum(
                data["categories"][category][index]
                for category in data["categories"]
            )
            assert total == pytest.approx(100.0, abs=0.1)

    def test_fig8_accuracy_consistent_with_categories(self, results):
        data = results["fig8"].data
        for index in range(len(data["labels"])):
            derived = (
                data["categories"]["conf_correct"][index]
                + data["categories"]["unconf_correct"][index]
            )
            assert data["accuracy"][index] == pytest.approx(
                derived, abs=0.1
            )

    def test_fig9_distribution_complete(self, results):
        data = results["fig9"].data
        totals = np.zeros(N)
        for series in data["class_distribution"].values():
            _assert_benchmark_series(series, high=100.0)
            totals += np.array(series)
        assert np.allclose(totals, 100.0, atol=0.5)
        _assert_benchmark_series(data["misprediction"], high=100.0)

    def test_simpoint_series(self, results):
        data = results["simpoint"].data
        _assert_benchmark_series(data["online_cov"])
        _assert_benchmark_series(data["offline_cov"])
        _assert_benchmark_series(data["offline_phases"], low=1)
        _assert_benchmark_series(data["estimate_error"])

    def test_baselines_series(self, results):
        data = results["baselines"].data
        _assert_benchmark_series(data["working_set_phases"], low=1)
        assert set(data["mape"]) == {
            "last value", "EWMA", "history table", "phase-based",
        }

    def test_hwbudget_consistent(self, results):
        data = results["hwbudget"].data
        assert len(data["labels"]) == len(data["bits"])
        for bits, bytes_ in zip(data["bits"], data["bytes"]):
            assert bytes_ == pytest.approx(bits / 8.0)
