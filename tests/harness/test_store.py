"""Tests for the content-addressed on-disk result store.

The failure-mode contract matters most: a corrupted payload, a
schema-version mismatch, a stale entry under the wrong key, and
concurrent writers racing the same key must all degrade to a recompute
(a telemetry miss), never an exception.
"""

import shutil

import numpy as np
import pytest

from repro.core import ClassifierConfig, PhaseClassifier
from repro.harness import store as store_module
from repro.harness.store import ResultStore, default_store_root
from repro.telemetry import Telemetry
from repro.workloads import benchmark

SCALE = 0.05
NAME = "gzip/p"


@pytest.fixture(scope="module")
def trace():
    return benchmark(NAME, scale=SCALE)


@pytest.fixture(scope="module")
def run(trace):
    return PhaseClassifier(ClassifierConfig.paper_default()).classify_trace(
        trace
    )


@pytest.fixture
def store(tmp_path):
    return ResultStore(root=tmp_path / "store", telemetry=Telemetry())


def _counter(store, name):
    metric = store._telemetry.metrics.get(f"repro_harness_store_{name}_total")
    return 0 if metric is None else metric.value


class TestRoundTrip:
    def test_trace_round_trip_is_exact(self, store, trace):
        assert store.put_trace(NAME, SCALE, trace) is not None
        loaded = store.get_trace(NAME, SCALE)
        assert loaded is not None
        assert len(loaded) == len(trace)
        np.testing.assert_array_equal(loaded.cpis, trace.cpis)
        for a, b in zip(loaded.intervals, trace.intervals):
            np.testing.assert_array_equal(a.branch_pcs, b.branch_pcs)
            np.testing.assert_array_equal(a.instr_counts, b.instr_counts)
            assert a.cpi == b.cpi

    def test_classified_round_trip_is_exact(self, store, run):
        config = ClassifierConfig.paper_default()
        assert store.put_classified(NAME, SCALE, config, run) is not None
        loaded = store.get_classified(NAME, SCALE, config)
        assert loaded == run  # dataclass value equality, every field

    def test_miss_on_empty_store(self, store):
        assert store.get_trace(NAME, SCALE) is None
        assert store.get_classified(
            NAME, SCALE, ClassifierConfig.paper_default()
        ) is None
        assert _counter(store, "misses") == 2
        assert _counter(store, "hits") == 0

    def test_keys_separate_scales_and_configs(self, store, trace, run):
        config = ClassifierConfig.paper_default()
        store.put_trace(NAME, SCALE, trace)
        store.put_classified(NAME, SCALE, config, run)
        assert store.get_trace(NAME, SCALE * 2) is None
        other = ClassifierConfig(min_count_threshold=3)
        assert store.get_classified(NAME, SCALE, other) is None
        assert store.get_classified("gcc/1", SCALE, config) is None


class TestFailureModes:
    def test_corrupted_trace_payload_is_a_miss(self, store, trace):
        path = store.put_trace(NAME, SCALE, trace)
        path.write_bytes(b"not an npz file at all")
        assert store.get_trace(NAME, SCALE) is None
        assert _counter(store, "corrupt") == 1
        assert not path.exists()  # dropped, so the next write heals it

    def test_corrupted_classified_payload_is_a_miss(self, store, run):
        config = ClassifierConfig.paper_default()
        path = store.put_classified(NAME, SCALE, config, run)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert store.get_classified(NAME, SCALE, config) is None
        assert _counter(store, "corrupt") == 1
        assert not path.exists()

    def test_schema_version_mismatch_is_a_miss(
        self, store, run, monkeypatch
    ):
        # Write under today's schema, then pretend the library moved on:
        # the entry lands at the *new* key's path but carries the old
        # header, exercising the in-payload schema check.
        config = ClassifierConfig.paper_default()
        old_path = store.put_classified(NAME, SCALE, config, run)
        monkeypatch.setattr(store_module, "SCHEMA_VERSION", 999)
        new_path = store.classified_path(NAME, SCALE, config)
        assert new_path != old_path  # schema is part of the key
        new_path.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(old_path, new_path)
        assert store.get_classified(NAME, SCALE, config) is None
        assert _counter(store, "corrupt") == 1

    def test_entry_under_wrong_key_is_a_miss(self, store, run):
        # A payload for one benchmark copied under another's key must be
        # rejected by the header check, not returned.
        config = ClassifierConfig.paper_default()
        path = store.put_classified(NAME, SCALE, config, run)
        other = store.classified_path("gcc/1", SCALE, config)
        other.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(path, other)
        assert store.get_classified("gcc/1", SCALE, config) is None
        assert _counter(store, "corrupt") == 1

    def test_concurrent_writers_race_benignly(self, tmp_path, trace):
        # Two store handles (two "processes") racing the same key: both
        # writes succeed, readers only ever see a complete entry.
        a = ResultStore(root=tmp_path / "store")
        b = ResultStore(root=tmp_path / "store")
        assert a.put_trace(NAME, SCALE, trace) is not None
        assert b.put_trace(NAME, SCALE, trace) is not None
        loaded = a.get_trace(NAME, SCALE)
        assert loaded is not None and len(loaded) == len(trace)

    def test_stray_temp_files_are_invisible(self, store, trace):
        # A writer that died mid-write leaves only a temp file behind;
        # readers and stats must ignore it.
        final = store.trace_path(NAME, SCALE)
        final.parent.mkdir(parents=True, exist_ok=True)
        final.with_name(f"{final.stem}.999.1.tmp.npz").write_bytes(b"junk")
        assert store.get_trace(NAME, SCALE) is None
        assert store.stats().total_entries == 0
        store.put_trace(NAME, SCALE, trace)
        assert store.stats().total_entries == 1
        assert store.clear() == 1  # temp file removed but not counted
        assert store.stats().total_entries == 0

    def test_unwritable_root_counts_write_error(self, tmp_path, trace, run):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the store root should be")
        store = ResultStore(root=blocker, telemetry=Telemetry())
        assert store.put_trace(NAME, SCALE, trace) is None
        assert store.put_classified(
            NAME, SCALE, ClassifierConfig.paper_default(), run
        ) is None
        assert _counter(store, "write_errors") == 2


class TestMaintenance:
    def test_stats_counts_entries_and_bytes(self, store, trace, run):
        store.put_trace(NAME, SCALE, trace)
        store.put_classified(
            NAME, SCALE, ClassifierConfig.paper_default(), run
        )
        stats = store.stats()
        assert stats.entries == {"trace": 1, "classified": 1}
        assert stats.bytes["trace"] > 0 and stats.bytes["classified"] > 0
        rendered = stats.render()
        assert "trace" in rendered and "classified" in rendered

    def test_clear_removes_everything(self, store, trace, run):
        store.put_trace(NAME, SCALE, trace)
        store.put_classified(
            NAME, SCALE, ClassifierConfig.paper_default(), run
        )
        assert store.clear() == 2
        assert store.stats().total_entries == 0
        assert store.get_trace(NAME, SCALE) is None

    def test_default_root_honors_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PHASES_STORE", str(tmp_path / "envstore"))
        assert default_store_root() == tmp_path / "envstore"
        monkeypatch.delenv("REPRO_PHASES_STORE")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert (
            default_store_root()
            == tmp_path / "xdg" / "repro-phases" / "store"
        )
