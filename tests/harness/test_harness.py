"""Tests for the experiment harness: caching, registry, CLI.

Figure experiments themselves are exercised in
``tests/integration/test_paper_shapes.py`` at a small scale; here we
test the infrastructure.
"""

import pytest

from repro.core import ClassifierConfig
from repro.errors import ConfigurationError
from repro.harness.cache import (
    cached_classified,
    cached_trace,
    clear_cache,
    set_cache_telemetry,
)
from repro.harness.cli import main
from repro.harness.experiment import (
    ExperimentResult,
    experiment_names,
    run_experiment,
)

SCALE = 0.05


class TestTraceCache:
    def test_same_object_returned(self):
        clear_cache()
        a = cached_trace("gzip/g", SCALE)
        b = cached_trace("gzip/g", SCALE)
        assert a is b

    def test_different_scale_different_trace(self):
        a = cached_trace("gzip/g", SCALE)
        b = cached_trace("gzip/g", 0.06)
        assert a is not b

    def test_classified_cache_keyed_by_config(self):
        config_a = ClassifierConfig(min_count_threshold=0)
        config_b = ClassifierConfig(min_count_threshold=8)
        run_a = cached_classified("gzip/g", config_a, SCALE)
        run_b = cached_classified("gzip/g", config_b, SCALE)
        run_a2 = cached_classified("gzip/g", config_a, SCALE)
        assert run_a is run_a2
        assert run_a is not run_b

    def test_clear_cache(self):
        a = cached_trace("gzip/g", SCALE)
        clear_cache()
        b = cached_trace("gzip/g", SCALE)
        assert a is not b

    def test_config_is_hashable_and_equal_by_value(self):
        # The classified cache is keyed on the config itself, so two
        # equal configs must hash alike (frozen dataclass semantics).
        config_a = ClassifierConfig(min_count_threshold=4)
        config_b = ClassifierConfig(min_count_threshold=4)
        assert config_a == config_b
        assert hash(config_a) == hash(config_b)
        assert len({config_a, config_b}) == 1

    def test_equal_configs_share_cache_entry(self):
        clear_cache()
        run_a = cached_classified(
            "gzip/g", ClassifierConfig(min_count_threshold=4), SCALE
        )
        run_b = cached_classified(
            "gzip/g", ClassifierConfig(min_count_threshold=4), SCALE
        )
        assert run_a is run_b

    def test_cache_telemetry_counts_hits_and_misses(self):
        from repro.telemetry import Telemetry

        clear_cache()
        telemetry = Telemetry()
        set_cache_telemetry(telemetry)
        try:
            cached_trace("gzip/g", SCALE)
            cached_trace("gzip/g", SCALE)
            config = ClassifierConfig.paper_default()
            cached_classified("gzip/g", config, SCALE)
            cached_classified("gzip/g", config, SCALE)
        finally:
            set_cache_telemetry(None)
        metrics = telemetry.metrics
        assert metrics.get(
            "repro_harness_trace_cache_misses_total"
        ).value == 1
        assert metrics.get(
            "repro_harness_trace_cache_hits_total"
        ).value == 1
        assert metrics.get(
            "repro_harness_classified_cache_misses_total"
        ).value == 1
        assert metrics.get(
            "repro_harness_classified_cache_hits_total"
        ).value == 1


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        names = experiment_names()
        for expected in ("table1", "fig2", "fig3", "fig4", "fig5",
                         "fig6", "fig7", "fig8", "fig9"):
            assert expected in names

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")

    def test_result_renders(self):
        result = ExperimentResult(name="x", title="Title", tables=["body"])
        assert "Title" in result.rendered
        assert "body" in result.rendered


class TestCLI:
    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_single_experiment(self, capsys):
        assert main(["--scale", str(SCALE), "table1"]) == 0
        out = capsys.readouterr().out
        assert "Baseline Simulation Model" in out
        assert "completed in" in out


class TestExtensions:
    def test_hwbudget_runs_without_traces(self):
        result = run_experiment("hwbudget")
        # The full architecture must stay within a couple of KB.
        assert max(result.data["bytes"]) < 2048
        # This paper's 16-counter classifier is cheaper than the
        # prior work's 32-counter baseline.
        labels = result.data["labels"]
        bits = dict(zip(labels, result.data["bits"]))
        assert bits["this paper (16 ctr, min-8)"] < bits[
            "prior-work baseline (32 ctr)"
        ]

    def test_json_output(self, tmp_path, capsys):
        import json

        out = tmp_path / "data.json"
        assert main(["--scale", str(SCALE), "--json", str(out),
                     "hwbudget"]) == 0
        payload = json.loads(out.read_text())
        assert "hwbudget" in payload
        assert "data" in payload["hwbudget"]

    def test_robustness_experiment(self):
        result = run_experiment("robustness", scale=SCALE)
        assert all(result.data["claim_holds"])
        assert len(result.data["names"]) == 3

    def test_benchmarks_listing(self, capsys):
        assert main(["--benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "gcc/s" in out
        assert "pointer-chasing" in out

    def test_classify_report(self, capsys):
        assert main(["--classify", "gzip/p", "--scale", str(SCALE)]) == 0
        out = capsys.readouterr().out
        assert "whole-program CoV" in out
        assert "legend:" in out
        assert "next-phase prediction" in out

    def test_classify_unknown_benchmark(self, capsys):
        assert main(["--classify", "nonesuch"]) == 2
