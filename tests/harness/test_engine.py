"""Tests for the parallel experiment engine.

Covers the work-unit grid, the shape-admission check, sequential vs
parallel accounting and telemetry parity, store integration, and the
CLI surface (``--jobs``, ``--no-store``, ``repro-phases cache``).
"""

import numpy as np
import pytest

from repro.core import ClassifierConfig, PhaseClassifier
from repro.errors import EngineError
from repro.harness.cache import (
    cached_classified,
    cached_trace,
    clear_cache,
    peek_classified,
    peek_trace,
    set_cache_telemetry,
    set_result_store,
)
from repro.harness.cli import main
from repro.harness.engine import (
    EngineReport,
    ExperimentEngine,
    WorkUnit,
    dedupe_units,
    validate_unit_result,
)
from repro.harness.experiment import experiment_work_units
from repro.harness.store import ResultStore
from repro.telemetry import Telemetry
from repro.workloads import benchmark

SCALE = 0.05
CONFIG = ClassifierConfig.paper_default()
NAMES = ("gzip/p", "bzip2/g", "mcf")


def _units(names=NAMES, config=CONFIG):
    units = [WorkUnit(name, SCALE) for name in names]
    units += [WorkUnit(name, SCALE, config) for name in names]
    return units


@pytest.fixture(autouse=True)
def _cold_caches():
    clear_cache()
    yield
    clear_cache()
    set_cache_telemetry(None)
    set_result_store(None)


class TestWorkUnits:
    def test_scale_is_normalized(self):
        assert WorkUnit("mcf", np.float64(0.25)) == WorkUnit("mcf", 0.25)
        assert isinstance(WorkUnit("mcf", np.float64(0.25)).scale, float)

    def test_dedupe_preserves_first_seen_order(self):
        a = WorkUnit("mcf", 0.25)
        b = WorkUnit("mcf", 0.25, CONFIG)
        assert dedupe_units([a, b, a, b, a]) == [a, b]

    def test_experiment_units_deduplicate_across_experiments(self):
        # fig7/8/9 share the paper-default grid; together they need no
        # more units than one of them alone.
        single = experiment_work_units(["fig7"], scale=SCALE)
        combined = experiment_work_units(
            ["fig7", "fig8", "fig9"], scale=SCALE
        )
        assert combined == single

    def test_every_registered_declaration_is_well_formed(self):
        from repro.harness.experiment import EXPERIMENT_NAMES

        units = experiment_work_units(list(EXPERIMENT_NAMES), scale=SCALE)
        assert units == dedupe_units(units)
        assert all(isinstance(u, WorkUnit) for u in units)
        # Every classified unit's trace is also declared, so a prefetch
        # leaves no cold lookups for the bodies.
        declared = set(units)
        for unit in units:
            if unit.config is not None:
                assert WorkUnit(unit.benchmark, unit.scale) in declared


class TestValidation:
    def test_accepts_a_real_result(self, small_trace, classified_small):
        unit = WorkUnit("gzip/p", 0.15, ClassifierConfig.paper_default())
        validate_unit_result(unit, small_trace, classified_small)

    def test_rejects_wrong_trace_type(self):
        with pytest.raises(EngineError, match="expected IntervalTrace"):
            validate_unit_result(WorkUnit("mcf", 1.0), object(), None)

    def test_rejects_wrong_run_type(self, small_trace):
        unit = WorkUnit("gzip/p", 0.15, CONFIG)
        with pytest.raises(EngineError, match="expected ClassificationRun"):
            validate_unit_result(unit, small_trace, "nope")

    def test_rejects_interval_count_mismatch(self, small_trace):
        other = benchmark("gzip/p", scale=0.05)
        run = PhaseClassifier(CONFIG).classify_trace(other)
        unit = WorkUnit("gzip/p", 0.15, CONFIG)
        with pytest.raises(EngineError, match="intervals"):
            validate_unit_result(unit, small_trace, run)

    def test_jobs_must_be_positive(self):
        with pytest.raises(EngineError, match="jobs"):
            ExperimentEngine(jobs=0)


class TestEngineReport:
    def test_utilization_bounds(self):
        report = EngineReport(jobs=4, seconds=2.0, busy_seconds=4.0)
        assert report.utilization == 0.5
        assert EngineReport(jobs=4).utilization == 0.0

    def test_summary_mentions_sources(self):
        report = EngineReport(
            jobs=2, units=5, from_memory=1, from_store=2, computed=2,
            seconds=1.0,
        )
        text = report.summary()
        assert "5 work units" in text and "2 from store" in text


class TestSequentialEnsure:
    def test_makes_units_resident_and_accounts(self):
        engine = ExperimentEngine(jobs=1)
        report = engine.ensure(_units())
        assert report.units == len(NAMES) * 2
        assert report.computed == report.units
        assert report.from_memory == report.from_store == 0
        for name in NAMES:
            assert peek_trace(name, SCALE) is not None
            assert peek_classified(name, CONFIG, SCALE) is not None

    def test_repeat_ensure_is_all_memory(self):
        engine = ExperimentEngine(jobs=1)
        engine.ensure(_units())
        report = engine.ensure(_units())
        assert report.from_memory == report.units
        assert report.computed == 0


class TestParallelEnsure:
    def test_parallel_results_equal_sequential(self):
        sequential = ExperimentEngine(jobs=1)
        sequential.ensure(_units())
        expected = {
            name: cached_classified(name, CONFIG, SCALE) for name in NAMES
        }
        expected_traces = {
            name: cached_trace(name, SCALE) for name in NAMES
        }

        clear_cache()
        parallel = ExperimentEngine(jobs=4)
        report = parallel.ensure(_units())
        assert report.computed == report.units
        for name in NAMES:
            run = cached_classified(name, CONFIG, SCALE)
            assert run == expected[name]
            trace = cached_trace(name, SCALE)
            np.testing.assert_array_equal(
                trace.cpis, expected_traces[name].cpis
            )

    def test_telemetry_counters_match_sequential(self):
        def count(jobs):
            clear_cache()
            telemetry = Telemetry()
            set_cache_telemetry(telemetry)
            try:
                ExperimentEngine(jobs=jobs).ensure(_units())
            finally:
                set_cache_telemetry(None)
            metrics = telemetry.metrics
            return {
                name: metrics.get(f"repro_harness_{name}_total").value
                for name in (
                    "trace_cache_misses", "classified_cache_misses",
                )
            }

        assert count(1) == count(4)

    def test_partial_residency_only_computes_the_gap(self):
        cached_trace(NAMES[0], SCALE)  # one trace already in memory
        engine = ExperimentEngine(jobs=4)
        report = engine.ensure(_units())
        assert report.from_memory == 1
        assert report.computed == report.units - 1


class TestPooledEnsure:
    def test_pooled_results_equal_sequential(self):
        sequential = ExperimentEngine(jobs=1)
        sequential.ensure(_units())
        expected = {
            name: cached_classified(name, CONFIG, SCALE) for name in NAMES
        }

        clear_cache()
        pooled = ExperimentEngine(pooled=True)
        report = pooled.ensure(_units())
        assert report.computed == report.units
        for name in NAMES:
            assert cached_classified(name, CONFIG, SCALE) == expected[name]

    def test_pooled_repeat_is_all_memory(self):
        engine = ExperimentEngine(pooled=True)
        engine.ensure(_units())
        report = engine.ensure(_units())
        assert report.from_memory == report.units
        assert report.computed == 0

    def test_pooled_falls_back_for_infinite_table(self):
        config = ClassifierConfig(table_entries=None)
        engine = ExperimentEngine(pooled=True)
        engine.ensure(_units(names=NAMES[:1], config=config))
        pooled_run = peek_classified(NAMES[0], config, SCALE)
        reference = PhaseClassifier(config).classify_trace(
            cached_trace(NAMES[0], SCALE)
        )
        assert pooled_run.results == reference.results


class TestStoreIntegration:
    def test_engine_store_survives_cache_clear(self, tmp_path):
        store = ResultStore(root=tmp_path / "store")
        engine = ExperimentEngine(jobs=1, store=store)
        first = engine.ensure(_units())
        assert first.computed == first.units
        expected = {
            name: cached_classified(name, CONFIG, SCALE) for name in NAMES
        }

        clear_cache()  # a "new process": memory gone, disk warm
        warm = engine.ensure(_units())
        assert warm.from_store == warm.units
        assert warm.computed == 0
        for name in NAMES:
            assert cached_classified(name, CONFIG, SCALE) == expected[name]

    def test_parallel_warm_start_from_store(self, tmp_path):
        store = ResultStore(root=tmp_path / "store")
        ExperimentEngine(jobs=1, store=store).ensure(_units())
        clear_cache()
        report = ExperimentEngine(jobs=4, store=store).ensure(_units())
        assert report.from_store == report.units
        assert report.computed == 0

    def test_ensure_restores_previously_installed_store(self, tmp_path):
        ambient = ResultStore(root=tmp_path / "ambient")
        set_result_store(ambient)
        engine = ExperimentEngine(
            jobs=1, store=ResultStore(root=tmp_path / "own")
        )
        engine.ensure(_units([NAMES[0]]))
        from repro.harness.cache import get_result_store

        assert get_result_store() is ambient

    def test_corrupt_store_entry_recomputes(self, tmp_path):
        store = ResultStore(root=tmp_path / "store")
        engine = ExperimentEngine(jobs=1, store=store)
        engine.ensure(_units([NAMES[0]]))
        for path in (tmp_path / "store").rglob("*.npz"):
            path.write_bytes(b"garbage")
        clear_cache()
        report = engine.ensure(_units([NAMES[0]]))
        assert report.computed == report.units  # miss, never an exception


class TestSweepEngine:
    def test_sweep_with_engine_matches_without(self, tmp_path):
        from repro.harness.sweep import sweep_classifier

        kwargs = dict(
            field_name="min_count_threshold",
            values=[0, 8],
            benchmarks=list(NAMES),
            scale=SCALE,
        )
        plain = sweep_classifier(**kwargs)
        clear_cache()
        engine = ExperimentEngine(
            jobs=2, store=ResultStore(root=tmp_path / "store")
        )
        engined = sweep_classifier(engine=engine, **kwargs)
        assert plain.data == engined.data

    def test_metric_extraction_reused_per_run_object(self, monkeypatch):
        # Sweeping a value equal to the base revisits the same cached
        # run; the expensive predictor walk must happen once per run
        # object, not once per (value, benchmark) pair.
        from repro.harness import sweep as sweep_module

        calls = []
        original = sweep_module.CompositePhasePredictor

        class CountingPredictor(original):
            def run(self, phase_ids):
                calls.append(1)
                return super().run(phase_ids)

        monkeypatch.setattr(
            sweep_module, "CompositePhasePredictor", CountingPredictor
        )
        result = sweep_module.sweep_classifier(
            "similarity_threshold", [0.25, 0.25],
            benchmarks=[NAMES[0]], scale=SCALE,
        )
        assert len(calls) == 1  # two values, one distinct run object
        series = result.data["lv_mispredict"]
        assert series[0.25] == pytest.approx(series[0.25])


class TestEngineCLI:
    def test_jobs_flag_round_trips(self, tmp_path, capsys):
        assert main([
            "--scale", str(SCALE), "--jobs", "1",
            "--store", str(tmp_path / "store"), "fig5",
        ]) == 0
        out = capsys.readouterr().out
        assert "[engine:" in out and "jobs=1" in out

    def test_no_store_skips_the_store(self, tmp_path, capsys):
        assert main([
            "--scale", str(SCALE), "--jobs", "1", "--no-store",
            "--store", str(tmp_path / "store"), "fig5",
        ]) == 0
        assert not (tmp_path / "store").exists()

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        root = tmp_path / "store"
        assert main([
            "--scale", str(SCALE), "--jobs", "1",
            "--store", str(root), "fig5",
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--store", str(root)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and str(root) in out
        assert main(["cache", "clear", "--store", str(root)]) == 0
        out = capsys.readouterr().out
        assert "removed" in out
        assert main(["cache", "stats", "--store", str(root)]) == 0
        out = capsys.readouterr().out
        assert "     0 entries" in out
