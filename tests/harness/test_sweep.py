"""Tests for the generic classifier parameter sweep."""

import pytest

from repro.core import ClassifierConfig
from repro.errors import ConfigurationError
from repro.harness.sweep import METRICS, SweepResult, sweep_classifier

SCALE = 0.05
BENCHES = ("gzip/p", "mcf")


@pytest.fixture(scope="module")
def threshold_sweep():
    return sweep_classifier(
        "similarity_threshold", [0.125, 0.25],
        benchmarks=BENCHES, scale=SCALE,
    )


class TestSweepClassifier:
    def test_collects_all_metrics(self, threshold_sweep):
        assert set(threshold_sweep.data) == set(METRICS)
        for metric_data in threshold_sweep.data.values():
            assert set(metric_data) == {0.125, 0.25}
            for series in metric_data.values():
                assert len(series) == len(BENCHES)

    def test_averages(self, threshold_sweep):
        averages = threshold_sweep.averages("cov")
        assert set(averages) == {0.125, 0.25}
        assert all(v >= 0 for v in averages.values())

    def test_best_value(self, threshold_sweep):
        best = threshold_sweep.best_value("cov", minimize=True)
        averages = threshold_sweep.averages("cov")
        assert averages[best] == min(averages.values())

    def test_render(self, threshold_sweep):
        table = threshold_sweep.render("phases")
        assert "similarity_threshold=0.125" in table
        assert "gzip/p" in table

    def test_min_count_sweep_shrinks_phases(self):
        result = sweep_classifier(
            "min_count_threshold", [0, 8],
            benchmarks=BENCHES, scale=SCALE,
        )
        averages = result.averages("phases")
        assert averages[8] <= averages[0]

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_classifier("banana_threshold", [1], scale=SCALE)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_classifier(
                "min_count_threshold", [0], metrics=("banana",),
                scale=SCALE,
            )

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_classifier("min_count_threshold", [], scale=SCALE)

    def test_invalid_value_raises_config_error(self):
        with pytest.raises(ConfigurationError):
            sweep_classifier(
                "num_counters", [12], benchmarks=BENCHES, scale=SCALE
            )

    def test_custom_base_respected(self):
        base = ClassifierConfig(
            num_counters=16, table_entries=32,
            similarity_threshold=0.25, min_count_threshold=0,
        )
        result = sweep_classifier(
            "similarity_threshold", [0.25], base=base,
            benchmarks=BENCHES, scale=SCALE,
            metrics=("transition",),
        )
        # min_count 0 in the base: no transition phase at all.
        assert all(
            v == 0.0 for v in result.data["transition"][0.25]
        )

    def test_result_metric_validation(self, threshold_sweep):
        with pytest.raises(ConfigurationError):
            threshold_sweep.averages("nope")
        with pytest.raises(ConfigurationError):
            threshold_sweep.render("nope")
