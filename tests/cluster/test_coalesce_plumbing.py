"""Coalescing reaches cluster workers: spec argv emission, worker
argument parsing, and an end-to-end byte-identity check against an
uncoalesced single service."""

import json

import numpy as np
import pytest

from repro.cluster import start_cluster_in_thread
from repro.cluster.supervisor import WorkerSpec
from repro.cluster.worker import build_arg_parser, build_service
from repro.service import PhaseServiceClient, start_in_thread

INTERVAL = 5_000


def test_worker_spec_emits_coalesce_flags():
    spec = WorkerSpec(
        worker_id="w0", uds_path="/tmp/w0.sock",
        coalesce=True, coalesce_window=0.25,
    )
    argv = spec.argv(parent_pid=1)
    assert "--coalesce" in argv
    assert argv[argv.index("--coalesce-window") + 1] == "0.25"
    plain = WorkerSpec(worker_id="w1", uds_path="/tmp/w1.sock")
    assert "--coalesce" not in plain.argv(parent_pid=1)


def test_worker_parser_builds_coalescing_service():
    args = build_arg_parser().parse_args([
        "--uds", "/tmp/x.sock", "--pool-slots", "8",
        "--coalesce", "--coalesce-window", "0.1",
    ])
    service = build_service(args)
    assert service.coalesce is True
    assert service.coalesce_window == 0.1


def test_cluster_coalesced_reports_match_single_service(tmp_path):
    rng = np.random.default_rng(5)
    pcs = (0x400000 + rng.integers(0, 48, size=4_000) * 4).tolist()
    counts = rng.integers(1, 120, size=4_000).tolist()

    def collect(client, name):
        client.open_session(
            session=name, interval_instructions=INTERVAL
        )
        reports = []
        for start in range(0, len(pcs), 400):
            reports += client.observe(
                name, pcs[start:start + 400],
                counts[start:start + 400], cpi=1.25,
            )
        client.close_session(name)
        return [json.dumps(report, sort_keys=True) for report in reports]

    with start_in_thread(max_sessions=8) as handle:
        with PhaseServiceClient(port=handle.port) as client:
            expected = collect(client, "s-ref")

    handle = start_cluster_in_thread(
        workers=2, runtime_dir=str(tmp_path / "run"),
        pool_slots=8, coalesce=True,
    )
    try:
        with PhaseServiceClient(port=handle.port) as client:
            actual = collect(client, "s-ref")
    finally:
        handle.stop()
    assert actual == expected
    assert len(actual) > 0
