"""The cluster-aware HTTP gateway: /v1/cluster (topology + control
actions), cluster-wide /healthz and /v1/diagnostics, and the labeled
per-worker Prometheus gauges."""

import json
import urllib.error
import urllib.request

import pytest

from repro.cluster import start_cluster_in_thread
from repro.service import PhaseServiceClient


def call(base, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method
    )
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cluster-gw")
    handle = start_cluster_in_thread(
        port=0, workers=2, runtime_dir=str(tmp / "rt"), num_shards=8,
        http_port=0,
    )
    yield handle
    handle.stop()


@pytest.fixture(scope="module")
def base(cluster):
    dispatcher = cluster.dispatcher
    return f"http://{dispatcher.http_host}:{dispatcher.http_port}"


class TestClusterEndpoints:
    def test_healthz_lists_workers(self, base):
        status, body = call(base, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert set(body["workers"].values()) == {"up"}

    def test_v1_cluster_topology(self, base, cluster):
        status, body = call(base, "GET", "/v1/cluster")
        assert status == 200
        assert set(body["workers"]) == set(
            cluster.dispatcher.shard_map.workers
        )
        assert (
            sum(body["shard_map"]["occupancy"].values())
            == body["shard_map"]["num_shards"]
        )

    def test_post_migrate_moves_a_session(self, base, cluster):
        dispatcher = cluster.dispatcher
        with PhaseServiceClient(port=cluster.port, timeout=30.0) as c:
            c.open_session(session="gw-mig", interval_instructions=5000)
            source = dispatcher._sessions["gw-mig"]
            target = next(
                worker
                for worker in dispatcher.shard_map.workers
                if worker != source
            )
            status, body = call(
                base, "POST", "/v1/cluster",
                {"action": "migrate",
                 "params": {"session": "gw-mig", "worker": target}},
            )
            assert status == 200
            assert body["migrated"] is True
            assert dispatcher._sessions["gw-mig"] == target
            c.close_session("gw-mig")

    def test_post_bad_action_maps_to_503(self, base):
        status, body = call(
            base, "POST", "/v1/cluster", {"action": "no-such-action"}
        )
        assert status == 503
        assert "unknown cluster action" in body["error"]["message"]

    def test_metrics_have_labeled_worker_gauges(self, base, cluster):
        with urllib.request.urlopen(base + "/metrics", timeout=10) as r:
            text = r.read().decode()
        assert "repro_cluster_workers 2" in text
        for worker in cluster.dispatcher.shard_map.workers:
            assert f'repro_cluster_worker_up{{worker="{worker}"}} 1' in text
            assert f'repro_cluster_worker_shards{{worker="{worker}"}}' in text

    def test_diagnostics_have_cluster_section(self, base):
        status, body = call(base, "GET", "/v1/diagnostics")
        assert status == 200
        assert "registry" in body
        assert len(body["cluster"]["workers"]) == 2

    def test_dashboard_has_worker_panel(self, base):
        with urllib.request.urlopen(base + "/", timeout=10) as response:
            html = response.read().decode()
        assert "cluster-panel" in html
        assert "drawCluster" in html
