"""End-to-end cluster tests: a dispatcher + real worker processes must
be indistinguishable from a single in-process PhaseService — byte-for-
byte identical interval reports, including across a live mid-stream
migration — and must survive kill -9 of a worker (supervised restart +
persistence recovery) and drain a worker to zero without losing a
session.

These tests spawn real subprocesses; they are the slowest in the suite
but they are the acceptance test for repro.cluster.
"""

import json
import os
import signal
import time

import numpy as np
import pytest

from repro.cluster import start_cluster_in_thread
from repro.errors import ClusterError
from repro.service import PhaseServiceClient, start_in_thread

INTERVAL_INSTRUCTIONS = 20_000


def branch_stream(seed, records):
    rng = np.random.default_rng(seed)
    region = np.where(rng.random(records) < 0.5, 0x400000, 0x900000)
    pcs = region + (rng.integers(0, 48, size=records)) * 4
    counts = rng.integers(1, 120, size=records)
    return pcs, counts


def drive(client, session, pcs, counts, chunk=500):
    """Feed a stream through an open session; returns the canonical
    JSON of every interval report emitted."""
    reports = []
    for start in range(0, len(pcs), chunk):
        result = client.observe(
            session,
            [int(pc) for pc in pcs[start:start + chunk]],
            [int(count) for count in counts[start:start + chunk]],
            cpi=1.25,
        )
        reports.extend(
            json.dumps(report, sort_keys=True) for report in result
        )
    return reports


def single_service_reports(sessions):
    """Ground truth: the same streams through one in-process service."""
    expected = {}
    with start_in_thread(max_sessions=16) as handle:
        with PhaseServiceClient(port=handle.port) as client:
            for name, (pcs, counts) in sessions.items():
                client.open_session(
                    session=name,
                    interval_instructions=INTERVAL_INSTRUCTIONS,
                )
                expected[name] = drive(client, name, pcs, counts)
                client.close_session(name)
    return expected


def wait_for(predicate, timeout=30.0, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestClusterByteIdentity:
    def test_reports_identical_to_single_service_with_live_migration(
        self, tmp_path
    ):
        """Four sessions through a 2-worker cluster, one of them
        migrated between workers mid-stream, produce byte-identical
        interval reports to a single-process service."""
        sessions = {
            name: branch_stream(seed, 3000)
            for seed, name in enumerate(
                ["alpha", "bravo", "charlie", "delta"]
            )
        }
        expected = single_service_reports(sessions)

        with start_cluster_in_thread(
            port=0, workers=2, runtime_dir=str(tmp_path / "rt"),
            num_shards=16,
        ) as cluster:
            with PhaseServiceClient(
                port=cluster.port, timeout=60.0
            ) as client:
                for name in sessions:
                    client.open_session(
                        session=name,
                        interval_instructions=INTERVAL_INSTRUCTIONS,
                    )
                # Sessions actually land on both workers.
                status = client.cluster("status")
                per_worker = [
                    worker["sessions"]
                    for worker in status["workers"].values()
                ]
                assert sum(per_worker) == len(sessions)

                # First half of every stream …
                halves = {}
                for name, (pcs, counts) in sessions.items():
                    half = len(pcs) // 2
                    halves[name] = drive(
                        client, name, pcs[:half], counts[:half]
                    )

                # … then live-migrate one session to the other worker …
                dispatcher = cluster.dispatcher
                victim = "charlie"
                source = dispatcher._sessions[victim]
                target = next(
                    worker
                    for worker in dispatcher.shard_map.workers
                    if worker != source
                )
                moved = client.cluster(
                    "migrate", session=victim, worker=target
                )
                assert moved["migrated"] is True
                assert moved["to"] == target
                assert dispatcher._sessions[victim] == target

                # … and finish the streams. Reports must not notice.
                got = {}
                for name, (pcs, counts) in sessions.items():
                    half = len(pcs) // 2
                    got[name] = halves[name] + drive(
                        client, name, pcs[half:], counts[half:]
                    )
                    client.close_session(name)

        for name in sessions:
            assert got[name] == expected[name], (
                f"session {name!r} diverged from the single-process "
                f"service"
            )

    def test_anonymous_opens_and_aggregate_stats(self, tmp_path):
        with start_cluster_in_thread(
            port=0, workers=2, runtime_dir=str(tmp_path / "rt"),
            num_shards=8,
        ) as cluster:
            with PhaseServiceClient(
                port=cluster.port, timeout=60.0
            ) as client:
                names = [client.open_session() for _ in range(6)]
                assert len(set(names)) == 6
                stats = client.stats()
                assert stats["live"] == 6
                assert stats["cluster"]["sessions_routed"] == 6
                assert set(stats["per_worker"]) == set(
                    cluster.dispatcher.shard_map.workers
                )
                ping = client.ping()
                assert ping["cluster"] is True
                for name in names:
                    client.close_session(name)
                assert client.stats()["live"] == 0


class TestClusterFailover:
    def test_kill_dash_nine_worker_restarts_and_recovers(self, tmp_path):
        """SIGKILL the worker that owns a durable session: the
        supervisor restarts it, persistence recovery rehydrates the
        session, and its snapshot is byte-identical to before the
        crash."""
        pcs, counts = branch_stream(97, 2000)
        with start_cluster_in_thread(
            port=0, workers=2, runtime_dir=str(tmp_path / "rt"),
            data_root=str(tmp_path / "data"), sync="always",
            num_shards=8,
        ) as cluster:
            dispatcher = cluster.dispatcher
            with PhaseServiceClient(
                port=cluster.port, timeout=60.0, retries=2
            ) as client:
                client.open_session(
                    session="durable",
                    interval_instructions=INTERVAL_INSTRUCTIONS,
                )
                drive(client, "durable", pcs, counts)
                before = json.dumps(
                    client.snapshot("durable"), sort_keys=True
                )

                owner = dispatcher._sessions["durable"]
                handle = dispatcher.supervisor.workers[owner]
                old_pid = handle.process.pid
                os.kill(old_pid, signal.SIGKILL)

                assert wait_for(
                    lambda: handle.process.pid != old_pid
                    and handle.state == "up"
                ), "supervisor did not restart the killed worker"
                assert handle.restarts == 1

                # Read-only ops ride the restart via the retry window;
                # the recovered state is byte-identical.
                after = json.dumps(
                    client.snapshot("durable"), sort_keys=True
                )
                assert after == before
                # The session keeps working after recovery.
                more_pcs, more_counts = branch_stream(98, 500)
                drive(client, "durable", more_pcs, more_counts)
                client.close_session("durable")


class TestDrainWorker:
    def test_drain_worker_migrates_sessions_and_stops_it(self, tmp_path):
        with start_cluster_in_thread(
            port=0, workers=2, runtime_dir=str(tmp_path / "rt"),
            num_shards=8,
        ) as cluster:
            dispatcher = cluster.dispatcher
            with PhaseServiceClient(
                port=cluster.port, timeout=60.0
            ) as client:
                for index in range(4):
                    client.open_session(
                        session=f"drain-{index}",
                        interval_instructions=INTERVAL_INSTRUCTIONS,
                    )
                victim = sorted(dispatcher.shard_map.workers)[0]
                moved = client.cluster("drain-worker", worker=victim)
                assert moved["stopped"] is True
                assert victim not in dispatcher.shard_map
                assert (
                    dispatcher.supervisor.workers[victim].state
                    == "stopped"
                )
                # Every session survived the drain and still answers.
                survivor = next(iter(dispatcher.shard_map.workers))
                pcs, counts = branch_stream(7, 600)
                for index in range(4):
                    name = f"drain-{index}"
                    assert dispatcher._sessions[name] == survivor
                    drive(client, name, pcs, counts)
                    client.close_session(name)

                # The last worker is not drainable.
                with pytest.raises(ClusterError):
                    client.cluster("drain-worker", worker=survivor)

    def test_single_service_refuses_cluster_actions(self):
        with start_in_thread(max_sessions=4) as handle:
            with PhaseServiceClient(port=handle.port) as client:
                # diagnostics works everywhere …
                diagnostics = client.cluster("diagnostics")
                assert "registry" in diagnostics
                # … but topology actions need a dispatcher.
                with pytest.raises(ClusterError):
                    client.cluster("migrate", session="x", worker="w0")
