"""Properties of the cluster routing layer (hypothesis): every session
id resolves to exactly one live worker, and topology changes move only
the minimal ~1/N slice of the shard space — removal reassigns only the
departed worker's shards, addition steals only the shards the newcomer
wins."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import DEFAULT_SHARDS, ShardMap, shard_of
from repro.errors import ClusterError

worker_ids = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1,
    max_size=12,
)
worker_sets = st.sets(worker_ids, min_size=1, max_size=8)
session_ids = st.text(min_size=1, max_size=40)


def build_map(workers, num_shards=DEFAULT_SHARDS):
    shard_map = ShardMap(num_shards=num_shards)
    for worker in sorted(workers):
        shard_map.add_worker(worker)
    return shard_map


class TestExactlyOneOwner:
    @settings(max_examples=100, deadline=None)
    @given(workers=worker_sets, session=session_ids)
    def test_every_session_has_exactly_one_owner(self, workers, session):
        shard_map = build_map(workers)
        owner = shard_map.owner_of(session)
        assert owner in workers
        # Deterministic: asking again, or asking a map built in a
        # different insertion order, names the same worker.
        assert shard_map.owner_of(session) == owner
        reordered = ShardMap(num_shards=DEFAULT_SHARDS)
        for worker in reversed(sorted(workers)):
            reordered.add_worker(worker)
        assert reordered.owner_of(session) == owner

    @settings(max_examples=50, deadline=None)
    @given(workers=worker_sets)
    def test_shards_partition_exactly(self, workers):
        """Every shard is owned by exactly one worker: the per-worker
        shard lists are disjoint and cover the whole shard space."""
        shard_map = build_map(workers)
        seen = []
        for worker in shard_map.workers:
            seen.extend(shard_map.shards_of(worker))
        assert sorted(seen) == list(range(shard_map.num_shards))
        assert sum(shard_map.occupancy().values()) == shard_map.num_shards

    @settings(max_examples=50, deadline=None)
    @given(session=session_ids)
    def test_shard_of_is_stable(self, session):
        assert shard_of(session) == shard_of(session)
        assert 0 <= shard_of(session) < DEFAULT_SHARDS


class TestMinimalMovement:
    @settings(max_examples=100, deadline=None)
    @given(workers=worker_sets.filter(lambda w: len(w) >= 2))
    def test_removal_moves_only_the_departed_workers_shards(self, workers):
        shard_map = build_map(workers)
        departing = sorted(workers)[0]
        before = {
            shard: shard_map.owner_of_shard(shard)
            for shard in range(shard_map.num_shards)
        }
        shard_map.remove_worker(departing)
        for shard, old_owner in before.items():
            new_owner = shard_map.owner_of_shard(shard)
            if old_owner == departing:
                assert new_owner != departing
            else:
                # Shards the departed worker never owned do not move.
                assert new_owner == old_owner

    @settings(max_examples=100, deadline=None)
    @given(workers=worker_sets, newcomer=worker_ids)
    def test_addition_moves_only_shards_the_newcomer_wins(
        self, workers, newcomer
    ):
        if newcomer in workers:
            return
        shard_map = build_map(workers)
        before = {
            shard: shard_map.owner_of_shard(shard)
            for shard in range(shard_map.num_shards)
        }
        shard_map.add_worker(newcomer)
        for shard, old_owner in before.items():
            new_owner = shard_map.owner_of_shard(shard)
            # Rendezvous hashing: a shard either stays put or goes to
            # the newcomer; it never shuffles between incumbents.
            assert new_owner in (old_owner, newcomer)

    def test_addition_moves_roughly_one_nth(self):
        """With many shards the moved fraction concentrates near 1/N:
        growing a 4-worker map to 5 should move about 20% of 4096
        shards — generously, between 10% and 35%."""
        shard_map = build_map({"w0", "w1", "w2", "w3"}, num_shards=4096)
        before = {
            shard: shard_map.owner_of_shard(shard)
            for shard in range(shard_map.num_shards)
        }
        shard_map.add_worker("w4")
        moved = sum(
            1
            for shard, old_owner in before.items()
            if shard_map.owner_of_shard(shard) != old_owner
        )
        assert 0.10 * 4096 <= moved <= 0.35 * 4096


class TestTopologyRefusals:
    def test_duplicate_add_and_missing_remove_are_cluster_errors(self):
        shard_map = build_map({"w0"})
        with pytest.raises(ClusterError):
            shard_map.add_worker("w0")
        with pytest.raises(ClusterError):
            shard_map.remove_worker("ghost")

    def test_empty_map_refuses_routing(self):
        shard_map = ShardMap(num_shards=8)
        with pytest.raises(ClusterError):
            shard_map.owner_of("anything")
