"""Shared fixtures for the test suite.

Traces are expensive to generate, so session-scoped fixtures build a
small benchmark trace once and share it. Tests that mutate state build
their own objects.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import ClassifierConfig, PhaseClassifier
from repro.workloads import CodeRegion, benchmark
from repro.workloads.trace import Interval, IntervalTrace


@pytest.fixture(scope="session", autouse=True)
def isolated_result_store(tmp_path_factory):
    """Point the on-disk result store at a per-session temp directory.

    The CLI installs a store by default, so tests driving ``main()``
    would otherwise read and write the developer's real
    ``~/.cache/repro-phases`` store.
    """
    previous = os.environ.get("REPRO_PHASES_STORE")
    root = tmp_path_factory.mktemp("result-store")
    os.environ["REPRO_PHASES_STORE"] = str(root)
    yield root
    if previous is None:
        os.environ.pop("REPRO_PHASES_STORE", None)
    else:
        os.environ["REPRO_PHASES_STORE"] = previous


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_trace() -> IntervalTrace:
    """A short gzip/p trace shared across the session (read-only)."""
    return benchmark("gzip/p", scale=0.15)


@pytest.fixture(scope="session")
def classified_small(small_trace):
    """The small trace classified with the paper-default configuration."""
    classifier = PhaseClassifier(ClassifierConfig.paper_default())
    return classifier.classify_trace(small_trace)


@pytest.fixture
def tiny_region(rng) -> CodeRegion:
    """A minimal region for unit tests (cheap to sample)."""
    return CodeRegion(
        "tiny",
        rng,
        num_blocks=8,
        code_base=0x1000,
        code_bytes=4096,
        working_set_bytes=8 * 1024,
    )


def make_interval(
    pcs, counts, cpi: float = 1.0, region: int = 0,
    is_transition: bool = False,
) -> Interval:
    """Convenience constructor used across test modules."""
    return Interval(
        branch_pcs=np.asarray(pcs, dtype=np.int64),
        instr_counts=np.asarray(counts, dtype=np.int64),
        cpi=cpi,
        region=region,
        is_transition=is_transition,
    )


@pytest.fixture
def interval_factory():
    """Expose :func:`make_interval` as a fixture."""
    return make_interval
